#!/usr/bin/env python
"""Logistical resupply: learning from accumulated missions (Section IV.B).

Shows the paper's two observations: (1) "as time progresses and
missions take place the learning tasks should become easier and more
accurate as more training samples become available"; (2) planning-phase
(speculative) conditions are noisier training signal than
execution-phase (real-time) ones.

Run:  python examples/resupply_campaign.py
"""

from repro.apps.resupply import ResupplyLearner, simulate_missions


def main() -> None:
    drift = 0.25  # how often execution conditions diverge from the plan
    test = simulate_missions(60, seed=4242, drift=drift)

    print(f"{'missions':>9}  {'execution-phase':>16}  {'planning-phase':>15}")
    print("-" * 45)
    for n in (2, 5, 10, 20, 40):
        row = []
        for phase in ("execution", "planning"):
            learner = ResupplyLearner(phase=phase)
            learner.observe(simulate_missions(n, seed=11, drift=drift))
            learner.fit()
            row.append(learner.accuracy(test))
        print(f"{n:>9}  {row[0]:>16.3f}  {row[1]:>15.3f}")

    learner = ResupplyLearner(phase="execution")
    learner.observe(simulate_missions(40, seed=11, drift=drift))
    learner.fit()
    print("\nDoctrine the execution-phase learner extracted:")
    for prod_id, program in sorted(learner.learned.annotations.items()):
        for rule in program:
            print("   ", rule)


if __name__ == "__main__":
    main()
