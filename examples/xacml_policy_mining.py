#!/usr/bin/env python
"""Mining XACML policies from access logs (paper Section IV.C, Figure 3).

Demonstrates correct learning on clean logs, the three failure modes
(overfitting, unsafe generalization, noisy data), and the paper's three
mitigations (statistics/background knowledge, target restrictions,
dataset filtering).

Run:  python examples/xacml_policy_mining.py
"""

from repro.apps.xacml_case_study import XacmlLearningPipeline, semantic_accuracy
from repro.datasets import (
    default_ground_truth,
    inject_flips,
    inject_not_applicable,
    mark_gaps_not_applicable,
    per_user_ground_truth,
    sample_log,
)


def show(title, model, ground_truth):
    print(f"\n== {title}")
    for text in model.rule_texts():
        print("   ", text)
    print(f"    semantic accuracy vs ground truth: "
          f"{semantic_accuracy(model, ground_truth):.2f}")


def main() -> None:
    gt = default_ground_truth()

    # --- Figure 3a: correct learning from a clean log --------------------
    clean = sample_log(gt, 60, seed=1)
    show("Clean log (Fig. 3a — correctly learned policies)",
         XacmlLearningPipeline().learn(clean), gt)

    # --- Figure 3b / Policy 1: overfitting -------------------------------
    # ILASP returns *some* cost-minimal hypothesis; prefer_specific picks
    # the user-identity optimum (the unlucky tie-break), prefer_general
    # is the paper's statistics/background-knowledge mitigation.
    narrow = sample_log(gt, 40, seed=2, users=("u1", "u5"))
    show("Narrow log, unlucky tie-break (Fig 3b Policy 1: overfitting)",
         XacmlLearningPipeline(prefer_specific=True).learn(narrow), gt)
    show("Narrow log + statistics mitigation (prefer general rules)",
         XacmlLearningPipeline(prefer_general=True).learn(narrow), gt)

    # --- Figure 3b / Policy 2: unsafe generalization ----------------------
    # the log shows only ONE of the organization's DBAs being granted
    grants = per_user_ground_truth(["u1"])
    grant_log = sample_log(grants, 50, seed=3, users=("u1",))
    show("Per-user grant, no restriction (Fig 3b Policy 2 risk)",
         XacmlLearningPipeline(max_body=3).learn(grant_log), grants)
    show("Per-user grant + target-based restriction",
         XacmlLearningPipeline(max_body=3, require_target=True).learn(grant_log),
         grants)

    # --- Figure 3b / Policy 3: noisy datasets ------------------------------
    realistic = mark_gaps_not_applicable(sample_log(gt, 60, seed=4), gt)
    show("Realistic PDP log (gaps = NotApplicable), learner models it "
         "(Fig 3b Policy 3 failure mode)",
         XacmlLearningPipeline(allow_irrelevant_head=True).learn(realistic), gt)
    show("Same log + dataset filtering",
         XacmlLearningPipeline(filter_noise=True).learn(
             inject_not_applicable(sample_log(gt, 60, seed=4), rate=0.3, seed=4)
         ), gt)

    flipped = inject_flips(sample_log(gt, 60, seed=5), rate=0.15, seed=5)
    tripled = flipped + sample_log(gt, 60, seed=6) + sample_log(gt, 60, seed=7)
    show("15% flipped decisions + majority filtering",
         XacmlLearningPipeline(filter_noise=True).learn(tripled), gt)


if __name__ == "__main__":
    main()
