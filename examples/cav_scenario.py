#!/usr/bin/env python
"""CAV driving-task policies: symbolic GPM vs shallow ML (paper Section IV.A).

Reproduces the paper's claim in miniature: the ASG-based GPM reaches
higher accuracy with fewer examples than shallow ML baselines, and the
learned model is *readable* — it prints the actual constraints.

Run:  python examples/cav_scenario.py
"""

import numpy as np

from repro.apps.cav import CavScenario, CavSymbolicLearner, sample_scenarios
from repro.baselines import (
    BernoulliNaiveBayes,
    DecisionTreeClassifier,
    KNNClassifier,
    LogisticRegression,
    OneHotEncoder,
)
from repro.learning import accuracy


def shallow_accuracy(cls, train, test, labels):
    encoder = OneHotEncoder().fit([s.features() for s, __ in train])
    X_train = encoder.transform([s.features() for s, __ in train])
    y_train = np.array([int(label) for __, label in train])
    model = cls().fit(X_train, y_train)
    X_test = encoder.transform([s.features() for s, __ in test])
    return accuracy([bool(p) for p in model.predict(X_test)], labels)


def main() -> None:
    test = sample_scenarios(150, seed=2024)
    labels = [label for __, label in test]
    sizes = [8, 16, 32, 64]
    baselines = {
        "decision-tree": DecisionTreeClassifier,
        "naive-bayes": BernoulliNaiveBayes,
        "logistic-reg": LogisticRegression,
        "3-nn": KNNClassifier,
    }

    header = f"{'n':>4}  {'ASG-GPM':>8}" + "".join(f"{name:>14}" for name in baselines)
    print(header)
    print("-" * len(header))
    for n in sizes:
        train = sample_scenarios(n, seed=7)
        symbolic = CavSymbolicLearner().fit(train)
        row = [accuracy(symbolic.predict([s for s, __ in test]), labels)]
        for cls in baselines.values():
            row.append(shallow_accuracy(cls, train, test, labels))
        print(f"{n:>4}  " + "".join(f"{value:>13.3f} " for value in row))

    print("\nConstraints the symbolic learner found at n=64 "
          "(this is the explainability dividend):")
    learner = CavSymbolicLearner().fit(sample_scenarios(64, seed=7))
    for constraint in learner.learned_constraints():
        print("   ", constraint)

    scenario = CavScenario("overtake", vehicle_loa=4, region_loa=5, weather="snow", time_of_day="day")
    print(f"\nOvertake at LOA 4 in snow -> accept? {learner.predict_one(scenario)}")


if __name__ == "__main__":
    main()
