#!/usr/bin/env python
"""The full AGENP architecture (paper Figure 2) on a two-party coalition.

Two Autonomous Managed Systems run the complete closed loop:

    bootstrap -> decide -> enforce -> monitor -> feedback -> adapt
              -> regenerate -> share via CASWiki -> import with PCP checks

Run:  python examples/agenp_coalition_loop.py
"""

from repro.agenp import (
    AutonomousManagedSystem,
    CASWiki,
    FieldInterpreter,
    PolicySpecification,
)
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.core import Context, LabeledExample
from repro.learning import constraint_space
from repro.policy import CategoricalDomain, DomainSchema, Request

GRAMMAR = """
policy -> "allow" subject action
subject -> "scout_uav"  { is(scout_uav). }
subject -> "cargo_ugv"  { is(cargo_ugv). }
action  -> "patrol"     { is(patrol). }
action  -> "resupply"   { is(resupply). }
"""


def build_spec() -> PolicySpecification:
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("scout_uav", "cargo_ugv")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("patrol", "resupply")]
    pool += [Literal(Atom("contested"), sign) for sign in (True, False)]
    return PolicySpecification(
        GRAMMAR,
        goals=["complete resupply missions without losses"],
        hypothesis_space=constraint_space(pool, prod_ids=(0,), max_body=3),
    )


def main() -> None:
    spec = build_spec()
    interpreter = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    schema = DomainSchema(
        {
            ("subject", "id"): CategoricalDomain(["scout_uav", "cargo_ugv"]),
            ("action", "id"): CategoricalDomain(["patrol", "resupply"]),
        }
    )

    alpha = AutonomousManagedSystem("alpha", spec, interpreter, schema)
    bravo = AutonomousManagedSystem("bravo", spec, interpreter, schema)
    quiet = Context.from_attributes({}, name="quiet_sector")
    for ams in (alpha, bravo):
        installed = ams.bootstrap(quiet)
        print(f"[{ams.name}] bootstrapped with {len(installed)} policies")

    # --- serve requests, observe outcomes --------------------------------
    risky = Request({"subject": {"id": "cargo_ugv"}, "action": {"id": "patrol"}})
    record = alpha.decide(risky)
    result = alpha.pep.enforce(record, "patrol-sweep")
    print(f"[alpha] cargo_ugv patrol: {record.decision.value} -> executed={result.executed}")

    # the day's other missions went fine — confirm them
    for subject, action in (("scout_uav", "patrol"), ("cargo_ugv", "resupply"),
                            ("scout_uav", "resupply")):
        ok_record = alpha.decide(
            Request({"subject": {"id": subject}, "action": {"id": action}})
        )
        alpha.give_feedback(ok_record, ok=True)

    # after-action review: the cargo vehicle is not survivable on patrol
    alpha.give_feedback(record, ok=False)
    if alpha.adapt_if_needed():
        print(f"[alpha] adapted to model v{alpha.model().version}; "
              f"{len(alpha.policy_repository)} policies remain")
    print(f"[alpha] cargo_ugv patrol now: {alpha.decide(risky).decision.value}")
    safe = Request({"subject": {"id": "cargo_ugv"}, "action": {"id": "resupply"}})
    print(f"[alpha] cargo_ugv resupply still: {alpha.decide(safe).decision.value}")

    # --- context change: contested sector -------------------------------
    contested = Context.from_attributes({"contested": True}, name="contested_sector")
    alpha.add_example(
        LabeledExample(("allow", "scout_uav", "resupply"), contested, valid=False)
    )
    alpha.add_example(
        LabeledExample(("allow", "scout_uav", "patrol"), contested, valid=True)
    )
    alpha.padap.adapt()
    alpha.set_context(contested)
    alpha.refresh_policies()
    print(f"[alpha] in contested sector, scout_uav resupply: "
          f"{alpha.decide(Request({'subject': {'id': 'scout_uav'}, 'action': {'id': 'resupply'}})).decision.value}")

    # --- community sharing ------------------------------------------------
    wiki = CASWiki()
    alpha.set_context(quiet)
    alpha.refresh_policies()
    alpha.share(wiki)
    print(f"[wiki] {len(wiki)} contributions from alpha "
          f"(trust={wiki.trust('alpha'):.2f})")
    adopted, rejected = bravo.import_shared(wiki, min_trust=0.0)
    print(f"[bravo] adopted {len(adopted)} shared policies, rejected {len(rejected)}")
    print(f"[wiki] alpha's trust after bravo's ratings: {wiki.trust('alpha'):.2f}")

    # --- quality report on the active policy set ---------------------------
    report = alpha.pcp.quality_report(alpha.policy_repository.all())
    print(f"[alpha] policy quality: {report!r}")


if __name__ == "__main__":
    main()
