#!/usr/bin/env python
"""Quickstart: learn a generative policy model from examples.

This walks the paper's Figure 1 workflow end to end:

1. define an Answer Set Grammar — the *syntax* of the policy language
   plus attribute annotations;
2. provide context-dependent examples of valid/invalid policies;
3. learn the semantic constraints with the ILASP-style learner;
4. generate the policies valid in a given context (``L(G(C))``).

Run:  python examples/quickstart.py
"""

from repro.asg import parse_asg
from repro.core import Context, GenerativePolicyModel, LabeledExample, learn_gpm
from repro.learning import constraint_space
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant


def main() -> None:
    # 1. The policy-language syntax, handed down by the coalition's PBMS.
    #    Productions annotate which attributes each token contributes.
    asg = parse_asg(
        """
policy  -> "allow" subject action
subject -> "medic"   { is(medic). }
subject -> "drone"   { is(drone). }
action  -> "enter_zone" { is(enter_zone). }
action  -> "transmit"   { is(transmit). }
"""
    )
    model = GenerativePolicyModel(asg)
    print("Initial policy language (no semantics learned yet):")
    for tokens in model.generate():
        print("   ", " ".join(tokens))

    # 2. The hypothesis space: constraints over subject/action attributes
    #    and context conditions the learner may use.
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("medic", "drone")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("enter_zone", "transmit")]
    pool += [Literal(Atom("jamming"), True), Literal(Atom("jamming"), False)]
    space = constraint_space(pool, prod_ids=(0,), max_body=3)
    print(f"\nHypothesis space: {len(space)} candidate semantic rules")

    # 3. Context-dependent examples: drones must not transmit while the
    #    adversary is jamming; medics are unrestricted.
    jamming = Context.from_attributes({"jamming": True}, name="jamming")
    quiet = Context.from_attributes({}, name="quiet")
    examples = [
        LabeledExample(("allow", "medic", "enter_zone"), quiet),
        LabeledExample(("allow", "medic", "transmit"), jamming),
        LabeledExample(("allow", "drone", "transmit"), quiet),
        LabeledExample(("allow", "drone", "transmit"), jamming, valid=False),
        LabeledExample(("allow", "drone", "enter_zone"), jamming),
    ]
    learned, result = learn_gpm(model, space, examples)
    print("\nLearned semantic constraints:")
    for candidate in result.candidates:
        print(f"    {candidate.rule!r}   (attached to production {candidate.prod_id})")

    # 4. Generate the policies valid in each context.
    for context in (quiet, jamming):
        print(f"\nPolicies valid under context {context.name!r}:")
        for tokens in learned.generate(context):
            print("   ", " ".join(tokens))

    # 5. Explain why a policy is valid: the witness parse tree + answer set.
    witness = learned.explain_validity(("allow", "medic", "transmit"), jamming)
    assert witness is not None
    tree, answer_set = witness
    print("\nWitness for 'allow medic transmit' under jamming:")
    print(tree.pretty())
    print("  answer set:", sorted(map(str, answer_set)))


if __name__ == "__main__":
    main()
