#!/usr/bin/env python
"""Federated-learning governance policies (paper Section IV.E).

A coalition member receives model insights from partners of varying
trust and data distribution.  The symbolic learner learns the
governance policy (combine / adapt / retrain / reject per insight),
and a numpy federated-regression simulation measures the consequences
against naive strategies.

Run:  python examples/federated_governance.py
"""

import numpy as np

from repro.apps.datasharing import HelperSelectionLearner, sample_offers
from repro.apps.federated import (
    FederatedSimulation,
    GovernanceLearner,
    PartnerSpec,
    sample_insight_offers,
)


def main() -> None:
    # --- learn the governance policy symbolically -----------------------
    governor = GovernanceLearner().fit(sample_insight_offers(30, seed=1))
    print("Learned governance accuracy on held-out insight contexts:",
          f"{governor.accuracy(sample_insight_offers(100, seed=9)):.2f}")

    partners = [
        PartnerSpec("ally_1", True, True, False, 80),
        PartnerSpec("ally_2", True, True, False, 80),
        PartnerSpec("drifted_ally", True, False, False, 80),
        PartnerSpec("shady_vendor", False, True, False, 80),
        PartnerSpec("attacker", False, False, True, 80),
    ]

    strategies = {
        "learned governance": governor.decide,
        "combine everything": lambda offer: "combine",
        "reject everything": lambda offer: "reject",
    }
    results = {name: [] for name in strategies}
    for seed in range(8):
        sim = FederatedSimulation(partners, seed=seed, noise=1.0)
        for name, decide in strategies.items():
            results[name].append(sim.run_round(decide)["mse"])
    print("\nGlobal-model test MSE (mean over 8 coalitions; lower is better):")
    for name, mses in results.items():
        print(f"    {name:>20}: {np.mean(mses):.3f}")

    sim = FederatedSimulation(partners, seed=0, noise=1.0)
    round_info = sim.run_round(governor.decide)
    print("\nActions the learned policy took in one round:", round_info["actions"])

    # --- bonus: the data-sharing helper-microservice policy (Sec IV.D) ----
    print("\nData-sharing helper selection (Section IV.D):")
    router = HelperSelectionLearner().fit(sample_offers(30, seed=1))
    print("    held-out routing accuracy:",
          f"{router.accuracy(sample_offers(100, seed=5)):.2f}")


if __name__ == "__main__":
    main()
