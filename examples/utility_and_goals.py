#!/usr/bin/env python
"""The paper's full policy taxonomy in one scenario (Section I).

The paper distinguishes three policy types; this example runs all three
on the resupply domain:

* a **constraint policy** (learned ASG) rules out non-viable routes;
* a **utility-based policy** (ASP weak constraints) picks the best of
  the remaining routes under a value function;
* a **goal-based policy** watches mission metrics and flags when the
  system stops meeting the PBMS goals — the adaptation trigger.

Run:  python examples/utility_and_goals.py
"""

from repro.apps.resupply import ResupplyLearner, simulate_missions
from repro.core import Context
from repro.policy.goals import DeadlineGoal, GoalMonitor, ThresholdGoal
from repro.policy.utility import UtilityPolicy

ROUTES = ("main", "river", "narrow")

VALUE_RULES = """
% travel time per route; exposure penalty matters more than speed
time(main, 4). time(river, 2). time(narrow, 3).
exposed(main) :- high_threat_main.
exposed(river) :- high_threat_river.
exposed(narrow) :- high_threat_narrow.
:~ chosen(R), exposed(R). [1@2]
:~ chosen(R), time(R, T). [T@1]
"""


def main() -> None:
    # --- constraint layer: learn route viability from past missions ------
    learner = ResupplyLearner(phase="execution")
    learner.observe(simulate_missions(25, seed=11, drift=0.0))
    learner.fit()
    mission = simulate_missions(1, seed=2024, drift=0.0)[0]
    conditions = mission.executed
    viable = [r for r in ROUTES if learner.route_allowed(r, conditions)]
    print("Conditions:", conditions)
    print("Viable routes after the learned constraint policy:", viable)

    # --- utility layer: choose among viable routes -------------------------
    context_facts = []
    for route in ROUTES:
        if conditions.threat[route] == "high":
            context_facts.append(f"high_threat_{route}.")
    context = Context.from_text("\n".join(context_facts))
    utility = UtilityPolicy(viable, VALUE_RULES)
    choice = utility.choose(context)
    print("Utility-optimal route:", choice)
    print("Full ranking (option, (priority, cost)...):")
    for option, cost in utility.rank(context):
        print("   ", option, cost)

    # --- goal layer: monitor the mission --------------------------------------
    monitor = GoalMonitor(
        [
            ThresholdGoal("supply_level", "supplies", "ge", 40),
            DeadlineGoal("delivery", "delivered", deadline=4),
        ]
    )
    telemetry = [
        {"supplies": 80, "delivered": False},
        {"supplies": 55, "delivered": False},
        {"supplies": 35, "delivered": False},   # threshold breached
        {"supplies": 30, "delivered": True},    # delivered within deadline
    ]
    for tick_metrics in telemetry:
        for status in monitor.observe(tick_metrics):
            flag = "ok " if status.satisfied else "VIOLATION"
            print(f"  tick {monitor.tick}: [{flag}] {status.goal_name}: {status.detail}")
    print("Adaptation needed:", monitor.needs_adaptation(),
          f"(compliance {monitor.compliance_rate():.0%})")


if __name__ == "__main__":
    main()
