#!/usr/bin/env python
"""Natural language to grammar-based policies (paper Section III.B).

An operator writes coalition policy intents in controlled English; the
synthesizer compiles them into an initial ASG (syntax + hard
constraints) and a hypothesis space; the learner then refines the model
from operational examples — NL seeds the model, experience sharpens it.

Run:  python examples/nl_to_policy.py
"""

from repro.asp import parse_program
from repro.asg import explain_rejection, generate_policies
from repro.core import Context, GenerativePolicyModel, LabeledExample, learn_gpm
from repro.nl import GrammarSynthesizer, Vocabulary, parse_intents


def main() -> None:
    vocabulary = Vocabulary(
        subjects={
            "scout_uav": ["scout", "scout drone", "reconnaissance drone"],
            "cargo_ugv": ["cargo vehicle", "supply vehicle"],
            "medevac": ["medical evacuation unit", "medevac helicopter"],
        },
        actions={
            "cross_border": ["cross the border", "border crossing"],
            "transmit": ["broadcast", "send telemetry"],
            "night_operation": ["operate at night", "night ops"],
        },
        conditions={
            "ceasefire": ["a ceasefire", "the ceasefire holds"],
            "jamming": ["the adversary is jamming", "jamming is active"],
        },
    )

    intents_text = [
        "Scout drones must not cross the border unless a ceasefire",
        "Cargo vehicles may transmit",
        "Forbid cargo vehicles from night ops",
        "Allow the medevac helicopter to cross the border",
        "Scout drones must not broadcast while jamming is active",
    ]
    print("Operator intents:")
    for line in intents_text:
        print("   ", line)

    intents = parse_intents(intents_text, vocabulary)
    print("\nParsed:")
    for intent in intents:
        print("   ", intent.describe())

    synthesizer = GrammarSynthesizer(vocabulary)
    model = synthesizer.synthesize(intents)
    print(f"\nSynthesized grammar ({len(model.asg.cfg.productions)} productions), "
          f"{len(model.compiled_constraints)} compiled constraints, "
          f"{len(model.hypothesis_space)}-rule hypothesis space")

    quiet = Context.empty("quiet")
    ceasefire = Context.from_text("ceasefire.", name="ceasefire")
    for context in (quiet, ceasefire):
        print(f"\nPolicies valid under {context.name!r}:")
        for tokens in generate_policies(
            model.asg.with_context(context.program) if len(context) else model.asg
        ):
            print("   ", " ".join(tokens))

    # Why is the scout border crossing rejected in the quiet context?
    explanation = explain_rejection(model.asg, ("allow", "scout_uav", "cross_border"))
    print("\n" + explanation.text())

    # Refine from experience: medevac night operations turned out badly.
    gpm = GenerativePolicyModel(model.asg)
    refined, result = learn_gpm(
        gpm,
        model.hypothesis_space,
        [
            LabeledExample(("allow", "medevac", "night_operation"), valid=False),
            LabeledExample(("allow", "medevac", "cross_border")),
            LabeledExample(("allow", "scout_uav", "night_operation")),
        ],
    )
    print("\nAfter operational feedback, additionally learned:")
    for candidate in result.candidates:
        print("   ", repr(candidate.rule))


if __name__ == "__main__":
    main()
