"""A circuit breaker for solver-backed decision paths.

Classic three-state breaker (closed -> open -> half-open) with an
injectable clock so tests can drive recovery deterministically.  The PDP
wraps solver-backed interpretation in one of these: after
``failure_threshold`` consecutive failures the breaker opens and the
PDP stops attempting the expensive path entirely, serving its fallback
decision until ``recovery_time`` has passed; the first trial call after
that (half-open) closes the breaker on success or re-opens it on
failure.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.telemetry import incr as _tele_incr

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed recovery."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._failures = 0
        self._opened_at: float = 0.0
        self._state = self.CLOSED
        # cumulative telemetry
        self.total_failures = 0
        self.total_successes = 0
        self.times_opened = 0

    @property
    def state(self) -> str:
        if self._state == self.OPEN and (
            self._clock() - self._opened_at >= self.recovery_time
        ):
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the protected call be attempted right now?"""
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN:
            return True  # one trial call; its outcome decides the next state
        return False

    def record_success(self) -> None:
        self.total_successes += 1
        self._failures = 0
        if self._state != self.CLOSED:
            _tele_incr("breaker.closed")
        self._state = self.CLOSED

    def record_failure(self) -> None:
        self.total_failures += 1
        _tele_incr("breaker.failures")
        if self.state == self.HALF_OPEN:
            # failed trial: re-open and restart the recovery clock
            self._state = self.OPEN
            self._opened_at = self._clock()
            self.times_opened += 1
            _tele_incr("breaker.opened")
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = self.OPEN
            self._opened_at = self._clock()
            self.times_opened += 1
            _tele_incr("breaker.opened")

    def reset(self) -> None:
        self._failures = 0
        self._state = self.CLOSED

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, {self._failures}/"
            f"{self.failure_threshold} consecutive failures)"
        )
