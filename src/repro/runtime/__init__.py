"""Resource governance: budgets, deadlines, ambient scopes, breakers.

This subsystem exists so that no solver/learner call in the framework
can run unbounded (ROADMAP: "you cannot scale what you cannot bound or
retry").  See :mod:`repro.runtime.budget` for the governance model and
:mod:`repro.runtime.breaker` for the degradation primitive used by the
PDP.
"""

from repro.runtime.breaker import CircuitBreaker
from repro.runtime.budget import (
    Budget,
    Deadline,
    budget_scope,
    current_budget,
    spend,
)

__all__ = [
    "Budget",
    "CircuitBreaker",
    "Deadline",
    "budget_scope",
    "current_budget",
    "spend",
]
