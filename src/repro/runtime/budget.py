"""Resource budgets and deadlines for cooperative cancellation.

Every potentially unbounded computation in this package (ASP grounding
and solving, Earley parsing, ASG membership, hypothesis search) accepts
a :class:`Budget` — a combined step budget and wall-clock deadline that
the computation *ticks* as it works.  Exhausting either limit raises a
typed :class:`~repro.errors.ResourceError` subclass, so callers at
framework boundaries (the PDP, the PAdaP) can catch one base class and
degrade gracefully instead of stalling the whole AGENP loop.

Budgets can also be installed *ambiently* with :func:`budget_scope`::

    with budget_scope(Budget(max_steps=100_000, wall_clock=0.5)):
        models = solve_text(hard_program)   # bounded, no signature changes

Any governed primitive that is not handed an explicit budget consults
:func:`current_budget`, so one scope bounds an arbitrarily deep call
tree (e.g. PDP -> interpreter -> ASG membership -> grounder -> solver).

Cooperative cancellation: another thread (or a supervising callback) may
call :meth:`Budget.cancel`; the next tick raises
:class:`~repro.errors.OperationCancelledError`.
"""

from __future__ import annotations

import contextlib
import time
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.errors import (
    BudgetExceededError,
    OperationCancelledError,
    SolveTimeoutError,
)

__all__ = [
    "Budget",
    "Deadline",
    "budget_scope",
    "current_budget",
    "spend",
]

# How many ticks pass between wall-clock checks.  Reading the clock is
# ~100x the cost of the counter increment, so deadline precision is
# traded for hot-loop throughput.
_TIME_CHECK_INTERVAL = 256


class Deadline:
    """A wall-clock deadline against an injectable monotonic clock."""

    __slots__ = ("limit", "_clock", "_start")

    def __init__(self, seconds: float, clock: Callable[[], float] = time.monotonic):
        if seconds < 0:
            raise ValueError("deadline seconds must be >= 0")
        self.limit = float(seconds)
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._start

    @property
    def remaining(self) -> float:
        return max(0.0, self.limit - self.elapsed)

    @property
    def expired(self) -> bool:
        return self.elapsed > self.limit

    def check(self) -> None:
        elapsed = self.elapsed
        if elapsed > self.limit:
            raise SolveTimeoutError(elapsed=elapsed, limit=self.limit)

    def __repr__(self) -> str:
        return f"Deadline({self.remaining:.3f}s of {self.limit:.3f}s left)"


class Budget:
    """A step budget plus optional wall-clock deadline.

    ``max_steps=None`` means unlimited steps; ``wall_clock=None`` means
    no deadline.  A budget with neither limit still supports
    cancellation, which makes it a pure cooperative-cancellation token.
    """

    __slots__ = ("max_steps", "deadline", "_steps", "_cancelled", "_until_time_check")

    def __init__(
        self,
        max_steps: Optional[int] = None,
        wall_clock: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_steps is not None and max_steps < 0:
            raise ValueError("max_steps must be >= 0")
        self.max_steps = max_steps
        self.deadline = Deadline(wall_clock, clock) if wall_clock is not None else None
        self._steps = 0
        self._cancelled = False
        self._until_time_check = 1  # check the clock on the first tick

    # -- accounting ---------------------------------------------------------

    @property
    def steps_used(self) -> int:
        return self._steps

    @property
    def remaining_steps(self) -> Optional[int]:
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self._steps)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Cooperatively cancel: the next tick/check raises."""
        self._cancelled = True

    def tick(self, n: int = 1) -> None:
        """Record ``n`` units of work; raise if any limit is now exceeded."""
        self._steps += n
        if self._cancelled:
            raise OperationCancelledError("budget cancelled")
        if self.max_steps is not None and self._steps > self.max_steps:
            raise BudgetExceededError(
                steps_used=self._steps, max_steps=self.max_steps
            )
        if self.deadline is not None:
            self._until_time_check -= 1
            if self._until_time_check <= 0:
                self._until_time_check = _TIME_CHECK_INTERVAL
                self.deadline.check()

    def check(self) -> None:
        """Raise if the budget is already exhausted (no work recorded)."""
        if self._cancelled:
            raise OperationCancelledError("budget cancelled")
        if self.max_steps is not None and self._steps > self.max_steps:
            raise BudgetExceededError(
                steps_used=self._steps, max_steps=self.max_steps
            )
        if self.deadline is not None:
            self.deadline.check()

    @property
    def exhausted(self) -> bool:
        """Non-raising probe of the same conditions :meth:`check` raises on."""
        if self._cancelled:
            return True
        if self.max_steps is not None and self._steps > self.max_steps:
            return True
        return self.deadline is not None and self.deadline.expired

    def fresh(self) -> "Budget":
        """A new budget with the same limits and a restarted clock."""
        clock = self.deadline._clock if self.deadline is not None else time.monotonic
        wall_clock = self.deadline.limit if self.deadline is not None else None
        return Budget(max_steps=self.max_steps, wall_clock=wall_clock, clock=clock)

    def __repr__(self) -> str:
        parts = [f"steps={self._steps}"]
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.deadline is not None:
            parts.append(repr(self.deadline))
        if self._cancelled:
            parts.append("CANCELLED")
        return f"Budget({', '.join(parts)})"


_AMBIENT: ContextVar[Optional[Budget]] = ContextVar("repro_ambient_budget", default=None)


def current_budget() -> Optional[Budget]:
    """The innermost ambient budget, or None outside any scope."""
    return _AMBIENT.get()


@contextlib.contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` as the ambient budget for the dynamic extent.

    ``budget_scope(None)`` masks any outer scope (useful to exempt a
    subcomputation from governance).
    """
    token = _AMBIENT.set(budget)
    try:
        yield budget
    finally:
        _AMBIENT.reset(token)


def spend(n: int = 1, budget: Optional[Budget] = None) -> None:
    """Tick ``budget`` or, when None, the ambient budget (no-op outside)."""
    active = budget if budget is not None else _AMBIENT.get()
    if active is not None:
        active.tick(n)
