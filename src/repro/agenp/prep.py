"""The Policy Refinement Point (PReP).

"The PReP takes the information provided by the PBMS and produces an
ASG that is pertinent to the context within which the AMS is operating.
The PReP then uses the ASG to learn its GPM and generates the policies
for the AMS which are captured in the Policy Repository."
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.agenp.pbms import PolicySpecification
from repro.agenp.pcp import CheckOutcome, PolicyCheckingPoint
from repro.agenp.repositories import (
    PolicyRepository,
    RepresentationsRepository,
    StoredPolicy,
)

__all__ = ["PolicyRefinementPoint"]


class PolicyRefinementPoint:
    """Turns the PBMS specification into a GPM and generates policies."""

    def __init__(
        self,
        specification: PolicySpecification,
        representations: RepresentationsRepository,
        policies: PolicyRepository,
        pcp: Optional[PolicyCheckingPoint] = None,
        max_policy_length: int = 12,
        max_policies: int = 10_000,
    ):
        self.specification = specification
        self.representations = representations
        self.policies = policies
        self.pcp = pcp
        self.max_policy_length = max_policy_length
        self.max_policies = max_policies

    def bootstrap(self) -> GenerativePolicyModel:
        """Build the initial GPM from the specification and store it."""
        model = GenerativePolicyModel(self.specification.initial_asg())
        self.representations.store(model)
        return model

    def current_model(self) -> GenerativePolicyModel:
        if len(self.representations) == 0:
            return self.bootstrap()
        return self.representations.latest()

    def generate(self, context: Context) -> Tuple[List[StoredPolicy], List[CheckOutcome]]:
        """Generate the policy set for ``context`` and install it.

        Candidates are enumerated from ``L(G(C))``, filtered by the PCP
        (if attached), and the accepted set replaces the repository
        contents.  Returns (installed policies, PCP rejections).
        """
        model = self.current_model()
        strings = model.generate(
            context,
            max_length=self.max_policy_length,
            max_policies=self.max_policies,
        )
        candidates = [
            StoredPolicy(tokens, context.name, model.version) for tokens in strings
        ]
        rejections: List[CheckOutcome] = []
        if self.pcp is not None:
            candidates, rejections = self.pcp.filter_policies(
                candidates, model, context
            )
        self.policies.replace(candidates)
        return candidates, rejections
