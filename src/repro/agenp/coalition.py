"""Multi-party collaboration (paper Section III.B research direction).

"AGENP's design enables it to be instantiated for multi-party systems
... for which efficient mechanisms are required to communicate and
share policies."  This module provides that mechanism as an in-process
message-passing layer hardened against the paper's *fragmented
communications* (Section I):

* :class:`FaultPlan` — a deterministic, seeded fault-injection plan:
  drop, duplicate, reorder, and delay probabilities plus party
  crash/restart windows;
* :class:`CoalitionNetwork` — a store-and-forward fabric between named
  parties that executes the fault plan (or a plain ``loss_rate``) and
  keeps delivery telemetry;
* :class:`CoalitionParty` — an AMS plus a mailbox and the policy-sharing
  protocol.  Sharing is *reliable by default*: every ``share`` message
  carries a per-peer sequence number, receivers de-duplicate on
  ``(sender, seq)`` and answer with transport-level ``ack`` messages,
  and unacked shares are retransmitted with exponential backoff — so
  policy propagation converges even under heavy injected faults.
  ``reliable=False`` ablates the retry machinery (fire-and-forget, as
  the fabric behaved before this layer existed);
* :class:`Coalition` — round-based orchestration with a convergence
  probe (:meth:`Coalition.converged` /
  :meth:`Coalition.run_until_converged`).

Protocol-level validation is unchanged: receivers validate shared
policies through their local PCP and answer with ``rating`` messages
that drive per-sender trust.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Set, Tuple

from repro.agenp.ams import AutonomousManagedSystem
from repro.agenp.repositories import StoredPolicy
from repro.errors import AgenpError
from repro.telemetry import span as _tele_span

__all__ = [
    "Message",
    "FaultPlan",
    "CoalitionNetwork",
    "CoalitionParty",
    "Coalition",
]


class Message(NamedTuple):
    """One coalition message."""

    message_id: int
    sender: str
    recipient: str
    kind: str  # "share" | "ack" | "rating"
    payload: dict


class _FaultVerdict(NamedTuple):
    drop: bool
    duplicate: bool
    delay: int  # ticks to hold the message in flight (0 = deliver now)
    reorder: bool


class FaultPlan:
    """A deterministic, seeded fault-injection plan for the fabric.

    Per-message faults are drawn from a private RNG seeded with ``seed``
    (a fixed number of draws per message, so the same send sequence
    always yields the same fault sequence).  ``crash_windows`` maps a
    party name to half-open tick intervals ``[start, end)`` during which
    the party is down: its mailbox is wiped on entry and messages to or
    from it are lost.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay: int = 2,
        crash_windows: Optional[Mapping[str, Sequence[Tuple[int, int]]]] = None,
    ):
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
            ("delay_rate", delay_rate),
        ):
            if not 0.0 <= rate < 1.0:
                raise AgenpError(f"{name} must be in [0, 1)")
        if max_delay < 1:
            raise AgenpError("max_delay must be >= 1")
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.crash_windows: Dict[str, List[Tuple[int, int]]] = {
            name: sorted(tuple(w) for w in windows)
            for name, windows in (crash_windows or {}).items()
        }
        self._rng = random.Random(seed)

    def verdict(self) -> _FaultVerdict:
        """Draw the fault outcome for one message (always four draws)."""
        rng = self._rng
        drop = rng.random() < self.drop_rate
        duplicate = rng.random() < self.duplicate_rate
        delayed = rng.random() < self.delay_rate
        reorder = rng.random() < self.reorder_rate
        delay = rng.randint(1, self.max_delay) if delayed else 0
        return _FaultVerdict(drop, duplicate, delay, reorder)

    def down(self, name: str, tick: int) -> bool:
        """Is ``name`` inside one of its crash windows at ``tick``?"""
        for start, end in self.crash_windows.get(name, ()):
            if start <= tick < end:
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, drop={self.drop_rate}, "
            f"dup={self.duplicate_rate}, reorder={self.reorder_rate}, "
            f"delay={self.delay_rate}x{self.max_delay}, "
            f"crashes={sum(len(w) for w in self.crash_windows.values())})"
        )


class CoalitionNetwork:
    """A faulty store-and-forward fabric between named parties.

    Backwards-compatible simple mode: ``loss_rate`` alone reproduces the
    original lossy fabric (independent drops).  A ``fault_plan`` enables
    the full fault model; time advances via :meth:`advance` (one tick
    per coalition round), which delivers delayed messages and applies
    crash windows.
    """

    def __init__(
        self,
        loss_rate: float = 0.0,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise AgenpError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self.fault_plan = fault_plan
        self._rng = random.Random(seed)
        self._mailboxes: Dict[str, List[Message]] = {}
        self._message_ids = itertools.count(1)  # per-network: reproducible ids
        self._in_flight: List[Tuple[int, Message]] = []  # (due tick, message)
        self._down: Set[str] = set()  # manually crashed
        self._auto_down: Set[str] = set()  # crashed by plan windows
        self.tick = 0
        # telemetry
        self.sent = 0
        self.dropped = 0
        self.delivered = 0
        self.duplicated = 0
        self.delayed = 0
        self.reordered = 0
        self.crash_dropped = 0

    # -- membership and liveness -------------------------------------------

    def register(self, name: str) -> None:
        self._mailboxes.setdefault(name, [])

    def parties(self) -> List[str]:
        return sorted(self._mailboxes)

    def is_down(self, name: str) -> bool:
        return name in self._down or name in self._auto_down

    def crash(self, name: str) -> None:
        """Take a party down: wipe its mailbox and volatile in-flight state."""
        if name not in self._mailboxes:
            raise AgenpError(f"unknown party {name!r}")
        self._down.add(name)
        self._wipe(name)

    def restart(self, name: str) -> None:
        if name not in self._mailboxes:
            raise AgenpError(f"unknown party {name!r}")
        self._down.discard(name)

    def _wipe(self, name: str) -> None:
        self._mailboxes[name] = []
        self._in_flight = [
            (due, m) for due, m in self._in_flight if m.recipient != name
        ]

    # -- time ----------------------------------------------------------------

    def advance(self) -> None:
        """One tick: apply crash windows, then deliver due delayed messages."""
        self.tick += 1
        plan = self.fault_plan
        if plan is not None:
            for name in self._mailboxes:
                if plan.down(name, self.tick):
                    if name not in self._auto_down:
                        self._auto_down.add(name)
                        self._wipe(name)
                else:
                    self._auto_down.discard(name)
        still_flying: List[Tuple[int, Message]] = []
        for due, message in self._in_flight:
            if due > self.tick:
                still_flying.append((due, message))
            elif self.is_down(message.recipient):
                self.crash_dropped += 1
            else:
                self._deliver(message, reorder=False)
        self._in_flight = still_flying

    # -- transport ------------------------------------------------------------

    def _deliver(self, message: Message, reorder: bool) -> None:
        mailbox = self._mailboxes[message.recipient]
        if reorder and mailbox:
            mailbox.insert(self._rng.randrange(len(mailbox) + 1), message)
            self.reordered += 1
        else:
            mailbox.append(message)
        self.delivered += 1

    def send(self, sender: str, recipient: str, kind: str, payload: dict) -> bool:
        """Send one message; returns False if the fabric lost it."""
        if recipient not in self._mailboxes:
            raise AgenpError(f"unknown recipient {recipient!r}")
        self.sent += 1
        if self.is_down(sender) or self.is_down(recipient):
            self.dropped += 1
            self.crash_dropped += 1
            return False
        message = Message(next(self._message_ids), sender, recipient, kind, payload)
        if self.fault_plan is None:
            if self._rng.random() < self.loss_rate:
                self.dropped += 1
                return False
            self._deliver(message, reorder=False)
            return True
        verdict = self.fault_plan.verdict()
        if verdict.drop:
            self.dropped += 1
            return False
        copies = 2 if verdict.duplicate else 1
        if verdict.duplicate:
            self.duplicated += 1
        for __ in range(copies):
            if verdict.delay:
                self._in_flight.append((self.tick + verdict.delay, message))
                self.delayed += 1
            else:
                self._deliver(message, reorder=verdict.reorder)
        return True

    def broadcast(self, sender: str, kind: str, payload: dict) -> int:
        """Send to every other party; returns how many were delivered."""
        delivered = 0
        for name in self.parties():
            if name != sender and self.send(sender, name, kind, payload):
                delivered += 1
        return delivered

    def drain(self, name: str) -> List[Message]:
        """Take and clear a party's mailbox."""
        messages = self._mailboxes.get(name, [])
        self._mailboxes[name] = []
        return messages


class _PendingShare(NamedTuple):
    payload: dict
    attempts: int
    next_retry: int  # network tick at which to retransmit


class CoalitionParty:
    """An AMS participating in the sharing protocol.

    With ``reliable=True`` (default) the party runs the full
    seq/ack/retransmit protocol: each ``(policy, context)`` is announced
    to each peer exactly once under a fresh per-peer sequence number and
    retransmitted with capped exponential backoff
    (``min(retry_base * 2^attempts, retry_cap)`` ticks, at most
    ``max_retries`` attempts) until acked.  Receivers acknowledge every
    share (including duplicates) and process each ``(sender, seq)`` at
    most once, so retries never double-adopt and never double-rate.
    """

    def __init__(
        self,
        ams: AutonomousManagedSystem,
        network: CoalitionNetwork,
        reliable: bool = True,
        retry_base: int = 1,
        retry_cap: int = 4,
        max_retries: int = 16,
    ):
        self.ams = ams
        self.network = network
        network.register(ams.name)
        self.reliable = reliable
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.max_retries = max_retries
        self.trust: Dict[str, float] = {}
        self.adopted: List[StoredPolicy] = []
        self.rejected_count = 0
        self.alive = True
        # reliability state
        self._next_seq: Dict[str, int] = {}  # per-recipient outbound counter
        self._pending: Dict[Tuple[str, int], _PendingShare] = {}
        self._announced: Dict[str, Dict[tuple, int]] = {}  # peer -> key -> seq
        self._seen: Dict[str, Set[int]] = {}  # sender -> processed seqs (durable)
        self._seen_message_ids: Set[int] = set()  # exact network-duplicate dedup
        self.retransmissions = 0
        self.dedup_hits = 0  # duplicates suppressed (message-id or seq level)

    @property
    def name(self) -> str:
        return self.ams.name

    @property
    def live(self) -> bool:
        return self.alive and not self.network.is_down(self.name)

    def crash(self) -> None:
        """Go down: volatile mailbox state is lost; protocol state is durable."""
        self.alive = False
        self.network.crash(self.name)

    def restart(self) -> None:
        self.alive = True
        self.network.restart(self.name)

    def trust_in(self, sender: str, initial: float = 0.5) -> float:
        return self.trust.get(sender, initial)

    # -- protocol: sending -------------------------------------------------

    def share_policies(self) -> int:
        """Announce every locally generated policy to every peer.

        Each ``(policy, context, peer)`` triple is announced once; the
        retransmit loop (not re-announcement) provides reliability.
        Returns how many announcements the fabric accepted this call.
        """
        context_name = self.ams.current_context().name
        delivered = 0
        for policy in self.ams.policy_repository.by_source("local"):
            key = (tuple(policy.tokens), context_name)
            for peer in self.network.parties():
                if peer == self.name:
                    continue
                announced = self._announced.setdefault(peer, {})
                if key in announced:
                    continue
                seq = self._next_seq.get(peer, 0) + 1
                self._next_seq[peer] = seq
                announced[key] = seq
                payload = {
                    "tokens": list(policy.tokens),
                    "context": context_name,
                    "seq": seq,
                }
                if self.network.send(self.name, peer, "share", payload):
                    delivered += 1
                if self.reliable:
                    self._pending[(peer, seq)] = _PendingShare(
                        payload, 0, self.network.tick + self.retry_base
                    )
        return delivered

    def tick_retransmits(self) -> int:
        """Retransmit overdue unacked shares; returns how many were resent."""
        if not self.reliable:
            return 0
        now = self.network.tick
        resent = 0
        for key, pending in list(self._pending.items()):
            if pending.attempts >= self.max_retries or now < pending.next_retry:
                continue
            peer, __seq = key
            self.network.send(self.name, peer, "share", pending.payload)
            attempts = pending.attempts + 1
            backoff = min(self.retry_base * (2 ** attempts), self.retry_cap)
            self._pending[key] = _PendingShare(
                pending.payload, attempts, now + backoff
            )
            self.retransmissions += 1
            resent += 1
        return resent

    # -- protocol: receiving ------------------------------------------------

    def process_mailbox(self, min_trust: float = 0.25) -> Tuple[int, int]:
        """Handle queued messages; returns (adopted, rejected) counts."""
        adopted = rejected = 0
        for message in self.network.drain(self.name):
            if message.message_id in self._seen_message_ids:
                self.dedup_hits += 1
                continue  # exact duplicate injected by the fabric
            self._seen_message_ids.add(message.message_id)
            if message.kind == "share":
                outcome = self._handle_share(message, min_trust)
                if outcome is True:
                    adopted += 1
                elif outcome is False:
                    rejected += 1
            elif message.kind == "ack":
                self._pending.pop((message.sender, message.payload["seq"]), None)
            elif message.kind == "rating":
                self._absorb_rating(message)
        return adopted, rejected

    def _handle_share(self, message: Message, min_trust: float) -> Optional[bool]:
        """Process one share; True=adopted, False=rejected, None=duplicate."""
        seq = message.payload.get("seq")
        if seq is not None:
            # transport-level ack, sent even for retransmits of processed
            # shares (the original ack may itself have been lost)
            self.network.send(self.name, message.sender, "ack", {"seq": seq})
            seen = self._seen.setdefault(message.sender, set())
            if seq in seen:
                self.dedup_hits += 1
                return None
            seen.add(seq)
        if self.trust_in(message.sender) < min_trust:
            return False
        ok = self._consider(message)
        self.network.send(
            self.name,
            message.sender,
            "rating",
            {"useful": ok, "about": seq if seq is not None else message.message_id},
        )
        return ok

    def _consider(self, message: Message) -> bool:
        candidate = StoredPolicy(
            tuple(message.payload["tokens"]),
            self.ams.current_context().name,
            self.ams.model().version,
            source=f"shared:{message.sender}",
        )
        outcome = self.ams.pcp.check_policy(
            candidate, self.ams.model(), self.ams.current_context()
        )
        if outcome.accepted:
            self.ams.policy_repository.add(candidate)
            self.adopted.append(candidate)
            self._update_trust(message.sender, True)
            return True
        self.rejected_count += 1
        self._update_trust(message.sender, False)
        return False

    def _absorb_rating(self, message: Message) -> None:
        self._update_trust(message.sender, bool(message.payload.get("useful")))

    def _update_trust(self, other: str, useful: bool, alpha: float = 0.25) -> None:
        current = self.trust_in(other)
        target = 1.0 if useful else 0.0
        self.trust[other] = (1 - alpha) * current + alpha * target

    # -- convergence probe ----------------------------------------------------

    def announced_to(self, peer: str) -> Set[int]:
        """Sequence numbers of all shares this party owes ``peer``."""
        return set(self._announced.get(peer, {}).values())

    def processed_from(self, sender: str) -> Set[int]:
        """Sequence numbers of ``sender``'s shares this party has processed."""
        return set(self._seen.get(sender, set()))


class Coalition:
    """Round-based orchestration of a set of parties."""

    def __init__(self, parties: Sequence[CoalitionParty]):
        names = [p.name for p in parties]
        if len(set(names)) != len(names):
            raise AgenpError("party names must be unique")
        self.parties = list(parties)
        if parties and any(p.network is not parties[0].network for p in parties):
            raise AgenpError("all parties must share one network")
        self.network = parties[0].network if parties else None

    def round(self, min_trust: float = 0.25) -> Dict[str, Tuple[int, int]]:
        """One share/retransmit/process round; per-party (adopted, rejected).

        The network advances one tick first (delivering delayed messages
        and applying crash windows); parties that are down skip the
        round and report ``(0, 0)``.
        """
        with _tele_span("coalition.round") as sp:
            if self.network is not None:
                self.network.advance()
            live = [p for p in self.parties if p.live]
            dedup_before = sum(p.dedup_hits for p in self.parties)
            for party in live:
                party.share_policies()
            resent = 0
            for party in live:
                resent += party.tick_retransmits()
            results: Dict[str, Tuple[int, int]] = {
                p.name: (0, 0) for p in self.parties
            }
            for party in live:
                results[party.name] = party.process_mailbox(min_trust=min_trust)
            # second pass so ack/rating replies are absorbed in the same round
            for party in live:
                party.process_mailbox(min_trust=min_trust)
            sp.incr("coalition.retransmits", resent)
            sp.incr(
                "coalition.dedup_hits",
                sum(p.dedup_hits for p in self.parties) - dedup_before,
            )
            sp.incr("coalition.adopted", sum(a for a, __ in results.values()))
            sp.incr("coalition.rejected", sum(r for __, r in results.values()))
            sp.incr("coalition.rounds")
            if self.network is not None:
                sp.set(
                    tick=self.network.tick,
                    live_parties=len(live),
                    delivered=self.network.delivered,
                    dropped=self.network.dropped,
                )
            return results

    def run(self, rounds: int, min_trust: float = 0.25) -> List[Dict[str, Tuple[int, int]]]:
        return [self.round(min_trust=min_trust) for __ in range(rounds)]

    def converged(self) -> bool:
        """Has every live party processed every live peer's announcements?"""
        live = [p for p in self.parties if p.live]
        for sender in live:
            for receiver in live:
                if sender is receiver:
                    continue
                owed = sender.announced_to(receiver.name)
                if not owed <= receiver.processed_from(sender.name):
                    return False
        return True

    def run_until_converged(
        self, max_rounds: int = 50, min_trust: float = 0.25
    ) -> Optional[int]:
        """Run rounds until :meth:`converged`; rounds taken, or None."""
        with _tele_span("coalition.converge", max_rounds=max_rounds) as sp:
            for round_number in range(1, max_rounds + 1):
                self.round(min_trust=min_trust)
                if self.converged():
                    sp.set(rounds=round_number, converged=True)
                    sp.incr("coalition.convergence_rounds", round_number)
                    return round_number
            sp.set(rounds=max_rounds, converged=False)
            sp.incr("coalition.convergence_failures")
            return None
