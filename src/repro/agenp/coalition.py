"""Multi-party collaboration (paper Section III.B research direction).

"AGENP's design enables it to be instantiated for multi-party systems
... for which efficient mechanisms are required to communicate and
share policies."  This module provides that mechanism as an in-process
message-passing layer:

* :class:`CoalitionNetwork` — a lossy, queue-based message fabric
  (coalition environments have *fragmented communications*, paper
  Section I, so message loss is a first-class parameter);
* :class:`CoalitionParty` — an AMS plus a mailbox and the policy-sharing
  protocol: ``share`` messages carry policy strings with their context,
  receivers validate through their local PCP and answer with ``rating``
  messages that drive per-sender trust;
* :class:`Coalition` — round-based orchestration.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.agenp.ams import AutonomousManagedSystem
from repro.agenp.repositories import StoredPolicy
from repro.errors import AgenpError

__all__ = ["Message", "CoalitionNetwork", "CoalitionParty", "Coalition"]

_message_ids = itertools.count(1)


class Message(NamedTuple):
    """One coalition message."""

    message_id: int
    sender: str
    recipient: str
    kind: str  # "share" | "rating"
    payload: dict


class CoalitionNetwork:
    """A lossy store-and-forward fabric between named parties."""

    def __init__(self, loss_rate: float = 0.0, seed: int = 0):
        if not 0.0 <= loss_rate < 1.0:
            raise AgenpError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)
        self._mailboxes: Dict[str, List[Message]] = {}
        self.sent = 0
        self.dropped = 0

    def register(self, name: str) -> None:
        self._mailboxes.setdefault(name, [])

    def parties(self) -> List[str]:
        return sorted(self._mailboxes)

    def send(self, sender: str, recipient: str, kind: str, payload: dict) -> bool:
        """Send one message; returns False if the fabric dropped it."""
        if recipient not in self._mailboxes:
            raise AgenpError(f"unknown recipient {recipient!r}")
        self.sent += 1
        if self._rng.random() < self.loss_rate:
            self.dropped += 1
            return False
        self._mailboxes[recipient].append(
            Message(next(_message_ids), sender, recipient, kind, payload)
        )
        return True

    def broadcast(self, sender: str, kind: str, payload: dict) -> int:
        """Send to every other party; returns how many were delivered."""
        delivered = 0
        for name in self.parties():
            if name != sender and self.send(sender, name, kind, payload):
                delivered += 1
        return delivered

    def drain(self, name: str) -> List[Message]:
        """Take and clear a party's mailbox."""
        messages = self._mailboxes.get(name, [])
        self._mailboxes[name] = []
        return messages


class CoalitionParty:
    """An AMS participating in the sharing protocol."""

    def __init__(self, ams: AutonomousManagedSystem, network: CoalitionNetwork):
        self.ams = ams
        self.network = network
        network.register(ams.name)
        self.trust: Dict[str, float] = {}
        self.adopted: List[StoredPolicy] = []
        self.rejected_count = 0

    @property
    def name(self) -> str:
        return self.ams.name

    def trust_in(self, sender: str, initial: float = 0.5) -> float:
        return self.trust.get(sender, initial)

    # -- protocol: sending -------------------------------------------------

    def share_policies(self) -> int:
        """Broadcast every locally generated policy with its context."""
        context_name = self.ams.current_context().name
        delivered = 0
        for policy in self.ams.policy_repository.by_source("local"):
            delivered += self.network.broadcast(
                self.name,
                "share",
                {"tokens": policy.tokens, "context": context_name},
            )
        return delivered

    # -- protocol: receiving ------------------------------------------------

    def process_mailbox(self, min_trust: float = 0.25) -> Tuple[int, int]:
        """Handle queued messages; returns (adopted, rejected) counts."""
        adopted = rejected = 0
        for message in self.network.drain(self.name):
            if message.kind == "share":
                if self.trust_in(message.sender) < min_trust:
                    rejected += 1
                    continue
                ok = self._consider(message)
                if ok:
                    adopted += 1
                else:
                    rejected += 1
                self.network.send(
                    self.name,
                    message.sender,
                    "rating",
                    {"useful": ok, "about": message.message_id},
                )
            elif message.kind == "rating":
                self._absorb_rating(message)
        return adopted, rejected

    def _consider(self, message: Message) -> bool:
        candidate = StoredPolicy(
            tuple(message.payload["tokens"]),
            self.ams.current_context().name,
            self.ams.model().version,
            source=f"shared:{message.sender}",
        )
        outcome = self.ams.pcp.check_policy(
            candidate, self.ams.model(), self.ams.current_context()
        )
        if outcome.accepted:
            self.ams.policy_repository.add(candidate)
            self.adopted.append(candidate)
            self._update_trust(message.sender, True)
            return True
        self.rejected_count += 1
        self._update_trust(message.sender, False)
        return False

    def _absorb_rating(self, message: Message) -> None:
        self._update_trust(message.sender, bool(message.payload.get("useful")))

    def _update_trust(self, other: str, useful: bool, alpha: float = 0.25) -> None:
        current = self.trust_in(other)
        target = 1.0 if useful else 0.0
        self.trust[other] = (1 - alpha) * current + alpha * target


class Coalition:
    """Round-based orchestration of a set of parties."""

    def __init__(self, parties: Sequence[CoalitionParty]):
        names = [p.name for p in parties]
        if len(set(names)) != len(names):
            raise AgenpError("party names must be unique")
        self.parties = list(parties)

    def round(self, min_trust: float = 0.25) -> Dict[str, Tuple[int, int]]:
        """One share/process round; returns per-party (adopted, rejected)."""
        for party in self.parties:
            party.share_policies()
        results = {}
        for party in self.parties:
            results[party.name] = party.process_mailbox(min_trust=min_trust)
        # second pass so rating replies are absorbed in the same round
        for party in self.parties:
            party.process_mailbox(min_trust=min_trust)
        return results

    def run(self, rounds: int, min_trust: float = 0.25) -> List[Dict[str, Tuple[int, int]]]:
        return [self.round(min_trust=min_trust) for __ in range(rounds)]
