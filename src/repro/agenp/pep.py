"""The Policy Enforcement Point (PEP).

Enforces PDP decisions on managed resources.  In this reproduction the
managed resources are in-process objects exposing ``perform(action)``;
the PEP gates calls on the decision and records what happened, feeding
the monitoring loop.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.agenp.monitoring import DecisionRecord
from repro.policy.model import Decision

__all__ = ["EnforcementResult", "PolicyEnforcementPoint", "ManagedResource"]


class ManagedResource:
    """A simulated managed resource: counts performed/blocked actions."""

    def __init__(self, name: str):
        self.name = name
        self.performed: List[str] = []
        self.blocked: List[str] = []

    def perform(self, action: str) -> None:
        self.performed.append(action)

    def block(self, action: str) -> None:
        self.blocked.append(action)


class EnforcementResult:
    """What the PEP did for one decision."""

    __slots__ = ("record", "executed", "action")

    def __init__(self, record: DecisionRecord, executed: bool, action: str):
        self.record = record
        self.executed = executed
        self.action = action

    def __repr__(self) -> str:
        verb = "executed" if self.executed else "blocked"
        return f"EnforcementResult({verb} {self.action!r})"


class PolicyEnforcementPoint:
    """Applies decisions: permit -> perform, anything else -> block."""

    def __init__(self, resource: Optional[ManagedResource] = None):
        self.resource = resource if resource is not None else ManagedResource("default")
        self.results: List[EnforcementResult] = []

    def enforce(self, record: DecisionRecord, action: str) -> EnforcementResult:
        executed = record.decision is Decision.PERMIT
        if executed:
            self.resource.perform(action)
        else:
            self.resource.block(action)
        record.enforced = True
        result = EnforcementResult(record, executed, action)
        self.results.append(result)
        return result
