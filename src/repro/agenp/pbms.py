"""The Policy-Based Management System (PBMS) side of Figure 2.

The PBMS "provid[es] a characterization of the policy space within
which the AMS will operate in terms of a CFG, goals, and constraints".
:class:`PolicySpecification` is that characterization; global refinement
turns it into the initial ASG the PReP starts from.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.asp.parser import parse_program
from repro.asp.rules import Program
from repro.asg.annotated import ASG
from repro.asg.asg_parser import parse_asg
from repro.errors import AgenpError
from repro.learning.mode_bias import CandidateRule

__all__ = ["PolicySpecification", "PolicyBasedManagementSystem"]


class PolicySpecification:
    """What the PBMS hands to an AMS.

    * ``grammar_text`` — the policy-language syntax (ASG text format; may
      already carry baseline semantic annotations, e.g. attribute facts);
    * ``global_constraints`` — ASP text of high-level constraints every
      generated policy must respect (added to the start productions);
    * ``goals`` — the goals monitoring judges outcomes against: either
      free-text descriptions or live goal objects
      (:class:`~repro.policy.goals.ThresholdGoal` /
      :class:`~repro.policy.goals.DeadlineGoal`), which the AMS tracks
      with a :class:`~repro.policy.goals.GoalMonitor`;
    * ``hypothesis_space`` — the learnable rules the AMS may adopt.
    """

    def __init__(
        self,
        grammar_text: str,
        global_constraints: str = "",
        goals: Sequence = (),
        hypothesis_space: Sequence[CandidateRule] = (),
    ):
        self.grammar_text = grammar_text
        self.global_constraints = global_constraints
        self.goals = list(goals)
        self.hypothesis_space = list(hypothesis_space)

    def goal_objects(self) -> List:
        """The live (non-string) goals, for the AMS's goal monitor."""
        return [goal for goal in self.goals if not isinstance(goal, str)]

    def initial_asg(self) -> ASG:
        """Global refinement: grammar + global constraints -> initial ASG."""
        asg = parse_asg(self.grammar_text)
        if self.global_constraints.strip():
            constraints = parse_program(self.global_constraints)
            asg = asg.with_context(constraints, where="start")
        return asg


class PolicyBasedManagementSystem:
    """The managing party: distributes specifications to AMSs."""

    def __init__(self) -> None:
        self._specifications: dict = {}

    def publish(self, name: str, specification: PolicySpecification) -> None:
        self._specifications[name] = specification

    def specification(self, name: str) -> PolicySpecification:
        try:
            return self._specifications[name]
        except KeyError:
            raise AgenpError(f"no specification published under {name!r}") from None

    def names(self) -> List[str]:
        return sorted(self._specifications)
