"""Monitoring of PDP/PEP operations (Figure 2's "Monitoring" arrows).

The AGENP loop requires "a history of the decisions that have been made,
the actions that have been taken, and the effects that they have had on
the state of the system".  :class:`MonitoringLog` is that history; the
PAdaP turns flagged records into new training examples, and degradation
events (budget-exhausted or circuit-broken decisions served from a
fallback) are recorded here so the adaptation loop can see when the
system is running in a degraded mode.

Record ids are assigned *by the log* from a per-log counter, so two
logs built in one process produce reproducible, independent id
sequences (cross-run determinism; no module-level global counter).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.core.contexts import Context
from repro.policy.model import Decision, Request

__all__ = ["DecisionRecord", "MonitoringLog"]


class DecisionRecord:
    """One decision/enforcement event and (later) its observed outcome.

    ``degraded`` marks decisions that were *not* produced by the normal
    solver-backed path: the PDP fell back to its default decision or the
    last-known-good policy set (``note`` says why).
    """

    __slots__ = (
        "record_id",
        "request",
        "decision",
        "policy_text",
        "context",
        "enforced",
        "outcome_ok",
        "degraded",
        "note",
    )

    def __init__(
        self,
        request: Request,
        decision: Decision,
        policy_text: str,
        context: Context,
        enforced: bool = False,
        degraded: bool = False,
        note: str = "",
    ):
        self.record_id: Optional[int] = None  # assigned by MonitoringLog.append
        self.request = request
        self.decision = decision
        self.policy_text = policy_text
        self.context = context
        self.enforced = enforced
        self.outcome_ok: Optional[bool] = None
        self.degraded = degraded
        self.note = note

    def __repr__(self) -> str:
        outcome = (
            "?" if self.outcome_ok is None else ("ok" if self.outcome_ok else "BAD")
        )
        ident = "?" if self.record_id is None else str(self.record_id)
        flag = " DEGRADED" if self.degraded else ""
        return (
            f"DecisionRecord(#{ident} {self.decision.value} "
            f"via {self.policy_text!r} [{outcome}]{flag})"
        )


class MonitoringLog:
    """Append-only history of decision records with outcome feedback."""

    def __init__(self) -> None:
        self._records: List[DecisionRecord] = []
        self._ids = itertools.count(1)

    def append(self, record: DecisionRecord) -> DecisionRecord:
        if record.record_id is None:
            record.record_id = next(self._ids)
        self._records.append(record)
        return record

    def records(self) -> List[DecisionRecord]:
        return list(self._records)

    def mark_outcome(self, record_id: int, ok: bool) -> None:
        for record in self._records:
            if record.record_id == record_id:
                record.outcome_ok = ok
                return
        raise KeyError(f"no record with id {record_id}")

    def violations(self) -> List[DecisionRecord]:
        """Records whose outcome was flagged bad — adaptation triggers."""
        return [r for r in self._records if r.outcome_ok is False]

    def confirmations(self) -> List[DecisionRecord]:
        return [r for r in self._records if r.outcome_ok is True]

    def unreviewed(self) -> List[DecisionRecord]:
        return [r for r in self._records if r.outcome_ok is None]

    def degradations(self) -> List[DecisionRecord]:
        """Decisions served from a fallback path (budget/breaker events)."""
        return [r for r in self._records if r.degraded]

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
