"""Monitoring of PDP/PEP operations (Figure 2's "Monitoring" arrows).

The AGENP loop requires "a history of the decisions that have been made,
the actions that have been taken, and the effects that they have had on
the state of the system".  :class:`MonitoringLog` is that history; the
PAdaP turns flagged records into new training examples, and degradation
events (budget-exhausted or circuit-broken decisions served from a
fallback) are recorded here so the adaptation loop can see when the
system is running in a degraded mode.

Record ids are assigned *by the log* from a per-log counter, so two
logs built in one process produce reproducible, independent id
sequences (cross-run determinism; no module-level global counter).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

from repro.core.contexts import Context
from repro.policy.model import Decision, Request

__all__ = ["DecisionRecord", "LogStats", "MonitoringLog"]


class DecisionRecord:
    """One decision/enforcement event and (later) its observed outcome.

    ``degraded`` marks decisions that were *not* produced by the normal
    solver-backed path: the PDP fell back to its default decision or the
    last-known-good policy set (``note`` says why).  ``trace_id`` links
    the record to the telemetry trace of the solve that produced it
    (when the PDP ran under an ambient tracer; None otherwise) —
    Figure 2's monitoring arrows joined to low-level engine behaviour.
    """

    __slots__ = (
        "record_id",
        "request",
        "decision",
        "policy_text",
        "context",
        "enforced",
        "outcome_ok",
        "degraded",
        "note",
        "trace_id",
    )

    def __init__(
        self,
        request: Request,
        decision: Decision,
        policy_text: str,
        context: Context,
        enforced: bool = False,
        degraded: bool = False,
        note: str = "",
        trace_id: Optional[int] = None,
    ):
        self.record_id: Optional[int] = None  # assigned by MonitoringLog.append
        self.request = request
        self.decision = decision
        self.policy_text = policy_text
        self.context = context
        self.enforced = enforced
        self.outcome_ok: Optional[bool] = None
        self.degraded = degraded
        self.note = note
        self.trace_id = trace_id

    def __repr__(self) -> str:
        outcome = (
            "?" if self.outcome_ok is None else ("ok" if self.outcome_ok else "BAD")
        )
        ident = "?" if self.record_id is None else str(self.record_id)
        flag = " DEGRADED" if self.degraded else ""
        return (
            f"DecisionRecord(#{ident} {self.decision.value} "
            f"via {self.policy_text!r} [{outcome}]{flag})"
        )


class LogStats(NamedTuple):
    """Aggregate view of a :class:`MonitoringLog` (Figure 2 dashboard).

    ``by_decision`` counts records per decision effect;
    ``degraded_rate`` is the fraction of decisions served from a
    fallback path and ``enforcement_rate`` the fraction that reached
    the PEP — the two numbers the adaptation loop watches.
    """

    total: int
    by_decision: Dict[str, int]
    degraded: int
    degraded_rate: float
    enforced: int
    enforcement_rate: float
    violations: int
    confirmations: int
    unreviewed: int

    def lines(self) -> List[str]:
        """Human-readable report lines (benchmark/CLI output)."""
        effects = " ".join(f"{k}={v}" for k, v in sorted(self.by_decision.items()))
        return [
            f"decisions: {self.total} ({effects or 'none'})",
            f"degraded: {self.degraded} ({self.degraded_rate:.1%})  "
            f"enforced: {self.enforced} ({self.enforcement_rate:.1%})",
            f"outcomes: {self.confirmations} ok, {self.violations} flagged, "
            f"{self.unreviewed} unreviewed",
        ]


class MonitoringLog:
    """Append-only history of decision records with outcome feedback."""

    def __init__(self) -> None:
        self._records: List[DecisionRecord] = []
        self._ids = itertools.count(1)

    def append(self, record: DecisionRecord) -> DecisionRecord:
        if record.record_id is None:
            record.record_id = next(self._ids)
        self._records.append(record)
        return record

    def records(self) -> List[DecisionRecord]:
        return list(self._records)

    def mark_outcome(self, record_id: int, ok: bool) -> None:
        for record in self._records:
            if record.record_id == record_id:
                record.outcome_ok = ok
                return
        raise KeyError(f"no record with id {record_id}")

    def violations(self) -> List[DecisionRecord]:
        """Records whose outcome was flagged bad — adaptation triggers."""
        return [r for r in self._records if r.outcome_ok is False]

    def confirmations(self) -> List[DecisionRecord]:
        return [r for r in self._records if r.outcome_ok is True]

    def unreviewed(self) -> List[DecisionRecord]:
        return [r for r in self._records if r.outcome_ok is None]

    def degradations(self) -> List[DecisionRecord]:
        """Decisions served from a fallback path (budget/breaker events)."""
        return [r for r in self._records if r.degraded]

    def stats(self) -> LogStats:
        """Fold the history into a :class:`LogStats` aggregate."""
        total = len(self._records)
        by_decision: Dict[str, int] = {}
        degraded = enforced = violations = confirmations = unreviewed = 0
        for record in self._records:
            effect = record.decision.value
            by_decision[effect] = by_decision.get(effect, 0) + 1
            if record.degraded:
                degraded += 1
            if record.enforced:
                enforced += 1
            if record.outcome_ok is None:
                unreviewed += 1
            elif record.outcome_ok:
                confirmations += 1
            else:
                violations += 1
        return LogStats(
            total=total,
            by_decision=by_decision,
            degraded=degraded,
            degraded_rate=degraded / total if total else 0.0,
            enforced=enforced,
            enforcement_rate=enforced / total if total else 0.0,
            violations=violations,
            confirmations=confirmations,
            unreviewed=unreviewed,
        )

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
