"""Monitoring of PDP/PEP operations (Figure 2's "Monitoring" arrows).

The AGENP loop requires "a history of the decisions that have been made,
the actions that have been taken, and the effects that they have had on
the state of the system".  :class:`MonitoringLog` is that history; the
PAdaP turns flagged records into new training examples.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional, Sequence

from repro.core.contexts import Context
from repro.policy.model import Decision, Request

__all__ = ["DecisionRecord", "MonitoringLog"]

_counter = itertools.count(1)


class DecisionRecord:
    """One decision/enforcement event and (later) its observed outcome."""

    __slots__ = (
        "record_id",
        "request",
        "decision",
        "policy_text",
        "context",
        "enforced",
        "outcome_ok",
    )

    def __init__(
        self,
        request: Request,
        decision: Decision,
        policy_text: str,
        context: Context,
        enforced: bool = False,
    ):
        self.record_id = next(_counter)
        self.request = request
        self.decision = decision
        self.policy_text = policy_text
        self.context = context
        self.enforced = enforced
        self.outcome_ok: Optional[bool] = None

    def __repr__(self) -> str:
        outcome = (
            "?" if self.outcome_ok is None else ("ok" if self.outcome_ok else "BAD")
        )
        return (
            f"DecisionRecord(#{self.record_id} {self.decision.value} "
            f"via {self.policy_text!r} [{outcome}])"
        )


class MonitoringLog:
    """Append-only history of decision records with outcome feedback."""

    def __init__(self) -> None:
        self._records: List[DecisionRecord] = []

    def append(self, record: DecisionRecord) -> DecisionRecord:
        self._records.append(record)
        return record

    def records(self) -> List[DecisionRecord]:
        return list(self._records)

    def mark_outcome(self, record_id: int, ok: bool) -> None:
        for record in self._records:
            if record.record_id == record_id:
                record.outcome_ok = ok
                return
        raise KeyError(f"no record with id {record_id}")

    def violations(self) -> List[DecisionRecord]:
        """Records whose outcome was flagged bad — adaptation triggers."""
        return [r for r in self._records if r.outcome_ok is False]

    def confirmations(self) -> List[DecisionRecord]:
        return [r for r in self._records if r.outcome_ok is True]

    def unreviewed(self) -> List[DecisionRecord]:
        return [r for r in self._records if r.outcome_ok is None]

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
