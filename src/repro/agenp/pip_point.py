"""The Policy Information Point (PIP).

"The PIP component aims to acquire information about any external
conditions that affect the operation of the AMS."  Providers are
callables returning :class:`~repro.core.contexts.Context` fragments;
:meth:`acquire` merges them into the local context.  Provider failures
are isolated (an unreachable external source must not take the AMS
down — coalition environments have fragmented communications).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.contexts import Context

__all__ = ["PolicyInformationPoint"]

ContextProvider = Callable[[], Context]


class PolicyInformationPoint:
    """Registry of external-context providers."""

    def __init__(self) -> None:
        self._providers: Dict[str, ContextProvider] = {}
        self.failures: List[Tuple[str, Exception]] = []

    def register(self, name: str, provider: ContextProvider) -> None:
        self._providers[name] = provider

    def unregister(self, name: str) -> None:
        self._providers.pop(name, None)

    def acquire(self, base: Optional[Context] = None) -> Context:
        """Merge all provider contexts into ``base`` (failures skipped)."""
        merged = base if base is not None else Context.empty()
        for name in sorted(self._providers):
            try:
                fragment = self._providers[name]()
            except Exception as error:  # provider isolation by design
                self.failures.append((name, error))
                continue
            merged = merged.merged(fragment)
        return merged

    def provider_names(self) -> List[str]:
        return sorted(self._providers)
