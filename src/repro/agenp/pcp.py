"""The Policy Checking Point (PCP): quality checker + violation detector.

Per Figure 2, the PCP "evaluates the quality [of generated policies] and
identifies policies that incur violations (e.g., as determined by
negative policy examples)", for both internally generated policies and
policies shared by other AMSs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.asg_lint import lint_asg
from repro.analysis.diagnostics import Diagnostic
from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.core.workflow import LabeledExample
from repro.agenp.interpreters import PolicyInterpreter
from repro.agenp.repositories import StoredPolicy
from repro.errors import ReproError
from repro.grammar.cfg import SymbolString
from repro.policy.model import DomainSchema
from repro.policy.quality import QualityReport, assess
from repro.policy.xacml import Policy

__all__ = ["CheckOutcome", "PolicyCheckingPoint"]


class CheckOutcome:
    """The PCP's verdict on one candidate policy."""

    __slots__ = ("policy", "accepted", "reasons")

    def __init__(self, policy: StoredPolicy, accepted: bool, reasons: List[str]):
        self.policy = policy
        self.accepted = accepted
        self.reasons = reasons

    def __repr__(self) -> str:
        verdict = "accepted" if self.accepted else "REJECTED"
        detail = f": {'; '.join(self.reasons)}" if self.reasons else ""
        return f"CheckOutcome({self.policy.text!r} {verdict}{detail})"


class PolicyCheckingPoint:
    """Validates candidate policies before they reach the repository."""

    def __init__(
        self,
        interpreter: Optional[PolicyInterpreter] = None,
        schema: Optional[DomainSchema] = None,
    ):
        self.interpreter = interpreter
        self.schema = schema
        self._known_violations: List[LabeledExample] = []
        # id(grammar) -> (grammar, diagnostics); the strong reference keeps
        # the id stable for the lifetime of the cache entry
        self._preflight_cache: Dict[int, Tuple[object, List[Diagnostic]]] = {}

    def record_violation(self, example: LabeledExample) -> None:
        """Register a known-bad policy/context pair (negative example)."""
        self._known_violations.append(example)

    # -- static preflight ------------------------------------------------------

    def preflight(self, model: GenerativePolicyModel) -> List[Diagnostic]:
        """Static diagnostics for the model's effective grammar ``G : H``.

        The quality-checker half of the PCP (Figure 2) that needs no
        examples: the grammar and its annotation programs are linted
        (:func:`repro.analysis.lint_asg`) and the findings cached per
        effective grammar, so repeated ``check_policy`` calls against
        one model version lint once.
        """
        grammar = model.grammar
        cached = self._preflight_cache.get(id(grammar))
        if cached is not None and cached[0] is grammar:
            return cached[1]
        diagnostics = lint_asg(grammar, source=f"gpm v{model.version}")
        self._preflight_cache[id(grammar)] = (grammar, diagnostics)
        return diagnostics

    # -- violation detector ---------------------------------------------------

    def check_policy(
        self,
        policy: StoredPolicy,
        model: GenerativePolicyModel,
        context: Context,
    ) -> CheckOutcome:
        """Violation detection for a single candidate policy.

        A candidate is rejected if it (a) comes from a model whose
        effective grammar has *error*-severity static diagnostics
        (:meth:`preflight`; warnings and infos do not reject), (b) is
        not in the model's language for the context (non-conformance —
        relevant for *shared* policies learned elsewhere), or (c)
        matches a recorded negative example in an equal-or-weaker
        context.
        """
        reasons: List[str] = []
        for diagnostic in self.preflight(model):
            if diagnostic.is_error:
                reasons.append(f"static analysis: {diagnostic.format()}")
        if not model.valid(policy.tokens, context):
            reasons.append("not in L(G(C)) for the local context")
        for violation in self._known_violations:
            if violation.valid:
                continue
            if violation.tokens == policy.tokens and violation.context == context:
                reasons.append("matches a recorded negative example")
                break
        if self.interpreter is not None:
            try:
                self.interpreter(policy.tokens)
            except ReproError as error:
                reasons.append(f"uninterpretable: {error}")
        return CheckOutcome(policy, not reasons, reasons)

    def filter_policies(
        self,
        policies: Iterable[StoredPolicy],
        model: GenerativePolicyModel,
        context: Context,
    ) -> Tuple[List[StoredPolicy], List[CheckOutcome]]:
        """Partition candidates into accepted policies and rejections."""
        accepted: List[StoredPolicy] = []
        rejected: List[CheckOutcome] = []
        for policy in policies:
            outcome = self.check_policy(policy, model, context)
            if outcome.accepted:
                accepted.append(policy)
            else:
                rejected.append(outcome)
        return accepted, rejected

    # -- quality checker --------------------------------------------------------

    def quality_report(
        self,
        policies: Sequence[StoredPolicy],
        check_completeness: bool = False,
    ) -> QualityReport:
        """Run the Section V.A quality metrics over the structured forms
        of the stored policies (requires an interpreter and schema)."""
        if self.interpreter is None or self.schema is None:
            raise ReproError(
                "quality_report requires the PCP to have an interpreter and schema"
            )
        structured: List[Policy] = []
        seen = set()
        for stored in policies:
            policy = self.interpreter(stored.tokens)
            if policy.policy_id not in seen:
                seen.add(policy.policy_id)
                structured.append(policy)
        return assess(
            structured,
            self.schema,
            check_completeness=check_completeness,
        )
