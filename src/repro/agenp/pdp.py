"""The Policy Decision Point (PDP).

"When the managed parties require a decision ... the PDP obtains all the
policies pertinent to that decision and uses them to determine the
actions that must be performed by the PEP."  Decisions are monitored
(each produces a :class:`~repro.agenp.monitoring.DecisionRecord`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.agenp.interpreters import PolicyInterpreter
from repro.agenp.monitoring import DecisionRecord, MonitoringLog
from repro.agenp.repositories import PolicyRepository, StoredPolicy
from repro.policy.conflicts import ResolutionStrategy, deny_overrides
from repro.policy.evaluation import applicable_rules
from repro.policy.model import Decision, Request
from repro.policy.xacml import Policy

__all__ = ["PolicyDecisionPoint"]


class PolicyDecisionPoint:
    """Evaluates requests against the current policy repository."""

    def __init__(
        self,
        repository: PolicyRepository,
        interpreter: PolicyInterpreter,
        log: Optional[MonitoringLog] = None,
        strategy: ResolutionStrategy = deny_overrides,
        default_decision: Decision = Decision.DENY,
    ):
        self.repository = repository
        self.interpreter = interpreter
        self.log = log if log is not None else MonitoringLog()
        self.strategy = strategy
        self.default_decision = default_decision
        self._compiled: List[Tuple[StoredPolicy, Policy]] = []
        self._compiled_for: Optional[Tuple[StoredPolicy, ...]] = None

    def _compile(self) -> List[Tuple[StoredPolicy, Policy]]:
        current = tuple(self.repository.all())
        if self._compiled_for != current:
            self._compiled = [(p, self.interpreter(p.tokens)) for p in current]
            self._compiled_for = current
        return self._compiled

    def decide(self, request: Request, context: Optional[Context] = None) -> DecisionRecord:
        """Evaluate the request; log and return the decision record.

        If no policy applies, the configurable ``default_decision`` is
        used (deny-by-default for safety) and the record notes the gap —
        the Section V.A "completeness" situation that may trigger
        adaptation.
        """
        hits = []
        for stored, policy in self._compile():
            for rule, decision in applicable_rules(policy, request):
                hits.append((stored, policy, rule, decision))
        if hits:
            decision = self.strategy([(p, r, d) for __, p, r, d in hits])
            winning = [
                stored.text
                for stored, __, __r, d in hits
                if d == decision
            ]
            policy_text = winning[0] if winning else hits[0][0].text
        else:
            decision = self.default_decision
            policy_text = ""
        record = DecisionRecord(
            request,
            decision,
            policy_text,
            context if context is not None else Context.empty(),
        )
        return self.log.append(record)

    def coverage_gap(self, record: DecisionRecord) -> bool:
        """True if the record came from the default (no policy applied)."""
        return record.policy_text == ""
