"""The Policy Decision Point (PDP).

"When the managed parties require a decision ... the PDP obtains all the
policies pertinent to that decision and uses them to determine the
actions that must be performed by the PEP."  Decisions are monitored
(each produces a :class:`~repro.agenp.monitoring.DecisionRecord`).

Graceful degradation: policy interpretation may be solver-backed (an
interpreter may run ASG membership or ASP solving), so one hard policy
instance could stall every decision.  The PDP therefore runs the
interpretation path under an optional per-decision
:class:`~repro.runtime.budget.Budget` and a
:class:`~repro.runtime.breaker.CircuitBreaker`:

* a resource error (budget exhausted, deadline passed) trips a breaker
  failure and the decision is served from the *last-known-good* compiled
  policy set, or from ``default_decision`` when none exists yet;
* after ``failure_threshold`` consecutive failures the breaker opens and
  the expensive path is skipped entirely until the recovery window
  passes;
* every fallback decision is logged with ``degraded=True`` so the PAdaP
  can see that the system is running degraded.

Non-resource errors still propagate (they are bugs or bad policies, not
load), but they too count toward opening the breaker.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.agenp.interpreters import PolicyInterpreter
from repro.agenp.monitoring import DecisionRecord, MonitoringLog
from repro.agenp.repositories import PolicyRepository, StoredPolicy
from repro.errors import ReproError, ResourceError
from repro.policy.conflicts import ResolutionStrategy, deny_overrides
from repro.policy.evaluation import applicable_rules
from repro.policy.model import Decision, Request
from repro.policy.xacml import Policy
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.budget import Budget, budget_scope
from repro.telemetry import span as _tele_span

__all__ = ["PolicyDecisionPoint", "evaluate_compiled"]


def evaluate_compiled(
    compiled: Sequence[Tuple[StoredPolicy, Policy]],
    request: Request,
    strategy: ResolutionStrategy = deny_overrides,
    default_decision: Decision = Decision.DENY,
) -> Tuple[Decision, str]:
    """Resolve one request against an already-compiled policy set.

    Returns ``(decision, winning policy text)`` — the pure, stateless
    core of :meth:`PolicyDecisionPoint.decide`, shared with the serving
    engine's batch path (:meth:`repro.engine.PolicyEngine.decide_many`),
    including its process-pool workers (everything here pickles).
    """
    hits = []
    for stored, policy in compiled:
        for rule, decision in applicable_rules(policy, request):
            hits.append((stored, policy, rule, decision))
    if not hits:
        return default_decision, ""
    decision = strategy([(p, r, d) for __, p, r, d in hits])
    winning = [stored.text for stored, __, __r, d in hits if d == decision]
    policy_text = winning[0] if winning else hits[0][0].text
    return decision, policy_text


class PolicyDecisionPoint:
    """Evaluates requests against the current policy repository."""

    def __init__(
        self,
        repository: PolicyRepository,
        interpreter: PolicyInterpreter,
        log: Optional[MonitoringLog] = None,
        strategy: ResolutionStrategy = deny_overrides,
        default_decision: Decision = Decision.DENY,
        budget_factory: Optional[Callable[[], Budget]] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.repository = repository
        self.interpreter = interpreter
        self.log = log if log is not None else MonitoringLog()
        self.strategy = strategy
        self.default_decision = default_decision
        self.budget_factory = budget_factory
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._compiled: List[Tuple[StoredPolicy, Policy]] = []
        self._compiled_for: Optional[Tuple[StoredPolicy, ...]] = None
        self._compiled_generation: Optional[int] = None
        # last compiled set that served a decision successfully
        self._last_good: Optional[List[Tuple[StoredPolicy, Policy]]] = None

    def _compile(self) -> List[Tuple[StoredPolicy, Policy]]:
        """The compiled policy set, recompiled only when the repository moved.

        Staleness is checked against the repository's ``generation``
        counter when it has one (O(1), the serving hot path); repositories
        without a counter fall back to content comparison.
        """
        generation = getattr(self.repository, "generation", None)
        if generation is not None:
            if generation != self._compiled_generation:
                current = tuple(self.repository.all())
                self._compiled = [(p, self.interpreter(p.tokens)) for p in current]
                self._compiled_for = current
                self._compiled_generation = generation
            return self._compiled
        current = tuple(self.repository.all())
        if self._compiled_for != current:
            self._compiled = [(p, self.interpreter(p.tokens)) for p in current]
            self._compiled_for = current
        return self._compiled

    def compiled(self) -> List[Tuple[StoredPolicy, Policy]]:
        """The up-to-date compiled policy set (public, for the engine)."""
        return list(self._compile())

    def _scope(self):
        if self.budget_factory is not None:
            return budget_scope(self.budget_factory())
        return contextlib.nullcontext()

    @staticmethod
    def _hits(
        compiled: Sequence[Tuple[StoredPolicy, Policy]], request: Request
    ) -> List[Tuple[StoredPolicy, Policy, object, Decision]]:
        hits = []
        for stored, policy in compiled:
            for rule, decision in applicable_rules(policy, request):
                hits.append((stored, policy, rule, decision))
        return hits

    def _resolve(self, hits) -> Tuple[Decision, str]:
        if hits:
            decision = self.strategy([(p, r, d) for __, p, r, d in hits])
            winning = [
                stored.text
                for stored, __, __r, d in hits
                if d == decision
            ]
            policy_text = winning[0] if winning else hits[0][0].text
            return decision, policy_text
        return self.default_decision, ""

    def decide(self, request: Request, context: Optional[Context] = None) -> DecisionRecord:
        """Evaluate the request; log and return the decision record.

        If no policy applies, the configurable ``default_decision`` is
        used (deny-by-default for safety) and the record notes the gap —
        the Section V.A "completeness" situation that may trigger
        adaptation.  If the interpretation path runs out of budget (or
        the circuit is open), the decision is served degraded — see the
        module docstring.
        """
        context = context if context is not None else Context.empty()
        with _tele_span("pdp.decide") as sp:
            sp.incr("pdp.decisions")
            if not self.breaker.allow():
                sp.incr("pdp.breaker_rejections")
                return self._degrade(request, context, "circuit open", sp)
            try:
                with self._scope():
                    hits = self._hits(self._compile(), request)
            except ResourceError as error:
                self.breaker.record_failure()
                sp.incr("pdp.resource_errors")
                return self._degrade(
                    request, context, f"resource exhausted: {error}", sp
                )
            except ReproError:
                # a bug or uninterpretable policy: propagate, but count it —
                # repeated failures open the breaker and decisions degrade
                self.breaker.record_failure()
                raise
            self.breaker.record_success()
            self._last_good = list(self._compiled)
            decision, policy_text = self._resolve(hits)
            sp.set(decision=decision.value, degraded=False)
            record = DecisionRecord(
                request, decision, policy_text, context, trace_id=sp.trace_id
            )
            return self.log.append(record)

    def _degrade(
        self,
        request: Request,
        context: Context,
        reason: str,
        sp=None,
    ) -> DecisionRecord:
        """Serve a fallback decision and record the degradation event."""
        decision = self.default_decision
        policy_text = ""
        note = f"degraded ({reason}): default decision"
        if self._last_good is not None:
            try:
                decision, policy_text = self._resolve(
                    self._hits(self._last_good, request)
                )
                note = f"degraded ({reason}): last-known-good policies"
            except ReproError:
                decision, policy_text = self.default_decision, ""
        trace_id = sp.trace_id if sp is not None else None
        if sp is not None:
            sp.incr("pdp.degraded_decisions")
            sp.set(decision=decision.value, degraded=True)
        record = DecisionRecord(
            request,
            decision,
            policy_text,
            context,
            degraded=True,
            note=note,
            trace_id=trace_id,
        )
        return self.log.append(record)

    def coverage_gap(self, record: DecisionRecord) -> bool:
        """True if the record came from the default (no policy applied)."""
        return record.policy_text == ""
