"""The Policy Adaptation Point (PAdaP): ASG solver + ASG learner.

"The PAdaP analyzes context information, the previous learned policy
model, and previously selected policies, to generate, validate, and
update the ASG."  Concretely: monitoring feedback becomes labelled
examples; the learner re-solves the Definition 3 task over the
accumulated examples; the new model version is stored in the
Representations Repository.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.core.workflow import LabeledExample, learn_gpm
from repro.agenp.monitoring import DecisionRecord, MonitoringLog
from repro.agenp.pcp import PolicyCheckingPoint
from repro.agenp.repositories import RepresentationsRepository
from repro.errors import UnsatisfiableTaskError
from repro.learning.ilasp import LearnedHypothesis
from repro.learning.mode_bias import CandidateRule

__all__ = ["PolicyAdaptationPoint"]


class PolicyAdaptationPoint:
    """Adapts the GPM from monitoring feedback."""

    def __init__(
        self,
        hypothesis_space: Sequence[CandidateRule],
        representations: RepresentationsRepository,
        pcp: Optional[PolicyCheckingPoint] = None,
        max_violations: int = 0,
        budget_factory=None,
    ):
        self.hypothesis_space = list(hypothesis_space)
        self.representations = representations
        self.pcp = pcp
        self.max_violations = max_violations
        self.budget_factory = budget_factory
        self.examples: List[LabeledExample] = []

    # -- example management -----------------------------------------------

    def add_example(self, example: LabeledExample) -> None:
        self.examples.append(example)
        if self.pcp is not None and not example.valid:
            self.pcp.record_violation(example)

    def ingest_feedback(self, log: MonitoringLog) -> int:
        """Convert reviewed monitoring records into labelled examples.

        A confirmed-bad outcome whose decision was driven by policy ``p``
        in context ``C`` becomes the negative example ``<p, C>``; a
        confirmed-good one becomes positive.  Returns how many new
        examples were ingested.
        """
        known = {
            (e.tokens, e.context, e.valid) for e in self.examples
        }
        added = 0
        for record in log.records():
            if record.outcome_ok is None or not record.policy_text:
                continue
            tokens = tuple(record.policy_text.split())
            example = LabeledExample(
                tokens, record.context, valid=record.outcome_ok
            )
            key = (example.tokens, example.context, example.valid)
            if key not in known:
                known.add(key)
                self.add_example(example)
                added += 1
        return added

    # -- adaptation -----------------------------------------------------------

    def needs_adaptation(self, log: MonitoringLog) -> bool:
        """Adaptation triggers when the system "is not meeting the goals":
        any decision outcome was flagged bad, or decisions were served
        degraded (the PDP fell back because of resource exhaustion)."""
        return bool(log.violations()) or bool(log.degradations())

    def adapt(self) -> Tuple[GenerativePolicyModel, Optional[LearnedHypothesis]]:
        """Relearn the GPM over all accumulated examples and store it.

        On an unsatisfiable task the learner retries with growing
        violation budgets (noisy feedback is a fact of coalition life —
        paper Section IV.C); the last resort keeps the current model.
        With a ``budget_factory``, each learning attempt runs under a
        fresh resource budget; a budget-exhausted attempt yields the
        learner's degraded best-so-far hypothesis rather than stalling.
        """
        model = self.representations.latest()
        allowed = self.max_violations
        while True:
            try:
                learn_budget = (
                    self.budget_factory() if self.budget_factory is not None else None
                )
                new_model, result = learn_gpm(
                    model,
                    self.hypothesis_space,
                    self.examples,
                    max_violations=allowed,
                    budget=learn_budget,
                )
                self.representations.store(new_model)
                return new_model, result
            except UnsatisfiableTaskError:
                allowed += 1
                if allowed > self.max_violations + len(self.examples):
                    return model, None
