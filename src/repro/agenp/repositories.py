"""The three AGENP repositories (Figure 2).

* :class:`PolicyRepository` — the generated policies the PDP consults.
* :class:`RepresentationsRepository` — versioned learned GPMs, "so that
  the PAdaP can access the latest representation of the ASG-based
  generative policy model".
* :class:`ContextRepository` — named contexts, with a *current* one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.errors import AgenpError
from repro.grammar.cfg import SymbolString

__all__ = ["StoredPolicy", "PolicyRepository", "RepresentationsRepository", "ContextRepository"]


class StoredPolicy:
    """A generated policy string plus provenance metadata."""

    __slots__ = ("tokens", "context_name", "model_version", "source")

    def __init__(
        self,
        tokens: SymbolString,
        context_name: str = "",
        model_version: int = 0,
        source: str = "local",
    ):
        self.tokens = tuple(tokens)
        self.context_name = context_name
        self.model_version = model_version
        self.source = source

    @property
    def text(self) -> str:
        return " ".join(self.tokens)

    def __repr__(self) -> str:
        return f"StoredPolicy({self.text!r}, ctx={self.context_name!r}, v{self.model_version})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StoredPolicy) and (
            self.tokens,
            self.context_name,
            self.source,
        ) == (other.tokens, other.context_name, other.source)

    def __hash__(self) -> int:
        return hash((self.tokens, self.context_name, self.source))


class PolicyRepository:
    """The active policy set, replaceable wholesale on regeneration.

    Every mutation bumps ``generation``, a monotonic counter the PDP and
    the serving engine (:mod:`repro.engine`) use for O(1) staleness
    checks and cache invalidation: a PAdaP policy update lands here via
    ``replace``/``add``/``remove``, so dependent compiled-policy and
    decision caches are evicted without content comparison.
    """

    def __init__(self) -> None:
        self._policies: List[StoredPolicy] = []
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped by every write)."""
        return self._generation

    def replace(self, policies: Iterable[StoredPolicy]) -> None:
        """Install a freshly generated policy set (dropping the old one)."""
        self._policies = list(policies)
        self._generation += 1

    def add(self, policy: StoredPolicy) -> None:
        if policy not in self._policies:
            self._policies.append(policy)
            self._generation += 1

    def remove(self, policy: StoredPolicy) -> None:
        before = len(self._policies)
        self._policies = [p for p in self._policies if p != policy]
        if len(self._policies) != before:
            self._generation += 1

    def all(self) -> List[StoredPolicy]:
        return list(self._policies)

    def by_source(self, source: str) -> List[StoredPolicy]:
        return [p for p in self._policies if p.source == source]

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self):
        return iter(self._policies)


class RepresentationsRepository:
    """Versioned storage of learned GPMs.

    ``generation`` counts stores — the PAdaP bumps it on every adapted
    model, so serving caches keyed on it are evicted when the GPM moves.
    """

    def __init__(self) -> None:
        self._versions: List[GenerativePolicyModel] = []
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped by every store)."""
        return self._generation

    def store(self, model: GenerativePolicyModel) -> None:
        self._versions.append(model)
        self._generation += 1

    def latest(self) -> GenerativePolicyModel:
        if not self._versions:
            raise AgenpError("representations repository is empty")
        return self._versions[-1]

    def version(self, index: int) -> GenerativePolicyModel:
        return self._versions[index]

    def history(self) -> List[GenerativePolicyModel]:
        return list(self._versions)

    def __len__(self) -> int:
        return len(self._versions)


class ContextRepository:
    """Named contexts plus the AMS's current operating context.

    ``generation`` is bumped by every ``store`` and every *effective*
    ``set_current`` — any context change may alter which policies are
    valid, so serving caches keyed on it (see :mod:`repro.engine`) are
    evicted.
    """

    def __init__(self) -> None:
        self._contexts: Dict[str, Context] = {}
        self._current: Optional[str] = None
        self._generation = 0

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (bumped by every write)."""
        return self._generation

    def store(self, context: Context) -> None:
        if not context.name:
            raise AgenpError("contexts stored in the repository must be named")
        self._contexts[context.name] = context
        self._generation += 1

    def get(self, name: str) -> Context:
        try:
            return self._contexts[name]
        except KeyError:
            raise AgenpError(f"no context named {name!r}") from None

    def set_current(self, name: str) -> None:
        if name not in self._contexts:
            raise AgenpError(f"no context named {name!r}")
        if self._current != name:
            self._current = name
            self._generation += 1

    def current(self) -> Context:
        if self._current is None:
            return Context.empty("default")
        return self._contexts[self._current]

    def names(self) -> List[str]:
        return sorted(self._contexts)

    def __len__(self) -> int:
        return len(self._contexts)
