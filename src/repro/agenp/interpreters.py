"""Interpreters: from policy *strings* to executable policies.

The generative framework produces policies as grammar strings; the PDP
needs structured :class:`~repro.policy.xacml.Policy` objects to evaluate
requests.  An interpreter bridges the two.  :class:`FieldInterpreter`
covers the common ``<effect> <attr1> <attr2> ...`` token layout; apps
with richer grammars supply their own callable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import AgenpError
from repro.grammar.cfg import SymbolString
from repro.policy.model import Effect
from repro.policy.xacml import Match, Policy, Target, XacmlRule

__all__ = ["PolicyInterpreter", "FieldInterpreter"]

PolicyInterpreter = Callable[[SymbolString], Policy]


class FieldInterpreter:
    """Interpret fixed-layout policy strings.

    ``fields`` maps token positions to ``(category, attribute)`` pairs;
    the token at ``effect_index`` selects Permit (== ``permit_token``)
    or Deny.  Wildcard tokens (default ``"any"``) produce no match.

    Example: with ``fields={1: ("subject", "id"), 2: ("action", "id")}``
    the string ``allow alice read`` becomes a single-rule policy
    permitting requests with ``subject.id == alice`` and
    ``action.id == read``.
    """

    def __init__(
        self,
        fields: Dict[int, Tuple[str, str]],
        effect_index: int = 0,
        permit_token: str = "allow",
        wildcard: str = "any",
    ):
        self.fields = dict(fields)
        self.effect_index = effect_index
        self.permit_token = permit_token
        self.wildcard = wildcard

    def __call__(self, tokens: SymbolString) -> Policy:
        tokens = tuple(tokens)
        needed = max([self.effect_index, *self.fields]) + 1
        if len(tokens) < needed:
            raise AgenpError(
                f"policy string {' '.join(tokens)!r} too short for interpreter "
                f"(needs {needed} tokens)"
            )
        effect = (
            Effect.PERMIT
            if tokens[self.effect_index] == self.permit_token
            else Effect.DENY
        )
        matches: List[Match] = []
        for index, (category, attribute) in sorted(self.fields.items()):
            value = tokens[index]
            if value == self.wildcard:
                continue
            matches.append(Match(category, attribute, "eq", value))
        policy_id = "_".join(tokens)
        rule = XacmlRule("r0", effect, Target(matches))
        return Policy(policy_id, [rule], combining="first-applicable")
