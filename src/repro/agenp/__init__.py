"""The AGENP framework (paper Section III, Figure 2).

Components: PBMS (specification source), PReP (refinement/generation),
PAdaP (adaptation/learning), PCP (quality + violation checking), PDP
(decisions), PEP (enforcement), PIP (external context), the three
repositories, monitoring, and CASWiki community sharing.  The
:class:`~repro.agenp.ams.AutonomousManagedSystem` wires one of each into
an autonomous coalition party.
"""

from repro.agenp.ams import AutonomousManagedSystem
from repro.agenp.caswiki import CASWiki, Contribution
from repro.agenp.coalition import Coalition, CoalitionNetwork, CoalitionParty, FaultPlan, Message
from repro.agenp.interpreters import FieldInterpreter, PolicyInterpreter
from repro.agenp.monitoring import DecisionRecord, LogStats, MonitoringLog
from repro.agenp.padap import PolicyAdaptationPoint
from repro.agenp.pbms import PolicyBasedManagementSystem, PolicySpecification
from repro.agenp.pcp import CheckOutcome, PolicyCheckingPoint
from repro.agenp.pdp import PolicyDecisionPoint
from repro.agenp.pep import EnforcementResult, ManagedResource, PolicyEnforcementPoint
from repro.agenp.pip_point import PolicyInformationPoint
from repro.agenp.prep import PolicyRefinementPoint
from repro.agenp.repositories import (
    ContextRepository,
    PolicyRepository,
    RepresentationsRepository,
    StoredPolicy,
)

__all__ = [
    "AutonomousManagedSystem",
    "PolicySpecification",
    "PolicyBasedManagementSystem",
    "PolicyRefinementPoint",
    "PolicyAdaptationPoint",
    "PolicyCheckingPoint",
    "CheckOutcome",
    "PolicyDecisionPoint",
    "PolicyEnforcementPoint",
    "EnforcementResult",
    "ManagedResource",
    "PolicyInformationPoint",
    "PolicyRepository",
    "RepresentationsRepository",
    "ContextRepository",
    "StoredPolicy",
    "MonitoringLog",
    "LogStats",
    "DecisionRecord",
    "CASWiki",
    "Contribution",
    "Coalition",
    "CoalitionNetwork",
    "CoalitionParty",
    "FaultPlan",
    "Message",
    "FieldInterpreter",
    "PolicyInterpreter",
]
