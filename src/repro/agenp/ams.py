"""The Autonomous Managed System (AMS): the full Figure 2 wiring.

An AMS owns one of each AGENP component and exposes the lifecycle the
paper describes:

1. ``bootstrap`` — receive the PBMS specification, build the initial GPM
   (PReP), generate policies for the current context.
2. ``decide``/``enforce`` — serve requests (PDP → PEP), monitored.
3. ``give_feedback`` — outcomes flow back into the monitoring log.
4. ``adapt`` — when goals are missed or context changes, the PAdaP
   relearns the GPM and the PReP regenerates the policy set.
5. ``share``/``import_shared`` — exchange policies via CASWiki, with the
   PCP validating imports against the local context.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.core.workflow import LabeledExample
from repro.agenp.caswiki import CASWiki, Contribution
from repro.agenp.interpreters import PolicyInterpreter
from repro.agenp.monitoring import DecisionRecord, MonitoringLog
from repro.agenp.padap import PolicyAdaptationPoint
from repro.agenp.pbms import PolicySpecification
from repro.agenp.pcp import PolicyCheckingPoint
from repro.agenp.pdp import PolicyDecisionPoint
from repro.agenp.pep import ManagedResource, PolicyEnforcementPoint
from repro.agenp.pip_point import PolicyInformationPoint
from repro.agenp.prep import PolicyRefinementPoint
from repro.agenp.repositories import (
    ContextRepository,
    PolicyRepository,
    RepresentationsRepository,
    StoredPolicy,
)
from repro.policy.goals import GoalMonitor
from repro.policy.model import Decision, DomainSchema, Request
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.budget import Budget

__all__ = ["AutonomousManagedSystem"]


class AutonomousManagedSystem:
    """One autonomous coalition party under policy-based management.

    Resource governance (optional): ``decision_budget`` is a factory
    producing one fresh :class:`~repro.runtime.budget.Budget` per PDP
    decision, and ``breaker`` the circuit breaker guarding the PDP's
    solver-backed interpretation path; ``learn_budget`` likewise bounds
    each PAdaP adaptation run (the learner returns a degraded
    best-so-far hypothesis when it runs out).  All default to
    ungoverned, preserving exact pre-governance behaviour.
    """

    def __init__(
        self,
        name: str,
        specification: PolicySpecification,
        interpreter: PolicyInterpreter,
        schema: Optional[DomainSchema] = None,
        max_policy_length: int = 12,
        max_learn_violations: int = 0,
        decision_budget=None,
        breaker: Optional[CircuitBreaker] = None,
        learn_budget=None,
    ):
        self.name = name
        self.specification = specification
        self.policy_repository = PolicyRepository()
        self.representations = RepresentationsRepository()
        self.contexts = ContextRepository()
        self.log = MonitoringLog()
        self.pip = PolicyInformationPoint()
        self.pcp = PolicyCheckingPoint(interpreter=interpreter, schema=schema)
        self.prep = PolicyRefinementPoint(
            specification,
            self.representations,
            self.policy_repository,
            pcp=self.pcp,
            max_policy_length=max_policy_length,
        )
        self.padap = PolicyAdaptationPoint(
            specification.hypothesis_space,
            self.representations,
            pcp=self.pcp,
            max_violations=max_learn_violations,
            budget_factory=learn_budget,
        )
        self.pdp = PolicyDecisionPoint(
            self.policy_repository,
            interpreter,
            self.log,
            budget_factory=decision_budget,
            breaker=breaker,
        )
        self.pep = PolicyEnforcementPoint(ManagedResource(name))
        goal_objects = specification.goal_objects()
        self.goal_monitor = GoalMonitor(goal_objects) if goal_objects else None

    # -- lifecycle -----------------------------------------------------------

    def bootstrap(self, context: Optional[Context] = None) -> List[StoredPolicy]:
        """Build the initial GPM and generate the first policy set."""
        if context is not None:
            if context.name:
                self.contexts.store(context)
                self.contexts.set_current(context.name)
        self.prep.bootstrap()
        return self.refresh_policies()

    def current_context(self) -> Context:
        """Local current context enriched with PIP-acquired externals."""
        return self.pip.acquire(self.contexts.current())

    def set_context(self, context: Context) -> None:
        self.contexts.store(context)
        self.contexts.set_current(context.name)

    def refresh_policies(self) -> List[StoredPolicy]:
        """(Re)generate the policy set for the current context."""
        installed, __ = self.prep.generate(self.current_context())
        return installed

    def model(self) -> GenerativePolicyModel:
        return self.representations.latest()

    # -- request serving --------------------------------------------------------

    def decide(self, request: Request) -> DecisionRecord:
        return self.pdp.decide(request, self.current_context())

    def decide_and_enforce(self, request: Request, action: str):
        record = self.decide(request)
        return self.pep.enforce(record, action)

    # -- feedback and adaptation ---------------------------------------------------

    def give_feedback(self, record: DecisionRecord, ok: bool) -> None:
        self.log.mark_outcome(record.record_id, ok)

    def add_example(self, example: LabeledExample) -> None:
        """Directly inject a labelled example (e.g. operator guidance)."""
        self.padap.add_example(example)

    def report_metrics(self, metrics) -> list:
        """Feed one tick of system metrics to the goal monitor (if any).

        Returns the goal statuses — the Section III.A trigger: "the
        operation of the system is not meeting the goals set by the
        global PBMS".
        """
        if self.goal_monitor is None:
            return []
        return self.goal_monitor.observe(metrics)

    def adapt_if_needed(self) -> bool:
        """Run the adaptation loop when monitoring shows missed goals —
        flagged decision outcomes or violated PBMS goals.

        Returns True when a new model version was learned and policies
        were regenerated.
        """
        goals_missed = (
            self.goal_monitor is not None and self.goal_monitor.needs_adaptation()
        )
        if not self.padap.needs_adaptation(self.log) and not goals_missed:
            return False
        return self.adapt()

    def adapt(self) -> bool:
        self.padap.ingest_feedback(self.log)
        before = self.model().version
        new_model, __ = self.padap.adapt()
        if new_model.version == before:
            return False
        self.refresh_policies()
        return True

    # -- coalition sharing -----------------------------------------------------------

    def share(self, wiki: CASWiki) -> List[Contribution]:
        """Contribute the current locally generated policies to CASWiki."""
        context_name = self.current_context().name
        return [
            wiki.contribute(self.name, policy.tokens, context_name)
            for policy in self.policy_repository.by_source("local")
        ]

    def import_shared(
        self, wiki: CASWiki, min_trust: float = 0.5
    ) -> Tuple[List[StoredPolicy], List]:
        """Adopt trusted shared policies that pass local PCP validation."""
        context = self.current_context()
        model = self.model()
        adopted: List[StoredPolicy] = []
        rejected = []
        for contribution in wiki.retrieve(
            min_trust=min_trust, exclude_agent=self.name
        ):
            candidate = StoredPolicy(
                contribution.policy.tokens,
                context.name,
                model.version,
                source=contribution.policy.source,
            )
            outcome = self.pcp.check_policy(candidate, model, context)
            if outcome.accepted:
                self.policy_repository.add(candidate)
                adopted.append(candidate)
                wiki.rate(contribution, True)
            else:
                rejected.append(outcome)
                wiki.rate(contribution, False)
        return adopted, rejected
