"""CASWiki: community-based sharing of policies (paper refs [16], Section III.A.3).

Agents "contribute policies to a shared knowledge base.  Policies shared
by different agents implicitly contain knowledge learned from the
application of policies in different contexts."  This module implements
the shared repository with per-agent trust scores: retrieval filters by
minimum trust, and consumers rate contributions, updating trust
(a small exponential moving average — coalition trust is never absolute).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.agenp.repositories import StoredPolicy
from repro.errors import AgenpError
from repro.grammar.cfg import SymbolString

__all__ = ["Contribution", "CASWiki"]


class Contribution:
    """A shared policy with provenance."""

    __slots__ = ("agent", "policy", "context_name", "ratings")

    def __init__(self, agent: str, policy: StoredPolicy, context_name: str):
        self.agent = agent
        self.policy = policy
        self.context_name = context_name
        self.ratings: List[bool] = []

    def __repr__(self) -> str:
        return f"Contribution({self.agent!r}: {self.policy.text!r} @ {self.context_name!r})"


class CASWiki:
    """The shared knowledge base of community policies."""

    def __init__(self, initial_trust: float = 0.5, trust_alpha: float = 0.25):
        self._contributions: List[Contribution] = []
        self._trust: Dict[str, float] = {}
        self.initial_trust = initial_trust
        self.trust_alpha = trust_alpha

    # -- contributing -------------------------------------------------------

    def contribute(
        self,
        agent: str,
        tokens: SymbolString,
        context_name: str = "",
    ) -> Contribution:
        policy = StoredPolicy(tokens, context_name, source=f"shared:{agent}")
        contribution = Contribution(agent, policy, context_name)
        self._contributions.append(contribution)
        self._trust.setdefault(agent, self.initial_trust)
        return contribution

    # -- retrieving ------------------------------------------------------------

    def trust(self, agent: str) -> float:
        return self._trust.get(agent, self.initial_trust)

    def retrieve(
        self,
        context_name: Optional[str] = None,
        min_trust: float = 0.0,
        exclude_agent: str = "",
    ) -> List[Contribution]:
        """Contributions for a context (or all), from trusted-enough agents."""
        out = []
        for contribution in self._contributions:
            if exclude_agent and contribution.agent == exclude_agent:
                continue
            if context_name is not None and contribution.context_name != context_name:
                continue
            if self.trust(contribution.agent) < min_trust:
                continue
            out.append(contribution)
        return out

    # -- trust feedback -----------------------------------------------------------

    def rate(self, contribution: Contribution, useful: bool) -> float:
        """Rate a contribution; returns the contributor's updated trust."""
        if contribution not in self._contributions:
            raise AgenpError("cannot rate an unknown contribution")
        contribution.ratings.append(useful)
        current = self.trust(contribution.agent)
        target = 1.0 if useful else 0.0
        updated = (1 - self.trust_alpha) * current + self.trust_alpha * target
        self._trust[contribution.agent] = updated
        return updated

    def agents(self) -> List[Tuple[str, float]]:
        return sorted(self._trust.items())

    def __len__(self) -> int:
        return len(self._contributions)
