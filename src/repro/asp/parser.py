"""Parser for the ASP surface syntax.

The grammar accepted is a practical subset of the clingo input language,
covering everything the paper's fragment needs:

.. code-block:: none

    program     := { statement }
    statement   := rule | constraint | choice
    rule        := atom [ ":-" body ] "."
    constraint  := ":-" body "."
    choice      := [ INT ] "{" atom { ";" atom } "}" [ INT ] [ ":-" body ] "."
    body        := bodyelem { "," bodyelem }
    bodyelem    := [ "not" ] atom | term CMP term
    atom        := IDENT [ "(" term { "," term } ")" ] [ "@" annotation ]
    annotation  := INT | "(" INT { "," INT } ")"
    term        := arith
    arith       := product { ("+"|"-") product }
    product     := primary { ("*"|"/"|"\\") primary }
    primary     := INT | STRING | VAR | IDENT [ "(" terms ")" ]
                 | "(" term { "," term } ")" | "-" primary
    CMP         := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="

Extras: ``%`` line comments; interval facts ``p(1..5).`` expand to five
facts; the anonymous variable ``_`` becomes a fresh variable per
occurrence.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.rules import (
    BodyElement,
    ChoiceRule,
    NormalRule,
    Program,
    Rule,
    WeakConstraint,
)
from repro.asp.terms import (
    ArithTerm,
    Constant,
    Function,
    Integer,
    Term,
    Variable,
    make_tuple,
)
from repro.errors import ASPSyntaxError, Span

__all__ = ["parse_program", "parse_rule", "parse_atom", "parse_term", "Tokenizer"]

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>%[^\n]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<INT>\d+)
  | (?P<IDENT>[a-z][A-Za-z0-9_]*)
  | (?P<VAR>[A-Z_][A-Za-z0-9_]*)
  | (?P<OP>:-|:~|\.\.|==|!=|<=|>=|\*\*|[(){};,.@=<>+\-*/\\\[\]])
    """,
    re.VERBOSE,
)

Token = Tuple[str, str, int, int]  # kind, text, line, column


class Tokenizer:
    """Convert ASP source text into a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Token] = []
        self._tokenize()

    def _tokenize(self) -> None:
        pos = 0
        line = 1
        line_start = 0
        text = self.text
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                col = pos - line_start + 1
                raise ASPSyntaxError(f"unexpected character {text[pos]!r}", line, col)
            kind = match.lastgroup or ""
            value = match.group()
            if kind not in ("WS", "COMMENT"):
                col = match.start() - line_start + 1
                self.tokens.append((kind, value, line, col))
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = match.start() + value.rfind("\n") + 1
            pos = match.end()


class _Parser:
    def __init__(self, text: str):
        self.tokens = Tokenizer(text).tokens
        self.pos = 0
        self._fresh = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else ("", "", 1, 1)
            raise ASPSyntaxError("unexpected end of input", last[2], last[3])
        self.pos += 1
        return token

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token[1] != text:
            raise ASPSyntaxError(f"expected {text!r}, found {token[1]!r}", token[2], token[3])
        return token

    def _at(self, text: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token[1] == text

    def _at_kind(self, kind: str, offset: int = 0) -> bool:
        token = self._peek(offset)
        return token is not None and token[0] == kind

    def _fresh_var(self) -> Variable:
        self._fresh += 1
        return Variable(f"_Anon{self._fresh}")

    # -- grammar ---------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while self._peek() is not None:
            program.extend(self._statement())
        return program

    def _statement(self) -> List[Rule]:
        """Parse one statement and stamp every produced rule with the
        source span from its first token through its terminating token."""
        start = self._peek()
        rules = self._statement_inner()
        end = self.tokens[self.pos - 1]
        span = Span(start[2], start[3], end[2], end[3] + len(end[1]))
        for rule in rules:
            rule.span = span
        return rules

    def _statement_inner(self) -> List[Rule]:
        if self._at(":-"):
            self._next()
            body = self._body()
            self._expect(".")
            return [NormalRule(None, body)]
        if self._at(":~"):
            self._next()
            body = self._body()
            self._expect(".")
            self._expect("[")
            weight = self._term()
            priority = 0
            if self._at("@"):
                self._next()
                token = self._next()
                if token[0] != "INT":
                    raise ASPSyntaxError(
                        f"expected integer priority, found {token[1]!r}",
                        token[2],
                        token[3],
                    )
                priority = int(token[1])
            self._expect("]")
            return [WeakConstraint(body, weight, priority)]
        if self._at("{") or (self._at_kind("INT") and self._at("{", 1)):
            return [self._choice()]
        head, intervals = self._atom(allow_interval=True)
        if self._at(":-"):
            self._next()
            body = self._body()
        else:
            body = []
        self._expect(".")
        if intervals:
            return [NormalRule(h, body) for h in _expand_intervals(head, intervals)]
        return [NormalRule(head, body)]

    def _choice(self) -> ChoiceRule:
        lower = None
        if self._at_kind("INT"):
            lower = int(self._next()[1])
        self._expect("{")
        elements = []
        if not self._at("}"):
            first, __ = self._atom()
            elements.append(first)
            while self._at(";"):
                self._next()
                atom, __ = self._atom()
                elements.append(atom)
        self._expect("}")
        upper = None
        if self._at_kind("INT"):
            upper = int(self._next()[1])
        body: List[BodyElement] = []
        if self._at(":-"):
            self._next()
            body = self._body()
        self._expect(".")
        return ChoiceRule(elements, body, lower, upper)

    def _body(self) -> List[BodyElement]:
        elems = [self._body_element()]
        while self._at(","):
            self._next()
            elems.append(self._body_element())
        return elems

    _CMP_OPS = ("=", "==", "!=", "<", "<=", ">", ">=")

    def _body_element(self) -> BodyElement:
        if self._at("not"):
            self._next()
            atom, __ = self._atom()
            return Literal(atom, positive=False)
        # Could be an atom or a comparison; parse a term, then look ahead.
        checkpoint = self.pos
        if self._at_kind("IDENT") and not self._is_comparison_ahead():
            atom, __ = self._atom()
            return Literal(atom, positive=True)
        self.pos = checkpoint
        first = self._peek()
        left = self._term()
        token = self._peek()
        if token is None or token[1] not in self._CMP_OPS:
            atom_span = (
                Span(first[2], first[3], first[2], first[3] + len(first[1]))
                if first is not None
                else None
            )
            if isinstance(left, (Constant, Function)) and not isinstance(left, ArithTerm):
                # a bare atom-like term: treat as atom
                if isinstance(left, Constant):
                    return Literal(Atom(left.name, span=atom_span), positive=True)
                if isinstance(left, Function) and left.functor:
                    return Literal(
                        Atom(left.functor, left.args, span=atom_span), positive=True
                    )
            where = token or ("", "", 0, 0)
            raise ASPSyntaxError("expected comparison operator", where[2], where[3])
        op_token = self._next()
        op_span = Span(
            op_token[2], op_token[3], op_token[2], op_token[3] + len(op_token[1])
        )
        right = self._term()
        return Comparison(op_token[1], left, right, op_span)

    def _is_comparison_ahead(self) -> bool:
        """Heuristic look-ahead: does an IDENT-led body element continue
        with a comparison operator (making it a term, not an atom)?

        Scans past one balanced parenthesis group.
        """
        offset = 1  # past the IDENT
        if self._at("(", offset):
            depth = 0
            while True:
                token = self._peek(offset)
                if token is None:
                    return False
                if token[1] == "(":
                    depth += 1
                elif token[1] == ")":
                    depth -= 1
                    if depth == 0:
                        offset += 1
                        break
                offset += 1
        token = self._peek(offset)
        return token is not None and token[1] in self._CMP_OPS + ("+", "-", "*", "/", "\\")

    def _atom(self, allow_interval: bool = False):
        token = self._next()
        if token[0] != "IDENT":
            raise ASPSyntaxError(f"expected predicate name, found {token[1]!r}", token[2], token[3])
        predicate = token[1]
        span = Span(token[2], token[3], token[2], token[3] + len(predicate))
        args: List[Term] = []
        intervals: List[Tuple[int, int, int]] = []  # (arg index, lo, hi)
        if self._at("("):
            self._next()
            index = 0
            while True:
                if allow_interval and self._at_kind("INT") and self._at("..", 1):
                    lo = int(self._next()[1])
                    self._next()  # ".."
                    hi_tok = self._next()
                    if hi_tok[0] != "INT":
                        raise ASPSyntaxError("expected integer after '..'", hi_tok[2], hi_tok[3])
                    intervals.append((index, lo, int(hi_tok[1])))
                    args.append(Integer(lo))  # placeholder, replaced on expansion
                else:
                    args.append(self._term())
                index += 1
                if self._at(","):
                    self._next()
                    continue
                break
            self._expect(")")
        annotation = None
        if self._at("@"):
            self._next()
            annotation = self._annotation()
        return Atom(predicate, args, annotation, span), intervals

    def _annotation(self) -> Tuple[int, ...]:
        if self._at("("):
            self._next()
            parts = [self._annotation_int()]
            while self._at(","):
                self._next()
                parts.append(self._annotation_int())
            self._expect(")")
            return tuple(parts)
        return (self._annotation_int(),)

    def _annotation_int(self) -> int:
        token = self._next()
        if token[0] != "INT":
            raise ASPSyntaxError(f"expected integer annotation, found {token[1]!r}", token[2], token[3])
        return int(token[1])

    # -- terms -----------------------------------------------------------

    def _term(self) -> Term:
        return self._arith()

    def _arith(self) -> Term:
        left = self._product()
        while self._at("+") or self._at("-"):
            op = self._next()[1]
            right = self._product()
            left = ArithTerm(op, left, right)
        return left

    def _product(self) -> Term:
        left = self._primary()
        while self._at("*") or self._at("/") or self._at("\\") or self._at("**"):
            op = self._next()[1]
            right = self._primary()
            left = ArithTerm(op, left, right)
        return left

    def _primary(self) -> Term:
        token = self._next()
        kind, text = token[0], token[1]
        if kind == "INT":
            return Integer(int(text))
        if kind == "STRING":
            return Constant(text)
        if kind == "VAR":
            if text == "_":
                return self._fresh_var()
            return Variable(text)
        if kind == "IDENT":
            if self._at("("):
                self._next()
                args = [self._term()]
                while self._at(","):
                    self._next()
                    args.append(self._term())
                self._expect(")")
                return Function(text, args)
            return Constant(text)
        if text == "(":
            items = [self._term()]
            while self._at(","):
                self._next()
                items.append(self._term())
            self._expect(")")
            if len(items) == 1:
                return items[0]
            return make_tuple(items)
        if text == "-":
            inner = self._primary()
            if isinstance(inner, Integer):
                return Integer(-inner.value)
            return ArithTerm("-", Integer(0), inner)
        raise ASPSyntaxError(f"unexpected token {text!r}", token[2], token[3])


def _expand_intervals(head: Atom, intervals) -> List[Atom]:
    """Expand interval placeholders in a fact head into concrete atoms."""
    atoms = [list(head.args)]
    for index, lo, hi in intervals:
        expanded = []
        for args in atoms:
            for value in range(lo, hi + 1):
                new_args = list(args)
                new_args[index] = Integer(value)
                expanded.append(new_args)
        atoms = expanded
    return [Atom(head.predicate, args, head.annotation, head.span) for args in atoms]


def parse_program(text: str) -> Program:
    """Parse a full ASP program from source text."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must end with ``.``)."""
    rules = _Parser(text).parse_program()
    if len(rules) != 1:
        raise ASPSyntaxError(f"expected exactly one rule, found {len(rules)}")
    return rules.rules[0]


def parse_atom(text: str) -> Atom:
    """Parse a single (possibly annotated) atom."""
    parser = _Parser(text)
    atom, __ = parser._atom()
    if parser._peek() is not None:
        token = parser._peek()
        raise ASPSyntaxError(f"trailing input after atom: {token[1]!r}", token[2], token[3])
    return atom


def parse_term(text: str) -> Term:
    """Parse a single term."""
    parser = _Parser(text)
    term = parser._term()
    if parser._peek() is not None:
        token = parser._peek()
        raise ASPSyntaxError(f"trailing input after term: {token[1]!r}", token[2], token[3])
    return term
