"""A from-scratch Answer Set Programming engine.

This package is the substrate the paper's framework stands on (it plays
the role clingo plays for the authors): a parser for a clingo-like
surface syntax, a grounder, and an answer-set solver with exact
Gelfond–Lifschitz stability checking.  The supported fragment — normal
rules, constraints, choice rules, builtin comparisons and integer
arithmetic, plus the paper's *annotated atoms* (``a(1)@2``) — covers
everything Answer Set Grammars and the inductive learner need.
"""

from repro.asp.api import (
    is_satisfiable,
    is_satisfiable_text,
    solve_program,
    solve_text,
)
from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.grounder import GroundProgram, ground_program
from repro.asp.parser import parse_atom, parse_program, parse_rule, parse_term
from repro.asp.rules import ChoiceRule, NormalRule, Program, WeakConstraint, fact
from repro.asp.solver import (
    AnswerSet,
    AnswerSetSolver,
    CostVector,
    SolveResult,
    SolveStats,
    cost_of,
    solve,
    solve_optimal,
)
from repro.asp.terms import ArithTerm, Constant, Function, Integer, Term, Variable

__all__ = [
    "Atom",
    "Comparison",
    "Literal",
    "NormalRule",
    "ChoiceRule",
    "WeakConstraint",
    "Program",
    "fact",
    "Constant",
    "Integer",
    "Variable",
    "Function",
    "ArithTerm",
    "Term",
    "parse_program",
    "parse_rule",
    "parse_atom",
    "parse_term",
    "ground_program",
    "GroundProgram",
    "AnswerSetSolver",
    "AnswerSet",
    "SolveResult",
    "SolveStats",
    "solve",
    "solve_optimal",
    "cost_of",
    "CostVector",
    "solve_text",
    "solve_program",
    "is_satisfiable",
    "is_satisfiable_text",
]
