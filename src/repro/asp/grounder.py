"""Grounding: from first-order programs to ground programs.

The grounder works in two phases:

1. **Possible-atom fixpoint** — treat every rule as if its negative
   literals were absent and every choice element were derivable; compute
   the least set of atoms that could possibly hold. This over-approximates
   every answer set, so it is a sound basis for instantiation.
2. **Instantiation** — for every rule, enumerate all substitutions whose
   positive body matches the possible-atom set, evaluate builtin
   comparisons and arithmetic, and emit the ground instance. Negative
   literals over atoms that are not possible are trivially true and
   dropped; ground rules whose body contains a failed comparison are
   dropped entirely.

Safety (every variable bound by a positive body literal, or by an
``=`` assignment whose right-hand side is bound) is checked before
grounding; unsafe rules raise :class:`~repro.errors.UnsafeRuleError`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.rules import (
    BodyElement,
    ChoiceRule,
    NormalRule,
    Program,
    Rule,
    WeakConstraint,
)
from repro.asp.terms import (
    ArithTerm,
    Constant,
    Function,
    Integer,
    Substitution,
    Term,
    Variable,
)
from repro.errors import GroundingError, UnsafeRuleError
from repro.runtime.budget import Budget, current_budget
from repro.telemetry import span as _tele_span

__all__ = [
    "ground_program",
    "GroundProgram",
    "GroundStats",
    "match_atom",
    "binding_schedule",
    "order_body",
]


class GroundStats:
    """Per-run grounding statistics (semi-naive bottom-up telemetry).

    * ``fixpoint_iterations`` — passes of the possible-atom fixpoint;
    * ``substitutions`` — substitutions enumerated across both phases;
    * ``atoms`` — size of the final possible-atom set;
    * ``rules_grounded`` — ground rules emitted (normal + choice + weak).
    """

    __slots__ = ("fixpoint_iterations", "substitutions", "atoms", "rules_grounded")

    def __init__(self) -> None:
        self.fixpoint_iterations = 0
        self.substitutions = 0
        self.atoms = 0
        self.rules_grounded = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"GroundStats({inner})"


class GroundProgram:
    """The result of grounding: ground rules plus the possible-atom set.

    ``stats`` carries the :class:`GroundStats` of the run that produced
    this program (a fresh zeroed instance when constructed directly).
    """

    __slots__ = ("normal_rules", "choice_rules", "weak_constraints", "atoms", "stats")

    def __init__(
        self,
        normal_rules: List[NormalRule],
        choice_rules: List[ChoiceRule],
        atoms: Set[Atom],
        weak_constraints: Optional[List[WeakConstraint]] = None,
        stats: Optional[GroundStats] = None,
    ):
        self.normal_rules = normal_rules
        self.choice_rules = choice_rules
        self.weak_constraints = weak_constraints if weak_constraints is not None else []
        self.atoms = atoms
        self.stats = stats if stats is not None else GroundStats()

    def __repr__(self) -> str:
        lines = (
            [repr(r) for r in self.normal_rules]
            + [repr(r) for r in self.choice_rules]
            + [repr(r) for r in self.weak_constraints]
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Matching


def match_term(pattern: Term, ground: Term, theta: Substitution) -> Optional[Substitution]:
    """One-way matching of ``pattern`` against a ground term.

    Returns an extension of ``theta`` or ``None``. ``theta`` is not
    mutated.
    """
    if isinstance(pattern, Variable):
        bound = theta.get(pattern.name)
        if bound is None:
            out = dict(theta)
            out[pattern.name] = ground
            return out
        return theta if bound == ground else None
    if isinstance(pattern, (Constant, Integer)):
        return theta if pattern == ground else None
    if isinstance(pattern, Function):
        if (
            not isinstance(ground, Function)
            or pattern.functor != ground.functor
            or len(pattern.args) != len(ground.args)
        ):
            return None
        current: Optional[Substitution] = theta
        for p_arg, g_arg in zip(pattern.args, ground.args):
            current = match_term(p_arg, g_arg, current)
            if current is None:
                return None
        return current
    if isinstance(pattern, ArithTerm):
        # Arithmetic in a matched position: evaluate (must be ground under theta).
        substituted = pattern.substitute(theta)
        if not substituted.is_ground():
            return None
        return theta if substituted.evaluate() == ground else None
    raise GroundingError(f"cannot match term {pattern!r}")


def match_atom(pattern: Atom, ground: Atom, theta: Substitution) -> Optional[Substitution]:
    """One-way matching of an atom pattern against a ground atom."""
    if (
        pattern.predicate != ground.predicate
        or len(pattern.args) != len(ground.args)
        or pattern.annotation != ground.annotation
    ):
        return None
    current: Optional[Substitution] = theta
    for p_arg, g_arg in zip(pattern.args, ground.args):
        current = match_term(p_arg, g_arg, current)
        if current is None:
            return None
    return current


# ---------------------------------------------------------------------------
# Safety and body ordering


def _bound_by_assignment(comp: Comparison, bound: Set[str]) -> Optional[str]:
    """If ``comp`` can act as an assignment given ``bound`` vars, return
    the variable name it binds."""
    if comp.op != "==":
        return None
    left_vars = {v.name for v in comp.left.variables()}
    right_vars = {v.name for v in comp.right.variables()}
    if isinstance(comp.left, Variable) and comp.left.name not in bound and right_vars <= bound:
        return comp.left.name
    if isinstance(comp.right, Variable) and comp.right.name not in bound and left_vars <= bound:
        return comp.right.name
    return None


def binding_schedule(rule: Rule) -> Tuple[List[BodyElement], Set[str]]:
    """The grounder's body-ordering/safety analysis, without grounding.

    Positive literals and assignment-comparisons are scheduled as soon as
    they can bind; tests (negative literals, non-assignment comparisons)
    are scheduled once all their variables are bound.  Returns the
    evaluation order achieved and the set of variable names that could
    not be bound — empty iff the rule is safe.

    This single function backs both :func:`order_body` (which turns a
    non-empty unbound set into :class:`UnsafeRuleError`) and the static
    ASP linter (:mod:`repro.analysis.asp_lint`), so grounding and lint
    diagnostics agree by construction.
    """
    remaining = list(rule.body)
    ordered: List[BodyElement] = []
    bound: Set[str] = set()
    while remaining:
        progressed = False
        for elem in list(remaining):
            if isinstance(elem, Literal) and elem.positive:
                ordered.append(elem)
                remaining.remove(elem)
                bound.update(v.name for v in elem.variables())
                progressed = True
            elif isinstance(elem, Comparison):
                var = _bound_by_assignment(elem, bound)
                elem_vars = {v.name for v in elem.variables()}
                if var is not None:
                    ordered.append(elem)
                    remaining.remove(elem)
                    bound.add(var)
                    progressed = True
                elif elem_vars <= bound:
                    ordered.append(elem)
                    remaining.remove(elem)
                    progressed = True
            else:  # negative literal
                elem_vars = {v.name for v in elem.variables()}
                if elem_vars <= bound:
                    ordered.append(elem)
                    remaining.remove(elem)
                    progressed = True
        if not progressed:
            break
    unbound: Set[str] = set()
    for elem in remaining:
        unbound.update(v.name for v in elem.variables())
    head_vars: Set[str] = set()
    if isinstance(rule, NormalRule):
        if rule.head is not None:
            head_vars = {v.name for v in rule.head.variables()}
    elif isinstance(rule, WeakConstraint):
        head_vars = {v.name for v in rule.weight.variables()}
    else:
        for atom in rule.elements:
            head_vars |= {v.name for v in atom.variables()}
    unbound |= head_vars
    unbound -= bound
    return ordered, unbound


def order_body(rule: Rule) -> List[BodyElement]:
    """Produce an evaluation order for a rule body.

    Raises :class:`UnsafeRuleError` (carrying the rule's source span,
    when known, and the offending variable names) if no complete
    schedule exists.
    """
    ordered, unbound = binding_schedule(rule)
    if unbound:
        raise UnsafeRuleError(
            f"rule is unsafe (cannot bind variables {sorted(unbound)}): {rule!r}",
            span=getattr(rule, "span", None),
            variables=tuple(sorted(unbound)),
        )
    return ordered


# ---------------------------------------------------------------------------
# Substitution enumeration


class _AtomIndex:
    """Atoms indexed by (predicate, arity, annotation) for fast matching."""

    def __init__(self) -> None:
        self._by_sig: Dict[tuple, List[Atom]] = defaultdict(list)
        self._all: Set[Atom] = set()

    def add(self, atom: Atom) -> bool:
        if atom in self._all:
            return False
        self._all.add(atom)
        self._by_sig[(atom.predicate, len(atom.args), atom.annotation)].append(atom)
        return True

    def candidates(self, pattern: Atom) -> Sequence[Atom]:
        return self._by_sig.get(
            (pattern.predicate, len(pattern.args), pattern.annotation), ()
        )

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._all

    @property
    def atoms(self) -> Set[Atom]:
        return self._all


def _enumerate(
    plan: Sequence[BodyElement],
    index: _AtomIndex,
    theta: Substitution,
    positives_only: bool,
) -> Iterator[Substitution]:
    """Enumerate substitutions satisfying the body plan against ``index``.

    When ``positives_only`` is true (possible-atom fixpoint), negative
    literals are ignored; otherwise a negative literal only *prunes* when
    its ground atom cannot possibly hold — the solver handles the rest.
    """
    if not plan:
        yield theta
        return
    elem, rest = plan[0], plan[1:]
    if isinstance(elem, Literal) and elem.positive:
        for candidate in index.candidates(elem.atom):
            extended = match_atom(elem.atom, candidate, theta)
            if extended is not None:
                yield from _enumerate(rest, index, extended, positives_only)
    elif isinstance(elem, Comparison):
        comp = elem.substitute(theta)
        var = _bound_by_assignment(comp, set())
        if var is not None:
            assigned = comp.right if isinstance(comp.left, Variable) else comp.left
            try:
                value = assigned.evaluate()
            except GroundingError:
                return
            extended = dict(theta)
            extended[var] = value
            yield from _enumerate(rest, index, extended, positives_only)
        else:
            if not comp.is_ground():
                return
            try:
                holds = comp.holds()
            except GroundingError:
                return
            if holds:
                yield from _enumerate(rest, index, theta, positives_only)
    else:  # negative literal: never binds
        yield from _enumerate(rest, index, theta, positives_only)


def _evaluate_atom(atom: Atom) -> Optional[Atom]:
    try:
        return atom.evaluate()
    except GroundingError:
        return None


# ---------------------------------------------------------------------------
# Main entry point


def ground_program(
    program: Program,
    max_atoms: int = 2_000_000,
    budget: Optional[Budget] = None,
) -> GroundProgram:
    """Ground ``program``.

    ``max_atoms`` bounds the possible-atom set as a runaway guard
    (raises :class:`GroundingError` when exceeded).  ``budget``
    (explicit or ambient) is ticked once per enumerated substitution in
    both phases, so step budgets and deadlines interrupt grounding
    before the possible-atom set explodes.

    The returned program carries :class:`GroundStats` (``.stats``);
    the same numbers land on the ambient ``asp.ground`` telemetry span
    when a tracer is installed.
    """
    with _tele_span("asp.ground", source_rules=len(program)) as sp:
        ground = _ground(program, max_atoms, budget)
        for name, value in ground.stats.as_dict().items():
            sp.incr(f"grounder.{name}", value)
        return ground


def _ground(
    program: Program,
    max_atoms: int,
    budget: Optional[Budget],
) -> GroundProgram:
    if budget is None:
        budget = current_budget()
    stats = GroundStats()
    plans: List[Tuple[Rule, List[BodyElement]]] = []
    for rule in program:
        plans.append((rule, order_body(rule)))

    index = _AtomIndex()

    # Phase 1: possible-atom fixpoint (naive iteration with indexing; the
    # programs produced by the policy layer are small and shallow).
    changed = True
    while changed:
        changed = False
        stats.fixpoint_iterations += 1
        for rule, plan in plans:
            for theta in _enumerate(plan, index, {}, positives_only=True):
                stats.substitutions += 1
                if budget is not None:
                    budget.tick()
                heads: List[Atom] = []
                if isinstance(rule, NormalRule):
                    if rule.head is not None:
                        heads = [rule.head.substitute(theta)]
                elif isinstance(rule, ChoiceRule):
                    heads = [a.substitute(theta) for a in rule.elements]
                for head in heads:
                    evaluated = _evaluate_atom(head)
                    if evaluated is None:
                        continue
                    if index.add(evaluated):
                        changed = True
                        if len(index.atoms) > max_atoms:
                            raise GroundingError(
                                f"possible-atom set exceeded {max_atoms} atoms"
                            )

    # Phase 2: instantiation against the complete possible-atom set.
    normal_rules: List[NormalRule] = []
    choice_rules: List[ChoiceRule] = []
    weak_constraints: List[WeakConstraint] = []
    seen_normal: Set[NormalRule] = set()
    seen_choice: Set[ChoiceRule] = set()
    seen_weak: Set[WeakConstraint] = set()
    for rule, plan in plans:
        for theta in _enumerate(plan, index, {}, positives_only=False):
            stats.substitutions += 1
            if budget is not None:
                budget.tick()
            body: List[BodyElement] = []
            viable = True
            for elem in rule.body:
                if isinstance(elem, Comparison):
                    continue  # already checked during enumeration
                literal = elem.substitute(theta)
                atom = _evaluate_atom(literal.atom)
                if atom is None:
                    viable = False
                    break
                if literal.positive:
                    body.append(Literal(atom, True))
                else:
                    if atom in index:
                        body.append(Literal(atom, False))
                    # else: trivially true, drop
            if not viable:
                continue
            if isinstance(rule, NormalRule):
                head = None
                if rule.head is not None:
                    head = _evaluate_atom(rule.head.substitute(theta))
                    if head is None:
                        continue
                ground = NormalRule(head, body)
                if ground not in seen_normal:
                    seen_normal.add(ground)
                    normal_rules.append(ground)
            elif isinstance(rule, WeakConstraint):
                try:
                    weight = rule.weight.substitute(theta).evaluate()
                except GroundingError:
                    continue
                ground_weak = WeakConstraint(body, weight, rule.priority)
                if ground_weak not in seen_weak:
                    seen_weak.add(ground_weak)
                    weak_constraints.append(ground_weak)
            else:
                elements = []
                for atom in rule.elements:
                    evaluated = _evaluate_atom(atom.substitute(theta))
                    if evaluated is None:
                        break
                    elements.append(evaluated)
                else:
                    ground_choice = ChoiceRule(elements, body, rule.lower, rule.upper)
                    if ground_choice not in seen_choice:
                        seen_choice.add(ground_choice)
                        choice_rules.append(ground_choice)
    stats.atoms = len(index.atoms)
    stats.rules_grounded = len(normal_rules) + len(choice_rules) + len(weak_constraints)
    return GroundProgram(
        normal_rules, choice_rules, set(index.atoms), weak_constraints, stats=stats
    )
