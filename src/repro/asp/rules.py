"""Rules and programs for the ASP subsystem.

The supported language is the fragment the paper uses (Section II.A):
normal rules and constraints, plus choice rules (used internally for
policy *generation*, and by the learner's hypothesis spaces):

* normal rule      ``h :- b1, ..., bn, not c1, ..., not cm.``
* fact             ``h.``
* constraint       ``:- b1, ..., not cm.``
* choice rule      ``l { a1 ; ... ; ak } u :- body.``

Bodies may also contain builtin comparisons (``X < Y``, ``X != a``) and
arithmetic (``Y = X + 1`` via comparison with ``=``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.terms import Substitution, Variable
from repro.errors import Span

__all__ = ["BodyElement", "NormalRule", "ChoiceRule", "Rule", "Program", "fact"]

BodyElement = Union[Literal, Comparison]


class NormalRule:
    """A normal rule or (with ``head=None``) an integrity constraint.

    ``span`` locates the rule in its source text when it came from the
    parser; it is preserved through substitution and ignored by
    equality/hashing.
    """

    __slots__ = ("head", "body", "span")

    def __init__(
        self,
        head: Optional[Atom],
        body: Sequence[BodyElement] = (),
        span: Optional[Span] = None,
    ):
        self.head = head
        self.body: Tuple[BodyElement, ...] = tuple(body)
        self.span = span

    @property
    def is_constraint(self) -> bool:
        return self.head is None

    @property
    def is_fact(self) -> bool:
        return self.head is not None and not self.body

    def variables(self) -> Set[Variable]:
        out: Set[Variable] = set()
        if self.head is not None:
            out.update(self.head.variables())
        for elem in self.body:
            out.update(elem.variables())
        return out

    def positive_body(self) -> Iterator[Atom]:
        for elem in self.body:
            if isinstance(elem, Literal) and elem.positive:
                yield elem.atom

    def negative_body(self) -> Iterator[Atom]:
        for elem in self.body:
            if isinstance(elem, Literal) and not elem.positive:
                yield elem.atom

    def comparisons(self) -> Iterator[Comparison]:
        for elem in self.body:
            if isinstance(elem, Comparison):
                yield elem

    def substitute(self, theta: Substitution) -> "NormalRule":
        head = self.head.substitute(theta) if self.head is not None else None
        return NormalRule(head, [e.substitute(theta) for e in self.body], self.span)

    def is_ground(self) -> bool:
        if self.head is not None and not self.head.is_ground():
            return False
        return all(e.is_ground() for e in self.body)

    def __repr__(self) -> str:
        body = ", ".join(repr(e) for e in self.body)
        if self.head is None:
            return f":- {body}."
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- {body}."

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NormalRule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((self.head, self.body))


class ChoiceRule:
    """A choice rule ``l { a1 ; ... ; ak } u :- body.``

    ``lower``/``upper`` of ``None`` mean unbounded.  Elements are plain
    atoms (conditional elements are not supported in this fragment).
    """

    __slots__ = ("elements", "lower", "upper", "body", "span")

    def __init__(
        self,
        elements: Sequence[Atom],
        body: Sequence[BodyElement] = (),
        lower: Optional[int] = None,
        upper: Optional[int] = None,
        span: Optional[Span] = None,
    ):
        self.elements: Tuple[Atom, ...] = tuple(elements)
        self.body: Tuple[BodyElement, ...] = tuple(body)
        self.lower = lower
        self.upper = upper
        self.span = span

    def variables(self) -> Set[Variable]:
        out: Set[Variable] = set()
        for atom in self.elements:
            out.update(atom.variables())
        for elem in self.body:
            out.update(elem.variables())
        return out

    def positive_body(self) -> Iterator[Atom]:
        for elem in self.body:
            if isinstance(elem, Literal) and elem.positive:
                yield elem.atom

    def substitute(self, theta: Substitution) -> "ChoiceRule":
        return ChoiceRule(
            [a.substitute(theta) for a in self.elements],
            [e.substitute(theta) for e in self.body],
            self.lower,
            self.upper,
            self.span,
        )

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.elements) and all(
            e.is_ground() for e in self.body
        )

    def __repr__(self) -> str:
        inner = "; ".join(repr(a) for a in self.elements)
        lo = f"{self.lower} " if self.lower is not None else ""
        hi = f" {self.upper}" if self.upper is not None else ""
        head = f"{lo}{{ {inner} }}{hi}"
        if not self.body:
            return f"{head}."
        body = ", ".join(repr(e) for e in self.body)
        return f"{head} :- {body}."

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ChoiceRule)
            and self.elements == other.elements
            and self.body == other.body
            and self.lower == other.lower
            and self.upper == other.upper
        )

    def __hash__(self) -> int:
        return hash((self.elements, self.body, self.lower, self.upper))


class WeakConstraint:
    """A weak constraint ``:~ body. [weight@priority]``.

    Unlike a hard constraint, a violated weak constraint does not kill
    the answer set — it adds ``weight`` to the model's cost at its
    ``priority`` level.  Optimal answer sets minimize cost vectors
    lexicographically by descending priority (clingo semantics).  Weak
    constraints are the substrate for the paper's *utility-based
    policies* ("direct the managed parties to produce the best
    consequence according to some value function", Section I).
    """

    __slots__ = ("body", "weight", "priority", "span")

    def __init__(
        self,
        body: Sequence[BodyElement],
        weight,
        priority: int = 0,
        span: Optional[Span] = None,
    ):
        self.body: Tuple[BodyElement, ...] = tuple(body)
        self.weight = weight  # a Term (Integer once ground)
        self.priority = priority
        self.span = span

    @property
    def head(self) -> None:  # uniform rule interface
        return None

    def variables(self) -> Set[Variable]:
        out: Set[Variable] = set()
        for elem in self.body:
            out.update(elem.variables())
        out.update(self.weight.variables())
        return out

    def positive_body(self) -> Iterator[Atom]:
        for elem in self.body:
            if isinstance(elem, Literal) and elem.positive:
                yield elem.atom

    def substitute(self, theta: Substitution) -> "WeakConstraint":
        return WeakConstraint(
            [e.substitute(theta) for e in self.body],
            self.weight.substitute(theta),
            self.priority,
            self.span,
        )

    def is_ground(self) -> bool:
        return all(e.is_ground() for e in self.body) and self.weight.is_ground()

    def __repr__(self) -> str:
        body = ", ".join(repr(e) for e in self.body)
        suffix = f"[{self.weight!r}@{self.priority}]" if self.priority else f"[{self.weight!r}]"
        return f":~ {body}. {suffix}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WeakConstraint)
            and self.body == other.body
            and self.weight == other.weight
            and self.priority == other.priority
        )

    def __hash__(self) -> int:
        return hash((self.body, self.weight, self.priority))


Rule = Union[NormalRule, ChoiceRule, WeakConstraint]


def fact(atom: Atom) -> NormalRule:
    """Build the fact ``atom.``"""
    return NormalRule(atom, ())


class Program:
    """An ordered collection of rules.

    Programs are cheap value objects; combination (``+``) concatenates
    rule lists.  The grounder and solver operate on programs.
    """

    __slots__ = ("rules",)

    def __init__(self, rules: Iterable[Rule] = ()):
        self.rules: List[Rule] = list(rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __add__(self, other: "Program") -> "Program":
        return Program(itertools.chain(self.rules, other.rules))

    def add(self, rule: Rule) -> None:
        self.rules.append(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        self.rules.extend(rules)

    def facts(self) -> Iterator[Atom]:
        for rule in self.rules:
            if isinstance(rule, NormalRule) and rule.is_fact and rule.head.is_ground():
                yield rule.head

    def predicates(self) -> Set[Tuple[str, int]]:
        """All predicate signatures occurring anywhere in the program."""
        sigs: Set[Tuple[str, int]] = set()
        for rule in self.rules:
            if isinstance(rule, NormalRule):
                if rule.head is not None:
                    sigs.add(rule.head.signature)
            else:
                for atom in rule.elements:
                    sigs.add(atom.signature)
            for elem in rule.body:
                if isinstance(elem, Literal):
                    sigs.add(elem.atom.signature)
        return sigs

    def fingerprint(self) -> str:
        """Stable content fingerprint (hex) — the serving-cache key.

        Two structurally identical programs share a fingerprint; any
        change to a rule, term type, annotation, or rule *order*
        produces a different one.  See :mod:`repro.engine.fingerprint`.
        """
        # local import: engine depends on asp, not the other way around
        from repro.engine.fingerprint import fingerprint_program

        return fingerprint_program(self)

    def __repr__(self) -> str:
        return "\n".join(repr(r) for r in self.rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self.rules == other.rules
