"""Term representation for the ASP subsystem.

Terms follow the usual ASP (Prolog-style) conventions:

* **Constants** — lowercase identifiers (``alice``), quoted strings
  (``"hello world"``).
* **Integers** — ``42``, ``-3``.
* **Variables** — uppercase identifiers (``X``, ``Subject``). The
  anonymous variable ``_`` is expanded to a fresh variable by the parser.
* **Function terms** — ``f(X, g(a))``; tuples are function terms with the
  empty functor (printed ``(a, b)``).
* **Arithmetic terms** — ``X + 1``, ``Y * 2``; evaluated at grounding
  time, so they may only appear where all their variables are bound.

All terms are immutable and hashable; substitution returns new objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, Sequence, Tuple, Union

from repro.errors import GroundingError

__all__ = [
    "Term",
    "Constant",
    "Integer",
    "Variable",
    "Function",
    "ArithTerm",
    "Substitution",
    "make_tuple",
]


class Term:
    """Abstract base class for ASP terms."""

    __slots__ = ()

    def is_ground(self) -> bool:
        raise NotImplementedError

    def variables(self) -> Iterator["Variable"]:
        """Yield each variable occurrence in this term."""
        raise NotImplementedError

    def substitute(self, theta: "Substitution") -> "Term":
        """Apply a substitution, returning a (possibly) new term."""
        raise NotImplementedError

    def evaluate(self) -> "Term":
        """Evaluate arithmetic sub-terms; identity for non-arithmetic terms."""
        return self


class Constant(Term):
    """A symbolic constant or quoted string."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def substitute(self, theta: "Substitution") -> "Term":
        return self

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("c", self.name))

    def __lt__(self, other: "Term") -> bool:
        return _term_key(self) < _term_key(other)


class Integer(Term):
    """An integer constant."""

    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Variable"]:
        return iter(())

    def substitute(self, theta: "Substitution") -> "Term":
        return self

    def __repr__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Integer) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("i", self.value))

    def __lt__(self, other: "Term") -> bool:
        return _term_key(self) < _term_key(other)


class Variable(Term):
    """A first-order variable (uppercase identifier)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Variable"]:
        yield self

    def substitute(self, theta: "Substitution") -> "Term":
        return theta.get(self.name, self)

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("v", self.name))

    def __lt__(self, other: "Term") -> bool:
        return _term_key(self) < _term_key(other)


class Function(Term):
    """A compound term ``functor(arg1, ..., argN)``.

    A tuple ``(a, b)`` is represented as a :class:`Function` whose
    ``functor`` is the empty string.
    """

    __slots__ = ("functor", "args", "_hash")

    def __init__(self, functor: str, args: Sequence[Term]):
        self.functor = functor
        self.args: Tuple[Term, ...] = tuple(args)
        self._hash = hash(("f", functor, self.args))

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.args)

    def variables(self) -> Iterator["Variable"]:
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, theta: "Substitution") -> "Term":
        return Function(self.functor, [a.substitute(theta) for a in self.args])

    def evaluate(self) -> "Term":
        return Function(self.functor, [a.evaluate() for a in self.args])

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.functor}({inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Function)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Term") -> bool:
        return _term_key(self) < _term_key(other)


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b,
    "\\": lambda a, b: a % b,
    "**": lambda a, b: a**b,
}


class ArithTerm(Term):
    """A binary arithmetic expression over integer terms.

    ``evaluate()`` reduces a ground arithmetic term to an
    :class:`Integer`; attempting to evaluate a non-integer operand raises
    :class:`~repro.errors.GroundingError` (matching clingo, where
    arithmetic over symbolic constants yields no instances).
    """

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Term, right: Term):
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def is_ground(self) -> bool:
        return self.left.is_ground() and self.right.is_ground()

    def variables(self) -> Iterator["Variable"]:
        yield from self.left.variables()
        yield from self.right.variables()

    def substitute(self, theta: "Substitution") -> "Term":
        return ArithTerm(self.op, self.left.substitute(theta), self.right.substitute(theta))

    def evaluate(self) -> Term:
        left = self.left.evaluate()
        right = self.right.evaluate()
        if not isinstance(left, Integer) or not isinstance(right, Integer):
            raise GroundingError(
                f"arithmetic on non-integer terms: {left!r} {self.op} {right!r}"
            )
        if self.op in ("/", "\\") and right.value == 0:
            raise GroundingError(f"division by zero in {self!r}")
        return Integer(_ARITH_OPS[self.op](left.value, right.value))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArithTerm)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("a", self.op, self.left, self.right))

    def __lt__(self, other: "Term") -> bool:
        return _term_key(self) < _term_key(other)


def _term_key(term: Term) -> tuple:
    """A total order on ground-ish terms: integers < constants < functions.

    Used to give answer sets and builtin comparisons a deterministic
    order. Matches the ASP standard order for the common cases (integers
    before symbolic constants; constants by name; compound terms by
    arity, then functor, then arguments).
    """
    if isinstance(term, Integer):
        return (0, term.value)
    if isinstance(term, Constant):
        return (1, term.name)
    if isinstance(term, Function):
        return (2, len(term.args), term.functor, tuple(_term_key(a) for a in term.args))
    if isinstance(term, Variable):
        return (3, term.name)
    if isinstance(term, ArithTerm):
        return (4, term.op, _term_key(term.left), _term_key(term.right))
    raise TypeError(f"not a term: {term!r}")


def term_sort_key(term: Term) -> tuple:
    """Public alias of the internal total-order key for terms."""
    return _term_key(term)


Substitution = Dict[str, Term]
"""A mapping from variable names to terms."""


def make_tuple(args: Sequence[Term]) -> Function:
    """Construct an ASP tuple term ``(a1, ..., an)``."""
    return Function("", args)
