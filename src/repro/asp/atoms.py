"""Atoms, literals, and builtin comparisons.

An :class:`Atom` may carry an *annotation* — the trace of a parse-tree
node, per the Answer Set Grammar semantics of the paper (Section II.A):
``a(1)@2`` is the atom ``a(1)`` annotated with ``2``.  When computing
answer sets, annotated atoms are ordinary atoms whose identity includes
the annotation (``a@2``, ``a@3`` and ``a`` are three distinct atoms), so
the annotation is simply part of the atom's hash/equality.

Annotations are tuples of integers (traces).  The surface syntax
``a@k`` with a single integer ``k`` is represented as the length-1 trace
``(k,)``; the ASG machinery re-roots annotations onto longer traces when
building ``G[PT]`` (see :mod:`repro.asg.semantics`).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.asp.terms import Substitution, Term, Variable, term_sort_key
from repro.errors import Span

__all__ = ["Atom", "Literal", "Comparison", "TRUE_ATOM"]

Trace = Tuple[int, ...]


class Atom:
    """A (possibly annotated) predicate atom ``p(t1, ..., tn)@trace``.

    ``span`` is the source location of the predicate token when the atom
    came from the parser (``None`` for synthesized atoms); it is carried
    through substitution/evaluation but takes no part in equality or
    hashing — two atoms from different source locations are still the
    same atom.
    """

    __slots__ = ("predicate", "args", "annotation", "span", "_hash")

    def __init__(
        self,
        predicate: str,
        args: Sequence[Term] = (),
        annotation: Optional[Trace] = None,
        span: Optional[Span] = None,
    ):
        self.predicate = predicate
        self.args: Tuple[Term, ...] = tuple(args)
        self.annotation: Optional[Trace] = (
            tuple(annotation) if annotation is not None else None
        )
        self.span = span
        self._hash = hash((predicate, self.args, self.annotation))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        """The ``(predicate, arity)`` pair, ignoring annotations."""
        return (self.predicate, len(self.args))

    def is_ground(self) -> bool:
        return all(a.is_ground() for a in self.args)

    def variables(self) -> Iterator[Variable]:
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, theta: Substitution) -> "Atom":
        return Atom(
            self.predicate,
            [a.substitute(theta) for a in self.args],
            self.annotation,
            self.span,
        )

    def evaluate(self) -> "Atom":
        """Evaluate arithmetic inside arguments (requires groundness)."""
        return Atom(
            self.predicate,
            [a.evaluate() for a in self.args],
            self.annotation,
            self.span,
        )

    def with_annotation(self, trace: Optional[Trace]) -> "Atom":
        """Return this atom re-annotated with ``trace``."""
        return Atom(self.predicate, self.args, trace, self.span)

    def sort_key(self) -> tuple:
        return (
            self.predicate,
            len(self.args),
            tuple(term_sort_key(a) for a in self.args),
            self.annotation or (),
        )

    def __repr__(self) -> str:
        if self.args:
            inner = ", ".join(repr(a) for a in self.args)
            base = f"{self.predicate}({inner})"
        else:
            base = self.predicate
        if self.annotation is None:
            return base
        if len(self.annotation) == 1:
            return f"{base}@{self.annotation[0]}"
        return f"{base}@({', '.join(str(i) for i in self.annotation)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self.predicate == other.predicate
            and self.args == other.args
            and self.annotation == other.annotation
        )

    def __hash__(self) -> int:
        return self._hash


TRUE_ATOM = Atom("true")
"""A conventional always-true atom (used by internal transformations)."""


class Literal:
    """A positive or negation-as-failure literal over an :class:`Atom`."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom: Atom, positive: bool = True):
        self.atom = atom
        self.positive = positive

    def is_ground(self) -> bool:
        return self.atom.is_ground()

    def variables(self) -> Iterator[Variable]:
        return self.atom.variables()

    @property
    def span(self) -> Optional[Span]:
        """The source location of the literal (its atom's span)."""
        return self.atom.span

    def substitute(self, theta: Substitution) -> "Literal":
        return Literal(self.atom.substitute(theta), self.positive)

    def negated(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __repr__(self) -> str:
        return repr(self.atom) if self.positive else f"not {self.atom!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.positive == other.positive
            and self.atom == other.atom
        )

    def __hash__(self) -> int:
        return hash((self.positive, self.atom))


_COMPARATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison:
    """A builtin comparison ``t1 op t2`` evaluated at grounding time.

    Comparison between terms uses the standard ASP total order
    (integers before symbolic constants; see
    :func:`repro.asp.terms.term_sort_key`).
    """

    __slots__ = ("op", "left", "right", "span")

    def __init__(self, op: str, left: Term, right: Term, span: Optional[Span] = None):
        if op == "=":
            op = "=="
        if op not in _COMPARATORS:
            raise ValueError(f"unknown comparison operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self.span = span

    def is_ground(self) -> bool:
        return self.left.is_ground() and self.right.is_ground()

    def variables(self) -> Iterator[Variable]:
        yield from self.left.variables()
        yield from self.right.variables()

    def substitute(self, theta: Substitution) -> "Comparison":
        return Comparison(
            self.op, self.left.substitute(theta), self.right.substitute(theta), self.span
        )

    def holds(self) -> bool:
        """Evaluate the comparison; both sides must be ground."""
        left = self.left.evaluate()
        right = self.right.evaluate()
        if self.op in ("==", "!="):
            return _COMPARATORS[self.op](left, right)
        return _COMPARATORS[self.op](term_sort_key(left), term_sort_key(right))

    def __repr__(self) -> str:
        return f"{self.left!r} {self.op} {self.right!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash((self.op, self.left, self.right))
