"""Answer-set solver for ground programs.

The solver enumerates answer sets of a :class:`~repro.asp.grounder.GroundProgram`
by backtracking search with propagation, then verifies each candidate
against the Gelfond–Lifschitz reduct, so results are exact answer sets —
propagation is an optimization, stability is the ground truth.

Choice rules ``l { a1; ...; ak } u :- body`` are translated into pairs of
normal rules over fresh complement atoms::

    ai      :- body, not __naux_i.
    __naux_i :- body, not ai.

which is the standard encoding of a free choice; cardinality bounds are
enforced as a check on complete candidates.

Propagation implements four sound inferences over partial assignments:

* *forward*: a rule with a fully-true body forces its head true
  (a constraint with a fully-true body is a conflict);
* *head-false*: a rule whose head is false and whose body has exactly one
  unassigned literal (rest true) falsifies that literal;
* *no-support*: an atom all of whose potentially-supporting rules are
  dead (contain a false body literal) must be false;
* *last-support*: a true atom with exactly one alive supporting rule
  forces that rule's body true (supportedness of answer sets).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asp.grounder import GroundProgram, ground_program
from repro.asp.rules import ChoiceRule, NormalRule, Program
from repro.errors import BudgetExceededError
from repro.runtime.budget import Budget, current_budget
from repro.telemetry import span as _tele_span

__all__ = ["AnswerSetSolver", "solve", "AnswerSet", "SolveResult", "SolveStats"]

AnswerSet = FrozenSet[Atom]

_AUX_PREFIX = "__naux"

_TRUE = 1
_FALSE = -1
_UNKNOWN = 0


class SolveStats:
    """Search statistics for one solver run (the ILASP-style per-run
    numbers the paper's tooling reports as first-class output).

    * ``decisions`` — branch assignments tried by the search;
    * ``propagations`` — literal assignments forced by propagation;
    * ``conflicts`` — propagation dead-ends (backtrack triggers);
    * ``stability_checks`` — Gelfond–Lifschitz reduct verifications;
    * ``stability_skips`` — candidate models accepted without a reduct
      check because static analysis proved the ground program stratified
      and tight (see :meth:`AnswerSetSolver.uses_fast_path`);
    * ``models`` — answer sets found;
    * ``steps`` — propagation passes (the unit the PR-1 Budget ticks).
    """

    __slots__ = (
        "decisions",
        "propagations",
        "conflicts",
        "stability_checks",
        "stability_skips",
        "models",
        "steps",
    )

    def __init__(self) -> None:
        self.decisions = 0
        self.propagations = 0
        self.conflicts = 0
        self.stability_checks = 0
        self.stability_skips = 0
        self.models = 0
        self.steps = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SolveStats({inner})"


class SolveResult(List[AnswerSet]):
    """The answer sets of a solve plus its search statistics.

    A list subclass: every existing call site that iterates, indexes, or
    truth-tests the models keeps working, while ``result.stats`` exposes
    the :class:`SolveStats` instead of discarding them.
    """

    def __init__(self, models: Iterable[AnswerSet], stats: Optional[SolveStats] = None):
        super().__init__(models)
        self.stats = stats if stats is not None else SolveStats()


class _Rule:
    """Internal ground normal rule over atom ids."""

    __slots__ = ("head", "body", "index")

    def __init__(self, head: Optional[int], body: Tuple[Tuple[int, bool], ...], index: int):
        self.head = head
        self.body = body  # (atom_id, positive)
        self.index = index


class AnswerSetSolver:
    """Enumerate the answer sets of a ground program.

    Resource governance: ``max_steps`` (default 50 million propagation
    passes — effectively "never" for the policy-layer programs, a
    runaway guard for adversarial ones) bounds the internal step count;
    exhausting it raises :class:`~repro.errors.BudgetExceededError`
    carrying ``steps_used``.  An explicit ``budget`` (or, when omitted,
    the ambient :func:`~repro.runtime.budget.current_budget`) is ticked
    once per propagation pass, so wall-clock deadlines and shared step
    budgets interrupt the solver mid-solve.

    Stability fast path: every complete candidate reaching verification
    is a *supported* model (no-support propagation runs to fixpoint
    before the branch selector can report "all assigned").  When the
    ground program's atom dependency graph is stratified **and** tight
    (positive subgraph acyclic), supported models coincide with stable
    models (Fages' theorem), so the Gelfond–Lifschitz reduct check is
    provably redundant and is skipped — counted in
    ``stats.stability_skips`` instead of ``stats.stability_checks``.
    Tightness is essential: a merely stratified positive loop such as
    ``p :- q. q :- p.`` has the supported model ``{p, q}`` that is not
    stable.  ``use_fast_path=False`` disables the optimization (every
    candidate takes the reduct check, as before this analysis existed).
    """

    def __init__(
        self,
        ground: GroundProgram,
        max_steps: int = 50_000_000,
        budget: Optional[Budget] = None,
        use_fast_path: bool = True,
    ):
        self._max_steps = max_steps
        self._steps = 0
        self._budget = budget if budget is not None else current_budget()
        self._use_fast_path = use_fast_path
        self._fast_path: Optional[bool] = None  # decided lazily on first verify
        self.stats = SolveStats()

        self._atoms: List[Atom] = []
        self._ids: Dict[Atom, int] = {}
        self._rules: List[_Rule] = []
        # choice bounds: (body ids, element ids, lower, upper)
        self._bounds: List[Tuple[Tuple[Tuple[int, bool], ...], Tuple[int, ...], Optional[int], Optional[int]]] = []

        self._visible: List[bool] = []
        self._build(ground)

        n = len(self._atoms)
        self._supports: List[List[int]] = [[] for _ in range(n)]
        self._occurrences: List[List[int]] = [[] for _ in range(n)]
        for rule in self._rules:
            if rule.head is not None:
                self._supports[rule.head].append(rule.index)
            for atom_id, __ in rule.body:
                self._occurrences[atom_id].append(rule.index)
            if rule.head is not None:
                self._occurrences[rule.head].append(rule.index)

    # -- construction ------------------------------------------------------

    def _atom_id(self, atom: Atom) -> int:
        existing = self._ids.get(atom)
        if existing is not None:
            return existing
        new_id = len(self._atoms)
        self._ids[atom] = new_id
        self._atoms.append(atom)
        self._visible.append(not atom.predicate.startswith(_AUX_PREFIX))
        return new_id

    def _build(self, ground: GroundProgram) -> None:
        def body_ids(body: Iterable[Literal]) -> Tuple[Tuple[int, bool], ...]:
            return tuple((self._atom_id(lit.atom), lit.positive) for lit in body)

        for rule in ground.normal_rules:
            head = self._atom_id(rule.head) if rule.head is not None else None
            self._rules.append(_Rule(head, body_ids(rule.body), len(self._rules)))

        for counter, choice in enumerate(ground.choice_rules):
            cbody = body_ids(choice.body)
            element_ids: List[int] = []
            for j, atom in enumerate(choice.elements):
                elem_id = self._atom_id(atom)
                aux_atom = Atom(f"{_AUX_PREFIX}_{counter}_{j}")
                aux_id = self._atom_id(aux_atom)
                element_ids.append(elem_id)
                self._rules.append(
                    _Rule(elem_id, cbody + ((aux_id, False),), len(self._rules))
                )
                self._rules.append(
                    _Rule(aux_id, cbody + ((elem_id, False),), len(self._rules))
                )
            if choice.lower is not None or choice.upper is not None:
                self._bounds.append((cbody, tuple(element_ids), choice.lower, choice.upper))

    # -- solving -------------------------------------------------------------

    @property
    def steps_used(self) -> int:
        """Propagation passes consumed so far (for post-mortem telemetry)."""
        return self._steps

    def solve(self, max_models: Optional[int] = None) -> "SolveResult":
        """Return up to ``max_models`` answer sets (all if ``None``).

        Atoms of internal auxiliary predicates are projected out.  The
        result is a :class:`SolveResult`: a plain list of answer sets
        carrying the run's :class:`SolveStats`, which are also recorded
        on the ambient telemetry span (``asp.solve``) when one exists.
        """
        with _tele_span(
            "asp.solve", atoms=len(self._atoms), rules=len(self._rules)
        ) as sp:
            models: List[AnswerSet] = []
            n = len(self._atoms)
            assignment = [_UNKNOWN] * n
            trail: List[int] = []
            before = self.stats.as_dict()

            try:
                for model in self._search(assignment, trail):
                    models.append(model)
                    if max_models is not None and len(models) >= max_models:
                        break
            finally:
                stats = self.stats
                stats.models += len(models)
                stats.steps = self._steps
                # deltas, so re-solving on one instance never double-counts
                for name, start in before.items():
                    sp.incr(f"solver.{name}", getattr(stats, name) - start)
            return SolveResult(models, stats)

    def is_satisfiable(self) -> bool:
        return bool(self.solve(max_models=1))

    # The search is written iteratively-recursively: _search yields models.

    def _search(self, assignment: List[int], trail: List[int]) -> Iterator[AnswerSet]:
        if not self._propagate(assignment, trail):
            return
        unassigned = self._pick_branch(assignment)
        if unassigned is None:
            if self._verify(assignment):
                yield self._extract(assignment)
            return
        for value in (_FALSE, _TRUE):
            mark = len(trail)
            self.stats.decisions += 1
            self._assign(unassigned, value, assignment, trail)
            yield from self._search(assignment, trail)
            self._undo(mark, assignment, trail)

    def _assign(self, atom_id: int, value: int, assignment: List[int], trail: List[int]) -> None:
        assignment[atom_id] = value
        trail.append(atom_id)

    def _undo(self, mark: int, assignment: List[int], trail: List[int]) -> None:
        while len(trail) > mark:
            assignment[trail.pop()] = _UNKNOWN

    def _pick_branch(self, assignment: List[int]) -> Optional[int]:
        best = None
        best_score = -1
        for atom_id, value in enumerate(assignment):
            if value == _UNKNOWN:
                score = len(self._occurrences[atom_id])
                if score > best_score:
                    best = atom_id
                    best_score = score
        return best

    # -- propagation ---------------------------------------------------------

    def _literal_value(self, atom_id: int, positive: bool, assignment: List[int]) -> int:
        value = assignment[atom_id]
        if value == _UNKNOWN:
            return _UNKNOWN
        truth = value == _TRUE
        return _TRUE if truth == positive else _FALSE

    def _propagate(self, assignment: List[int], trail: List[int]) -> bool:
        """Run propagation to fixpoint; return False on conflict."""
        changed = True
        while changed:
            self._steps += 1
            if self._steps > self._max_steps:
                raise BudgetExceededError(
                    "solver step limit exceeded",
                    steps_used=self._steps,
                    max_steps=self._max_steps,
                )
            if self._budget is not None:
                self._budget.tick()
            changed = False
            # rule-based propagation
            for rule in self._rules:
                n_unknown = 0
                n_false = 0
                last_unknown: Optional[Tuple[int, bool]] = None
                for atom_id, positive in rule.body:
                    value = self._literal_value(atom_id, positive, assignment)
                    if value == _UNKNOWN:
                        n_unknown += 1
                        last_unknown = (atom_id, positive)
                    elif value == _FALSE:
                        n_false += 1
                        break
                if n_false:
                    continue
                head_value = (
                    assignment[rule.head] if rule.head is not None else _FALSE
                )
                if n_unknown == 0:
                    # body fully true
                    if rule.head is None:
                        self.stats.conflicts += 1
                        return False  # constraint violated
                    if head_value == _FALSE:
                        self.stats.conflicts += 1
                        return False
                    if head_value == _UNKNOWN:
                        self._assign(rule.head, _TRUE, assignment, trail)
                        self.stats.propagations += 1
                        changed = True
                elif n_unknown == 1 and last_unknown is not None:
                    must_falsify = rule.head is None or head_value == _FALSE
                    if must_falsify:
                        atom_id, positive = last_unknown
                        value = _FALSE if positive else _TRUE
                        self._assign(atom_id, value, assignment, trail)
                        self.stats.propagations += 1
                        changed = True
            # support-based propagation
            for atom_id in range(len(self._atoms)):
                value = assignment[atom_id]
                if value == _FALSE:
                    continue
                alive: List[_Rule] = []
                for rule_index in self._supports[atom_id]:
                    rule = self._rules[rule_index]
                    dead = False
                    for body_atom, positive in rule.body:
                        if self._literal_value(body_atom, positive, assignment) == _FALSE:
                            dead = True
                            break
                    if not dead:
                        alive.append(rule)
                if not alive:
                    if value == _TRUE:
                        self.stats.conflicts += 1
                        return False
                    self._assign(atom_id, _FALSE, assignment, trail)
                    self.stats.propagations += 1
                    changed = True
                elif value == _TRUE and len(alive) == 1:
                    # supportedness: the single alive rule's body must be true
                    for body_atom, positive in alive[0].body:
                        lit_value = self._literal_value(body_atom, positive, assignment)
                        if lit_value == _UNKNOWN:
                            self._assign(
                                body_atom,
                                _TRUE if positive else _FALSE,
                                assignment,
                                trail,
                            )
                            self.stats.propagations += 1
                            changed = True
        return True

    # -- verification ----------------------------------------------------------

    def uses_fast_path(self) -> bool:
        """Whether stability checks are skipped for this ground program.

        Decided once, lazily, from the ground-atom dependency graph:
        edges run from each rule head to its body atoms (constraints
        contribute none; choice-rule encodings introduce negative
        2-cycles through their auxiliary atoms and therefore disable the
        fast path automatically).  True iff the program is stratified
        and tight and ``use_fast_path`` was not turned off.
        """
        if self._fast_path is None:
            if not self._use_fast_path:
                self._fast_path = False
            else:
                # Local import: repro.analysis imports repro.asp, so a
                # module-level import here would cycle during package init.
                from repro.analysis.graphs import check_stratification

                positive: List[Tuple[int, int]] = []
                negative: List[Tuple[int, int]] = []
                for rule in self._rules:
                    if rule.head is None:
                        continue
                    for atom_id, is_positive in rule.body:
                        edge = (rule.head, atom_id)
                        (positive if is_positive else negative).append(edge)
                verdict = check_stratification(
                    range(len(self._atoms)), positive, negative
                )
                self._fast_path = verdict.stratified and verdict.tight
        return self._fast_path

    def _verify(self, assignment: List[int]) -> bool:
        """Check a complete assignment: rules, choice bounds, stability."""
        for rule in self._rules:
            body_true = all(
                self._literal_value(a, p, assignment) == _TRUE for a, p in rule.body
            )
            if body_true:
                if rule.head is None or assignment[rule.head] != _TRUE:
                    return False
        for body, elements, lower, upper in self._bounds:
            body_true = all(
                self._literal_value(a, p, assignment) == _TRUE for a, p in body
            )
            if not body_true:
                continue
            count = sum(1 for e in elements if assignment[e] == _TRUE)
            if lower is not None and count < lower:
                return False
            if upper is not None and count > upper:
                return False
        if self.uses_fast_path():
            self.stats.stability_skips += 1
            return True
        return self._stable(assignment)

    def _stable(self, assignment: List[int]) -> bool:
        """Gelfond–Lifschitz check: least model of the reduct == candidate."""
        self.stats.stability_checks += 1
        candidate = {i for i, v in enumerate(assignment) if v == _TRUE}
        # Build the reduct: keep rules whose negative body is satisfied.
        reduct: List[Tuple[Optional[int], Tuple[int, ...]]] = []
        for rule in self._rules:
            keep = True
            positive: List[int] = []
            for atom_id, pos in rule.body:
                if pos:
                    positive.append(atom_id)
                elif atom_id in candidate:
                    keep = False
                    break
            if keep and rule.head is not None:
                reduct.append((rule.head, tuple(positive)))
        # Least model by forward chaining.
        least: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for head, body in reduct:
                if head not in least and all(b in least for b in body):
                    least.add(head)
                    changed = True
        return least == candidate

    def _extract(self, assignment: List[int]) -> AnswerSet:
        return frozenset(
            self._atoms[i]
            for i, value in enumerate(assignment)
            if value == _TRUE and self._visible[i]
        )


def solve(
    program: Program,
    max_models: Optional[int] = None,
    max_steps: int = 50_000_000,
    budget: Optional[Budget] = None,
    use_fast_path: bool = True,
) -> SolveResult:
    """Ground and solve ``program``; return its answer sets.

    ``budget`` (explicit or ambient) governs both phases: grounding and
    solving tick the same budget.  The returned :class:`SolveResult`
    behaves as a plain list of answer sets and additionally carries the
    run's :class:`SolveStats`.  ``use_fast_path=False`` forces a
    Gelfond–Lifschitz check on every candidate even when static analysis
    proves it redundant (useful for differential testing).
    """
    ground = ground_program(program, budget=budget)
    return AnswerSetSolver(
        ground, max_steps=max_steps, budget=budget, use_fast_path=use_fast_path
    ).solve(max_models=max_models)


CostVector = Tuple[Tuple[int, int], ...]
"""((priority, total weight), ...) sorted by descending priority."""


def cost_of(ground: GroundProgram, model: AnswerSet) -> CostVector:
    """The weak-constraint cost of an answer set (clingo semantics).

    Each ground weak constraint whose body holds in ``model``
    contributes its weight at its priority level; vectors compare
    lexicographically by descending priority.
    """
    priorities = sorted(
        {w.priority for w in ground.weak_constraints}, reverse=True
    )
    totals = {priority: 0 for priority in priorities}
    atoms = set(model)
    for weak in ground.weak_constraints:
        holds = True
        for literal in weak.body:
            if isinstance(literal, Literal):
                if (literal.atom in atoms) != literal.positive:
                    holds = False
                    break
        if holds:
            totals[weak.priority] += getattr(weak.weight, "value", 0)
    return tuple((priority, totals[priority]) for priority in priorities)


def solve_optimal(
    program: Program,
    max_steps: int = 50_000_000,
    max_candidates: int = 100_000,
    budget: Optional[Budget] = None,
) -> Tuple[List[AnswerSet], CostVector]:
    """All cost-optimal answer sets of a program with weak constraints.

    Enumerates answer sets (up to ``max_candidates``), scores each with
    :func:`cost_of`, and returns the minimum-cost ones together with
    the optimal cost vector.  Without weak constraints every answer set
    is optimal at the empty cost.
    """
    ground = ground_program(program, budget=budget)
    solver = AnswerSetSolver(ground, max_steps=max_steps, budget=budget)
    models = solver.solve(max_models=max_candidates)
    if not models:
        return SolveResult([], solver.stats), ()
    scored = [(cost_of(ground, model), model) for model in models]
    best = min(cost for cost, __ in scored)
    optimal = [model for cost, model in scored if cost == best]
    return SolveResult(optimal, solver.stats), best
