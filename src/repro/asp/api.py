"""Convenience entry points for the ASP engine.

These wrap parse → ground → solve into one-liners used throughout the
higher layers::

    >>> from repro.asp import solve_text
    >>> models = solve_text("a :- not b. b :- not a.")
    >>> sorted(sorted(str(x) for x in m) for m in models)
    [['a'], ['b']]

All entry points take an optional :class:`~repro.runtime.budget.Budget`
that bounds grounding + solving (they also honour the ambient budget
installed by :func:`~repro.runtime.budget.budget_scope`), raising
:class:`~repro.errors.BudgetExceededError` /
:class:`~repro.errors.SolveTimeoutError` when exhausted.
"""

from __future__ import annotations

from typing import List, Optional

from repro.asp.parser import parse_program
from repro.asp.rules import Program
from repro.asp.solver import AnswerSet, solve
from repro.runtime.budget import Budget

__all__ = ["solve_text", "is_satisfiable_text", "solve_program", "is_satisfiable"]


def solve_text(
    text: str,
    max_models: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> List[AnswerSet]:
    """Parse, ground, and solve ASP source text."""
    return solve(parse_program(text), max_models=max_models, budget=budget)


def is_satisfiable_text(text: str, budget: Optional[Budget] = None) -> bool:
    """True iff the program given as source text has at least one answer set."""
    return bool(solve_text(text, max_models=1, budget=budget))


def solve_program(
    program: Program,
    max_models: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> List[AnswerSet]:
    """Ground and solve an in-memory :class:`Program`."""
    return solve(program, max_models=max_models, budget=budget)


def is_satisfiable(program: Program, budget: Optional[Budget] = None) -> bool:
    """True iff ``program`` has at least one answer set."""
    return bool(solve(program, max_models=1, budget=budget))
