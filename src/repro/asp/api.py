"""Convenience entry points for the ASP engine.

These wrap parse → ground → solve into one-liners used throughout the
higher layers::

    >>> from repro.asp import solve_text
    >>> models = solve_text("a :- not b. b :- not a.")
    >>> sorted(sorted(str(x) for x in m) for m in models)
    [['a'], ['b']]

All entry points return a :class:`~repro.asp.solver.SolveResult` — a
``list`` of answer sets that also carries the run's
:class:`~repro.asp.solver.SolveStats` (``result.stats``), so existing
list-consuming callers keep working while telemetry-aware ones read the
counters.  They accept the full solver knob set (``max_models``,
``max_steps``, ``use_fast_path``) and an optional
:class:`~repro.runtime.budget.Budget` that bounds grounding + solving
(the ambient budget installed by
:func:`~repro.runtime.budget.budget_scope` is honoured too), raising
:class:`~repro.errors.BudgetExceededError` /
:class:`~repro.errors.SolveTimeoutError` when exhausted.
"""

from __future__ import annotations

from typing import Optional

from repro.asp.parser import parse_program
from repro.asp.rules import Program
from repro.asp.solver import SolveResult, solve

from repro.runtime.budget import Budget

__all__ = ["solve_text", "is_satisfiable_text", "solve_program", "is_satisfiable"]

_DEFAULT_MAX_STEPS = 50_000_000


def solve_text(
    text: str,
    max_models: Optional[int] = None,
    budget: Optional[Budget] = None,
    max_steps: int = _DEFAULT_MAX_STEPS,
    use_fast_path: bool = True,
) -> SolveResult:
    """Parse, ground, and solve ASP source text."""
    return solve(
        parse_program(text),
        max_models=max_models,
        budget=budget,
        max_steps=max_steps,
        use_fast_path=use_fast_path,
    )


def is_satisfiable_text(
    text: str,
    budget: Optional[Budget] = None,
    use_fast_path: bool = True,
) -> bool:
    """True iff the program given as source text has at least one answer set."""
    return bool(
        solve_text(text, max_models=1, budget=budget, use_fast_path=use_fast_path)
    )


def solve_program(
    program: Program,
    max_models: Optional[int] = None,
    budget: Optional[Budget] = None,
    max_steps: int = _DEFAULT_MAX_STEPS,
    use_fast_path: bool = True,
) -> SolveResult:
    """Ground and solve an in-memory :class:`Program`."""
    return solve(
        program,
        max_models=max_models,
        budget=budget,
        max_steps=max_steps,
        use_fast_path=use_fast_path,
    )


def is_satisfiable(
    program: Program,
    budget: Optional[Budget] = None,
    use_fast_path: bool = True,
) -> bool:
    """True iff ``program`` has at least one answer set."""
    return bool(
        solve(program, max_models=1, budget=budget, use_fast_path=use_fast_path)
    )
