"""Bernoulli naive Bayes with Laplace smoothing."""

from __future__ import annotations

import numpy as np

__all__ = ["BernoulliNaiveBayes"]


class BernoulliNaiveBayes:
    """Binary classifier over binary features.

    ``alpha`` is the Laplace smoothing strength; priors come from class
    frequencies (with smoothing, so single-class training sets work).
    """

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self._log_prior = None
        self._log_prob = None  # shape (2, n_features): log P(x=1 | class)
        self._log_neg_prob = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BernoulliNaiveBayes":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n, d = X.shape
        counts = np.array([np.sum(y == 0), np.sum(y == 1)], dtype=np.float64)
        self._log_prior = np.log((counts + self.alpha) / (n + 2 * self.alpha))
        prob = np.zeros((2, d))
        for label in (0, 1):
            rows = X[y == label]
            ones = rows.sum(axis=0) if rows.size else np.zeros(d)
            prob[label] = (ones + self.alpha) / (counts[label] + 2 * self.alpha)
        self._log_prob = np.log(prob)
        self._log_neg_prob = np.log(1.0 - prob)
        return self

    def predict_log_proba(self, X: np.ndarray) -> np.ndarray:
        if self._log_prior is None:
            raise RuntimeError("classifier not fitted")
        X = np.asarray(X, dtype=np.float64)
        scores = (
            X @ self._log_prob.T
            + (1.0 - X) @ self._log_neg_prob.T
            + self._log_prior
        )
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_log_proba(X), axis=1)
