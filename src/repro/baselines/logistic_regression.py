"""L2-regularized logistic regression trained by full-batch gradient descent."""

from __future__ import annotations

import numpy as np

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """Binary classifier with bias term and L2 penalty.

    Full-batch gradient descent is plenty for the policy-sized datasets
    in the benchmarks (hundreds of rows, tens of one-hot columns).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        l2: float = 1e-3,
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        self.learning_rate = learning_rate
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.weights = None
        self.bias = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n, d = X.shape
        self.weights = np.zeros(d)
        self.bias = 0.0
        for __ in range(self.max_iter):
            p = _sigmoid(X @ self.weights + self.bias)
            error = p - y
            grad_w = X.T @ error / n + self.l2 * self.weights
            grad_b = error.mean()
            self.weights -= self.learning_rate * grad_w
            self.bias -= self.learning_rate * grad_b
            if np.abs(grad_w).max(initial=0.0) < self.tol and abs(grad_b) < self.tol:
                break
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("classifier not fitted")
        return _sigmoid(np.asarray(X, dtype=np.float64) @ self.weights + self.bias)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
