"""Shallow-ML baselines for the Section IV.A comparison.

The paper reports that the ASG-based GPM "outperforms shallow Machine
Learning techniques when learning complex policy models, as fewer
examples are required to achieve a greater accuracy".  These four
classifiers — decision tree, Bernoulli naive Bayes, logistic regression
and k-NN, all on numpy — are the comparators in experiment E5.
"""

from repro.baselines.decision_tree import DecisionTreeClassifier
from repro.baselines.features import OneHotEncoder
from repro.baselines.knn import KNNClassifier
from repro.baselines.logistic_regression import LogisticRegression
from repro.baselines.naive_bayes import BernoulliNaiveBayes

__all__ = [
    "OneHotEncoder",
    "DecisionTreeClassifier",
    "BernoulliNaiveBayes",
    "LogisticRegression",
    "KNNClassifier",
]
