"""Featurization of categorical policy examples for the shallow-ML baselines.

The Section IV.A comparison pits the symbolic learner against "shallow
Machine Learning techniques" on the same examples.  Examples in the
symbolic world are (attribute dict, label); this module one-hot encodes
the attribute dicts into numpy matrices so the baselines can train on
identical data.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple, Union

import numpy as np

__all__ = ["OneHotEncoder"]

Value = Union[str, int, bool]
Example = Mapping[str, Value]


class OneHotEncoder:
    """One-hot encoding with a fixed vocabulary learned from data.

    Unknown (feature, value) pairs at transform time map to all-zeros
    for that feature — the standard "ignore" strategy.
    """

    def __init__(self) -> None:
        self._columns: List[Tuple[str, Value]] = []
        self._index: Dict[Tuple[str, Value], int] = {}
        self.fitted = False

    def fit(self, examples: Sequence[Example]) -> "OneHotEncoder":
        seen = {}
        for example in examples:
            for feature, value in example.items():
                key = (feature, value)
                if key not in seen:
                    seen[key] = None
        self._columns = sorted(seen.keys(), key=repr)
        self._index = {key: i for i, key in enumerate(self._columns)}
        self.fitted = True
        return self

    @property
    def n_features(self) -> int:
        return len(self._columns)

    def transform(self, examples: Sequence[Example]) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("encoder not fitted")
        matrix = np.zeros((len(examples), len(self._columns)), dtype=np.float64)
        for row, example in enumerate(examples):
            for feature, value in example.items():
                col = self._index.get((feature, value))
                if col is not None:
                    matrix[row, col] = 1.0
        return matrix

    def fit_transform(self, examples: Sequence[Example]) -> np.ndarray:
        return self.fit(examples).transform(examples)

    def feature_names(self) -> List[str]:
        return [f"{feature}={value!r}" for feature, value in self._columns]
