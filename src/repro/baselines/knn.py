"""k-nearest-neighbours over Hamming distance on one-hot features."""

from __future__ import annotations

import numpy as np

__all__ = ["KNNClassifier"]


class KNNClassifier:
    """Majority vote among the ``k`` nearest training rows.

    Distance is Hamming (equivalently squared Euclidean on 0/1 data);
    ties in the vote break toward 0 (deny-by-default).
    """

    def __init__(self, k: int = 3):
        self.k = k
        self._X = None
        self._y = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        self._X = np.asarray(X, dtype=np.float64)
        self._y = np.asarray(y, dtype=np.int64)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("classifier not fitted")
        X = np.asarray(X, dtype=np.float64)
        k = min(self.k, self._X.shape[0])
        out = np.zeros(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            distances = np.abs(self._X - row).sum(axis=1)
            nearest = np.argpartition(distances, k - 1)[:k]
            out[i] = int(self._y[nearest].mean() > 0.5)
        return out
