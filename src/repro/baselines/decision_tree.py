"""A CART-style decision tree classifier (binary features, Gini split)."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["DecisionTreeClassifier"]


class _Node:
    __slots__ = ("feature", "left", "right", "prediction")

    def __init__(self, feature=None, left=None, right=None, prediction=None):
        self.feature = feature
        self.left = left
        self.right = right
        self.prediction = prediction


def _gini(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    p = labels.mean()
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary classifier over one-hot features.

    ``max_depth`` and ``min_samples_split`` are the usual regularizers;
    with the defaults the tree grows until purity.
    """

    def __init__(self, max_depth: int = 12, min_samples_split: int = 2):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self._root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._root = self._build(X, y, depth=0)
        return self

    def _majority(self, y: np.ndarray) -> int:
        # ties break toward 0 (deny-by-default, the safe decision)
        return int(y.mean() > 0.5)

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (
            depth >= self.max_depth
            or y.size < self.min_samples_split
            or np.all(y == y[0])
        ):
            return _Node(prediction=self._majority(y))
        parent_gini = _gini(y)
        best_feature = None
        best_score = parent_gini
        for feature in range(X.shape[1]):
            mask = X[:, feature] > 0.5
            left, right = y[mask], y[~mask]
            if left.size == 0 or right.size == 0:
                continue
            score = (left.size * _gini(left) + right.size * _gini(right)) / y.size
            if score < best_score - 1e-12:
                best_score = score
                best_feature = feature
        if best_feature is None:
            return _Node(prediction=self._majority(y))
        mask = X[:, best_feature] > 0.5
        return _Node(
            feature=best_feature,
            left=self._build(X[mask], y[mask], depth + 1),
            right=self._build(X[~mask], y[~mask], depth + 1),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("classifier not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros(X.shape[0], dtype=np.int64)
        for i, row in enumerate(X):
            node = self._root
            while node.prediction is None:
                node = node.left if row[node.feature] > 0.5 else node.right
            out[i] = node.prediction
        return out

    def depth(self) -> int:
        def walk(node):
            if node is None or node.prediction is not None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
