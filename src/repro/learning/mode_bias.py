"""Hypothesis-space generation from mode declarations.

ILASP-style learners do not search arbitrary programs: a *mode bias*
declares which atoms may appear in rule heads (``modeh``) and bodies
(``modeb``), plus constant pools per type; the hypothesis space ``S_M``
is the set of rules constructible within those declarations (paper
Section II.B: "a hypothesis space which represents the set of learnable
rules").

This module generates explicit, finite hypothesis spaces:

* schema atoms may contain :class:`Placeholder` arguments, expanded from
  per-type constant pools;
* bodies are combinations of instantiated ``modeb`` atoms, optionally
  negated, up to ``max_body`` literals;
* heads are instantiated ``modeh`` atoms, or absent (constraints);
* every candidate carries the production ids it may attach to (for ASG
  tasks) and a cost (its literal count), matching Definition 3's
  ``(rule, production id)`` hypothesis elements.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asp.rules import NormalRule, Rule
from repro.asp.terms import Constant, Integer, Term, Variable
from repro.errors import LearningError

__all__ = [
    "Placeholder",
    "ModeAtom",
    "ModeBias",
    "CandidateRule",
    "constraint_space",
]


class Placeholder(Term):
    """A typed constant placeholder inside a schema atom.

    During space generation each placeholder is replaced by every
    constant in its type's pool.
    """

    __slots__ = ("type_name",)

    def __init__(self, type_name: str):
        self.type_name = type_name

    def is_ground(self) -> bool:  # placeholders are neither ground nor variables
        return False

    def variables(self):
        return iter(())

    def substitute(self, theta):
        return self

    def __repr__(self) -> str:
        return f"#{self.type_name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Placeholder) and self.type_name == other.type_name

    def __hash__(self) -> int:
        return hash(("ph", self.type_name))


class ModeAtom:
    """A schema atom for ``modeh``/``modeb`` declarations.

    ``annotations`` lists the child annotations (1-indexed rhs positions)
    the atom may carry in an ASG annotation rule; ``(None,)`` means
    unannotated.  For plain (non-grammar) learning leave the default.
    """

    def __init__(
        self,
        atom: Atom,
        annotations: Sequence[Optional[int]] = (None,),
    ):
        self.atom = atom
        self.annotations: Tuple[Optional[int], ...] = tuple(annotations)

    def instantiate(self, pools: Dict[str, Sequence[Term]]) -> List[Atom]:
        """Expand placeholders from constant pools and annotation options."""
        slots: List[List[Term]] = []
        for arg in self.atom.args:
            if isinstance(arg, Placeholder):
                pool = pools.get(arg.type_name)
                if not pool:
                    raise LearningError(
                        f"no constant pool for type {arg.type_name!r}"
                    )
                slots.append(list(pool))
            else:
                slots.append([arg])
        out: List[Atom] = []
        for combo in itertools.product(*slots) if slots else [()]:
            for annotation in self.annotations:
                trace = None if annotation is None else (annotation,)
                out.append(Atom(self.atom.predicate, combo, trace))
        return out

    def __repr__(self) -> str:
        return f"ModeAtom({self.atom!r}, annotations={self.annotations})"


class CandidateRule:
    """A hypothesis-space element: a rule, where it may attach, and its cost."""

    __slots__ = ("rule", "prod_id", "cost")

    def __init__(self, rule: Rule, prod_id: Optional[int] = None, cost: Optional[int] = None):
        self.rule = rule
        self.prod_id = prod_id
        if cost is None:
            cost = len(rule.body) + (0 if getattr(rule, "head", None) is None else 1)
            cost = max(cost, 1)
        self.cost = cost

    def key(self) -> tuple:
        return (repr(self.rule), self.prod_id)

    def __repr__(self) -> str:
        target = f" @prod{self.prod_id}" if self.prod_id is not None else ""
        return f"<{self.rule!r}{target} cost={self.cost}>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CandidateRule) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class ModeBias:
    """A full mode bias: head/body schema atoms, pools, and size limits."""

    def __init__(
        self,
        head_modes: Sequence[ModeAtom] = (),
        body_modes: Sequence[ModeAtom] = (),
        pools: Optional[Dict[str, Sequence[Term]]] = None,
        max_body: int = 2,
        allow_constraints: bool = True,
        allow_negation: bool = True,
        allow_empty_body: bool = False,
        max_space: int = 200_000,
    ):
        self.head_modes = list(head_modes)
        self.body_modes = list(body_modes)
        self.pools = dict(pools or {})
        self.max_body = max_body
        self.allow_constraints = allow_constraints
        self.allow_negation = allow_negation
        self.allow_empty_body = allow_empty_body
        self.max_space = max_space

    def _body_literals(self) -> List[Literal]:
        literals: List[Literal] = []
        for mode in self.body_modes:
            for atom in mode.instantiate(self.pools):
                literals.append(Literal(atom, True))
                if self.allow_negation:
                    literals.append(Literal(atom, False))
        return literals

    def _heads(self) -> List[Optional[Atom]]:
        heads: List[Optional[Atom]] = []
        if self.allow_constraints:
            heads.append(None)
        for mode in self.head_modes:
            heads.extend(mode.instantiate(self.pools))
        return heads

    def generate(
        self, prod_ids: Sequence[Optional[int]] = (None,)
    ) -> List[CandidateRule]:
        """Enumerate the hypothesis space ``S_M``.

        ``prod_ids`` lists the productions each rule may attach to
        (ASG tasks); the default single ``None`` suits plain ASP tasks.
        """
        literals = self._body_literals()
        heads = self._heads()
        candidates: List[CandidateRule] = []
        min_body = 0 if self.allow_empty_body else 1
        for size in range(min_body, self.max_body + 1):
            for body in itertools.combinations(literals, size):
                atoms_in_body = {lit.atom for lit in body}
                if len(atoms_in_body) < len(body):
                    continue  # p and not p in one body
                for head in heads:
                    if head is None and size == 0:
                        continue  # the empty constraint kills everything
                    if head is not None and Literal(head, True) in body:
                        continue  # tautology h :- h
                    rule = NormalRule(head, list(body))
                    if not _is_safe(rule):
                        continue
                    for prod_id in prod_ids:
                        candidates.append(CandidateRule(rule, prod_id))
                        if len(candidates) > self.max_space:
                            raise LearningError(
                                f"hypothesis space exceeds {self.max_space} rules; "
                                "tighten the mode bias"
                            )
        return candidates


def _is_safe(rule: NormalRule) -> bool:
    positive_vars = set()
    for lit in rule.body:
        if lit.positive:
            positive_vars.update(v.name for v in lit.variables())
    needed = set()
    if rule.head is not None:
        needed.update(v.name for v in rule.head.variables())
    for lit in rule.body:
        if not lit.positive:
            needed.update(v.name for v in lit.variables())
    return needed <= positive_vars


def constraint_space(
    literal_pool: Iterable[Literal],
    prod_ids: Sequence[Optional[int]] = (None,),
    max_body: int = 2,
    max_space: int = 200_000,
) -> List[CandidateRule]:
    """Shortcut: the space of constraints ``:- l1, ..., lk`` over a pool.

    This is the most common ASG hypothesis space in the paper's setting:
    semantic conditions that *forbid* syntactically valid policies in
    certain contexts are exactly integrity constraints.
    """
    pool = list(literal_pool)
    candidates: List[CandidateRule] = []
    for size in range(1, max_body + 1):
        for body in itertools.combinations(pool, size):
            atoms = {lit.atom for lit in body}
            if len(atoms) < len(body):
                continue
            rule = NormalRule(None, list(body))
            if not _is_safe(rule):
                continue
            for prod_id in prod_ids:
                candidates.append(CandidateRule(rule, prod_id))
                if len(candidates) > max_space:
                    raise LearningError(
                        f"hypothesis space exceeds {max_space} rules"
                    )
    return candidates
