"""A fast learner for *decomposable* tasks.

Many of the paper's learning tasks have hypothesis spaces whose rules do
not interact:

* **definite-rule spaces** (e.g. ``decision(permit) :- role(dba).`` over
  a deny-by-default background): a hypothesis covers a permit example
  iff *some* selected rule fires, and violates a deny example iff some
  selected rule fires on it;
* **constraint spaces over unambiguous grammars with definite
  annotations**: a hypothesis rejects a negative example iff *some*
  selected constraint kills its (unique) answer set, and breaks a
  positive iff some selected constraint does.

For such tasks coverage decomposes over single candidates, so learning
reduces to weighted set cover: pre-compute per-candidate coverage
vectors with single-rule oracle calls (linear in the space), then
branch-and-bound for the minimum-cost selection.  Because
decomposability is an *assumption*, the result is always re-verified
with the full oracle; on mismatch the caller should fall back to
:class:`~repro.learning.ilasp.ILASPLearner` (see :func:`learn_auto`).
"""

from __future__ import annotations

import contextlib
import time
from typing import List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.mode_lint import lint_task
from repro.errors import LearningError, ResourceError, UnsatisfiableTaskError
from repro.learning.ilasp import ILASPLearner, LearnedHypothesis
from repro.learning.mode_bias import CandidateRule
from repro.runtime.budget import Budget, budget_scope
from repro.telemetry import span as _tele_span

__all__ = ["DecomposableLearner", "learn_auto"]


class _ExampleModel:
    """How one example constrains candidate selection.

    ``needs_one`` examples are satisfied when at least one selected
    candidate has its (good) flag set (or ``already`` — satisfied by the
    empty hypothesis) *and* no selected candidate has its ``bad_flags``
    bit set (a candidate may derive a decision the example excludes,
    breaking it regardless of coverage).  ``needs_none`` examples are
    satisfied when no selected candidate has its flag set (and
    ``already`` must hold for the empty hypothesis).
    """

    __slots__ = ("kind", "flags", "bad_flags", "already", "weight")

    def __init__(
        self,
        kind: str,
        flags: List[bool],
        already: bool,
        weight: int,
        bad_flags: Optional[List[bool]] = None,
    ):
        self.kind = kind
        self.flags = flags
        self.bad_flags = bad_flags
        self.already = already
        self.weight = weight

    def broken_by(self, index: int) -> bool:
        return self.bad_flags is not None and self.bad_flags[index]


class DecomposableLearner:
    """Set-cover learning with final full-oracle verification."""

    def __init__(
        self,
        task,
        max_rules: int = 6,
        max_violations: int = 0,
        max_nodes: int = 200_000,
        budget: Optional[Budget] = None,
    ):
        self.task = task
        self.max_rules = max_rules
        self.max_violations = max_violations
        self.max_nodes = max_nodes
        self.budget = budget
        self._constraints_only = task.constraints_only()
        # static task diagnostics, populated by learn() before the search
        self.diagnostics: List[Diagnostic] = []

    # -- building the decomposed model ------------------------------------

    def _build_models(self, space: Sequence[CandidateRule]) -> List[_ExampleModel]:
        models: List[_ExampleModel] = []
        for example in self.task.positive:
            base = self.task.positive_holds([], example)
            flags = []
            for candidate in space:
                holds = self.task.positive_holds([candidate], example)
                if self._constraints_only or base:
                    flags.append(not holds)  # flag = candidate *breaks* it
                else:
                    flags.append(holds)  # flag = candidate covers it
            if self._constraints_only or base:
                # already satisfied (or constraint-style): stay unbroken
                models.append(_ExampleModel("needs_none", flags, base, example.weight))
            else:
                bad_flags = self._bad_flags(space, example, flags)
                models.append(
                    _ExampleModel(
                        "needs_one", flags, base, example.weight, bad_flags
                    )
                )
        for example in self.task.negative:
            base = self.task.negative_holds([], example)
            flags = []
            for candidate in space:
                rejected = self.task.negative_holds([candidate], example)
                if self._constraints_only:
                    flags.append(rejected and not base)  # flag = candidate rejects it
                else:
                    flags.append(not rejected)  # flag = candidate violates it
            if self._constraints_only:
                models.append(_ExampleModel("needs_one", flags, base, example.weight))
            else:
                models.append(_ExampleModel("needs_none", flags, base, example.weight))
        return models

    def _bad_flags(
        self,
        space: Sequence[CandidateRule],
        example,
        good_flags: List[bool],
    ) -> Optional[List[bool]]:
        """Per-candidate "breaks this example" flags for union-semantics
        tasks: candidate c breaks example e when pairing c with a known
        covering candidate g still fails (so c derives something e
        excludes).  Requires at least one covering candidate; without
        one the example is hopeless anyway and bad flags are moot."""
        witness = None
        for index, good in enumerate(good_flags):
            if good:
                witness = space[index]
                break
        if witness is None:
            return None
        bad = []
        for index, candidate in enumerate(space):
            if good_flags[index] or candidate is witness:
                bad.append(False)
                continue
            bad.append(
                not self.task.positive_holds([witness, candidate], example)
            )
        return bad

    @staticmethod
    def _dedupe(models: List[_ExampleModel]) -> List[_ExampleModel]:
        """Merge identical example models, summing weights (repeated log
        entries are common in sampled datasets)."""
        merged: dict = {}
        for model in models:
            key = (
                model.kind,
                tuple(model.flags),
                tuple(model.bad_flags) if model.bad_flags is not None else None,
                model.already,
            )
            existing = merged.get(key)
            if existing is None:
                merged[key] = _ExampleModel(
                    model.kind, model.flags, model.already, model.weight, model.bad_flags
                )
            else:
                existing.weight += model.weight
        return list(merged.values())

    # -- search --------------------------------------------------------------

    @staticmethod
    def _satisfied(model: _ExampleModel, selected: Sequence[int]) -> bool:
        if model.kind == "needs_one":
            if any(model.broken_by(i) for i in selected):
                return False
            return model.already or any(model.flags[i] for i in selected)
        return model.already and not any(model.flags[i] for i in selected)

    def _violations(
        self, selected: Sequence[int], models: Sequence[_ExampleModel]
    ) -> int:
        return sum(
            model.weight
            for model in models
            if not self._satisfied(model, selected)
        )

    def _search(
        self, space: Sequence[CandidateRule], models: Sequence[_ExampleModel]
    ) -> Optional[List[int]]:
        """Branch-and-bound set cover, branching on uncovered examples.

        At each node, pick the unsatisfied needs-one example with the
        fewest remaining coverers and branch over (a) each candidate
        covering it, and (b) skipping it when the violation budget
        allows.  Depth is bounded by ``max_rules`` selections plus the
        budgeted skips, so the search stays polynomial in practice.
        """
        needs_one = [m for m in models if m.kind == "needs_one" and not m.already]
        best: Optional[List[int]] = None
        best_cost = float("inf")
        nodes = [0]

        # Greedy warm start: a quick feasible cover gives the B&B a tight
        # upper bound to prune against.
        greedy = self._greedy(space, models, needs_one)
        if greedy is not None:
            best = greedy
            best_cost = sum(space[i].cost for i in greedy)

        def node_violations(selected: List[int], skipped_weight: int) -> int:
            # skips + needs_none violations + needs_one examples broken
            # by the current selection
            total = skipped_weight
            for model in models:
                if model.kind == "needs_none":
                    if not model.already or any(model.flags[i] for i in selected):
                        total += model.weight
                elif any(model.broken_by(i) for i in selected):
                    total += model.weight
            return total

        def dfs(selected: List[int], cost: float, skipped: List[_ExampleModel], skipped_weight: int) -> None:
            nonlocal best, best_cost
            nodes[0] += 1
            if nodes[0] > self.max_nodes or cost >= best_cost:
                return
            if node_violations(selected, skipped_weight) > self.max_violations:
                return
            uncovered = [
                m
                for m in needs_one
                if m not in skipped
                and not any(m.flags[i] for i in selected)
                and not any(m.broken_by(i) for i in selected)  # broken = counted above
            ]
            if not uncovered:
                best = list(selected)
                best_cost = cost
                return
            # branch on the hardest example (fewest coverers)
            def coverer_count(model: _ExampleModel) -> int:
                return sum(
                    1 for i in range(len(space)) if model.flags[i] and i not in selected
                )

            example = min(uncovered, key=coverer_count)
            coverers = sorted(
                (i for i in range(len(space)) if example.flags[i] and i not in selected),
                key=lambda i: space[i].cost,
            )[:16]  # beam cap: bounded branching, greedy bound keeps quality
            if len(selected) < self.max_rules:
                for index in coverers:
                    selected.append(index)
                    dfs(selected, cost + space[index].cost, skipped, skipped_weight)
                    selected.pop()
            if skipped_weight + example.weight <= self.max_violations:
                skipped.append(example)
                dfs(selected, cost, skipped, skipped_weight + example.weight)
                skipped.pop()

        dfs([], 0.0, [], 0)
        return best

    def _greedy(
        self,
        space: Sequence[CandidateRule],
        models: Sequence[_ExampleModel],
        needs_one: Sequence[_ExampleModel],
    ) -> Optional[List[int]]:
        """Greedy weighted set cover; returns a feasible selection or None.

        Only valid as a warm start in strict mode (violating candidates
        already filtered); with a violation budget the B&B handles skips.
        """
        if self.max_violations > 0:
            return None
        selected: List[int] = []
        uncovered = [m for m in needs_one]
        while uncovered and len(selected) < self.max_rules:
            best_index = None
            best_ratio = 0.0
            for index in range(len(space)):
                if index in selected:
                    continue
                gain = sum(m.weight for m in uncovered if m.flags[index])
                if gain <= 0:
                    continue
                ratio = gain / space[index].cost
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_index = index
            if best_index is None:
                return None
            selected.append(best_index)
            uncovered = [m for m in uncovered if not m.flags[best_index]]
        if uncovered:
            return None
        # needs_none examples must also hold (candidates are pre-filtered
        # in strict mode, but an already-violated example is fatal)
        for model in models:
            if model.kind == "needs_none" and not model.already:
                return None
        return selected

    def learn(self) -> LearnedHypothesis:
        scope = (
            budget_scope(self.budget)
            if self.budget is not None
            else contextlib.nullcontext()
        )
        with scope, _tele_span(
            "learn.decomposable", space=len(self.task.hypothesis_space)
        ) as sp:
            self.diagnostics = lint_task(self.task)
            if self.diagnostics:
                sp.incr("learner.lint_findings", len(self.diagnostics))
                sp.incr(
                    "learner.lint_errors",
                    sum(1 for d in self.diagnostics if d.is_error),
                )
            result = self._learn()
            sp.incr("learner.checks", result.checks)
            sp.incr("learner.hypotheses_learned")
            sp.set(
                cost=result.cost,
                violations=result.violations,
                rules=len(result.candidates),
            )
            return result

    def _learn(self) -> LearnedHypothesis:
        start = time.monotonic()
        space = list(self.task.hypothesis_space)
        models = self._dedupe(self._build_models(space))

        # Hard-filter candidates that break any example (a needs_none
        # example's flag, or a needs_one example's bad flag), unless a
        # violation budget could absorb it (then keep them in play).
        if self.max_violations == 0:
            def breaks_something(i: int) -> bool:
                for m in models:
                    if m.kind == "needs_none" and m.flags[i]:
                        return True
                    if m.kind == "needs_one" and m.broken_by(i):
                        return True
                return False

            allowed = [i for i in range(len(space)) if not breaks_something(i)]
            space_f = [space[i] for i in allowed]
            models_f = [
                _ExampleModel(
                    m.kind,
                    [m.flags[i] for i in allowed],
                    m.already,
                    m.weight,
                    [m.bad_flags[i] for i in allowed]
                    if m.bad_flags is not None
                    else None,
                )
                for m in models
            ]
        else:
            space_f, models_f = space, models

        selected = self._search(space_f, models_f)
        if selected is None:
            raise UnsatisfiableTaskError(
                "no decomposable hypothesis within limits "
                f"({self.max_rules} rules, {self.max_violations} violations)"
            )
        hypothesis = [space_f[i] for i in selected]
        violations = self._verify(hypothesis)
        if violations is None or violations > self.max_violations:
            raise LearningError(
                "decomposability assumption failed verification; "
                "use the exact learner (learn_auto falls back automatically)"
            )
        return LearnedHypothesis(
            hypothesis,
            int(sum(c.cost for c in hypothesis)),
            violations,
            checks=(len(space) + 1) * (len(self.task.positive) + len(self.task.negative)),
            elapsed=time.monotonic() - start,
            space_size=len(space),
        )

    def _verify(self, hypothesis: Sequence[CandidateRule]) -> Optional[int]:
        """Full-oracle violation count for the found hypothesis."""
        total = 0
        for example in self.task.positive:
            if not self.task.positive_holds(hypothesis, example):
                total += example.weight
        for example in self.task.negative:
            if not self.task.negative_holds(hypothesis, example):
                total += example.weight
        return total


def learn_auto(
    task,
    max_rules: int = 6,
    max_violations: int = 0,
    auto_violations: bool = True,
    fallback: bool = True,
    budget: Optional[Budget] = None,
    **ilasp_kwargs,
) -> LearnedHypothesis:
    """Try the fast decomposable learner; optionally fall back to the exact one.

    With ``auto_violations`` (the default), an unsatisfiable task is
    retried with exponentially growing violation budgets before any
    fallback — noisy or contradictory example sets (planning-phase data,
    flipped log entries) are the common case in the paper's domains, and
    the decomposable learner absorbs them cheaply via its skip branches.
    The decomposable result is verified against the full oracle before
    being returned, so a successful fast path is always a correct
    solution (though, unlike the exact learner, not guaranteed
    cost-minimal when rules interact).
    """
    scope = budget_scope(budget) if budget is not None else contextlib.nullcontext()
    with scope:
        violation_budgets = [max_violations]
        if auto_violations:
            total_weight = sum(e.weight for e in task.positive) + sum(
                e.weight for e in task.negative
            )
            allowed = max(max_violations, 1)
            while allowed < total_weight:
                allowed *= 2
                violation_budgets.append(min(allowed, total_weight))
        last_error: Optional[LearningError] = None
        for allowed in violation_budgets:
            try:
                return DecomposableLearner(
                    task, max_rules=max_rules, max_violations=allowed
                ).learn()
            except UnsatisfiableTaskError as error:
                last_error = error
            except ResourceError:
                if not fallback:
                    raise
                break  # out of budget on the fast path: let the exact
                # learner degrade gracefully with its best-so-far
            except LearningError as error:
                last_error = error
                break  # verification failure: budgets will not help
        if fallback:
            learner = ILASPLearner(
                task,
                max_rules=min(max_rules, 4),
                max_violations=max_violations,
                **ilasp_kwargs,
            )
            return learner.learn()
        assert last_error is not None
        raise last_error
