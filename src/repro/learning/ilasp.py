"""The inductive learner: optimal subset search over a hypothesis space.

Plays the role ILASP plays in the paper's Figure 1 workflow.  Given a
task exposing ``positive_holds`` / ``negative_holds`` oracles (either an
:class:`~repro.learning.tasks.ASGLearningTask` or a
:class:`~repro.learning.tasks.LASTask`), the learner finds a
minimal-cost hypothesis ``H ⊆ S_M`` covering the examples.

Search strategy
---------------

Iterative deepening on total hypothesis cost guarantees the returned
hypothesis is cost-minimal (as ILASP's are).  Within a budget, a DFS
over candidate inclusion explores subsets; all oracle calls are memoized
on ``(hypothesis key, example)``.

When the space is *constraints-only* the learner exploits two
monotonicity facts (adding a constraint can only shrink the set of
answer sets / the ASG language):

* a candidate that alone breaks a positive example can never occur in
  any solution — such candidates are pruned up-front;
* once a partial hypothesis breaks more positive examples than the
  violation budget allows, no superset can recover — the branch is cut.

Noise is handled via ``max_violations``: a hypothesis is acceptable if
the total weight of uncovered examples is at most the budget, mirroring
ILASP's noisy-example support.  ``learn`` tries violation budgets
``0..max_violations`` in order, so the returned hypothesis violates as
few examples as possible, with cost as a tie-break.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.mode_lint import lint_task
from repro.errors import LearningError, ResourceError, UnsatisfiableTaskError
from repro.learning.mode_bias import CandidateRule
from repro.runtime.budget import Budget, budget_scope
from repro.telemetry import span as _tele_span

__all__ = ["LearnedHypothesis", "ILASPLearner", "learn"]


class LearnedHypothesis:
    """The result of a learning run: the hypothesis and search statistics.

    The statistics mirror what the ILASP system prints per run:

    * ``checks`` — coverage-oracle calls actually executed (cache misses);
    * ``memo_hits`` — oracle calls answered from the memo table;
    * ``space_size`` — hypothesis-space size after monotonicity
      prefiltering (the candidates the search really explored);
    * ``iterations`` — (violation budget, cost budget) refinement rounds
      of the iterative-deepening outer loop;
    * ``elapsed`` — wall-clock seconds for the whole search.

    ``degraded`` marks a best-so-far hypothesis returned because a
    resource budget ran out before the search completed: it is the
    least-violating (then cheapest) hypothesis evaluated so far, with no
    optimality guarantee.
    """

    def __init__(
        self,
        candidates: List[CandidateRule],
        cost: int,
        violations: int,
        checks: int,
        elapsed: float,
        degraded: bool = False,
        space_size: int = 0,
        memo_hits: int = 0,
        iterations: int = 0,
    ):
        self.candidates = candidates
        self.cost = cost
        self.violations = violations
        self.checks = checks
        self.elapsed = elapsed
        self.degraded = degraded
        self.space_size = space_size
        self.memo_hits = memo_hits
        self.iterations = iterations

    @property
    def rules(self):
        """The learned rules as ``(rule, production id)`` pairs."""
        return [(c.rule, c.prod_id) for c in self.candidates]

    def stats(self) -> Dict[str, int]:
        """The search statistics as a flat dict (for reports/telemetry)."""
        return {
            "cost": self.cost,
            "violations": self.violations,
            "checks": self.checks,
            "memo_hits": self.memo_hits,
            "space_size": self.space_size,
            "iterations": self.iterations,
            "degraded": int(self.degraded),
        }

    def __repr__(self) -> str:
        lines = [f"cost={self.cost} violations={self.violations} checks={self.checks}"]
        lines += [f"  {c!r}" for c in self.candidates]
        return "\n".join(lines)


class ILASPLearner:
    """Optimal hypothesis search over an explicit hypothesis space."""

    def __init__(
        self,
        task,
        max_cost: int = 12,
        max_rules: int = 4,
        max_checks: int = 500_000,
        max_violations: int = 0,
        budget: Optional[Budget] = None,
        degrade_on_exhaustion: bool = True,
    ):
        self.task = task
        self.max_cost = max_cost
        self.max_rules = max_rules
        self.max_checks = max_checks
        self.max_violations = max_violations
        self.budget = budget
        self.degrade_on_exhaustion = degrade_on_exhaustion
        self._memo: Dict[Tuple[FrozenSet[tuple], int, bool], bool] = {}
        self._checks = 0
        self._memo_hits = 0
        self._iterations = 0
        self._space_size = 0
        self._constraints_only = task.constraints_only()
        # best-so-far for degraded returns: (violation weight, cost, hypothesis)
        self._best: Optional[Tuple[int, int, List[CandidateRule]]] = None
        # static task diagnostics, populated by learn() before the search
        self.diagnostics: List[Diagnostic] = []

    # -- oracle with memoization ------------------------------------------

    def _key(self, hypothesis: Sequence[CandidateRule]) -> FrozenSet[tuple]:
        return frozenset(c.key() for c in hypothesis)

    def _positive_ok(self, hypothesis: Sequence[CandidateRule], index: int) -> bool:
        key = (self._key(hypothesis), index, True)
        cached = self._memo.get(key)
        if cached is None:
            self._bump()
            cached = self.task.positive_holds(hypothesis, self.task.positive[index])
            self._memo[key] = cached
        else:
            self._memo_hits += 1
        return cached

    def _negative_ok(self, hypothesis: Sequence[CandidateRule], index: int) -> bool:
        key = (self._key(hypothesis), index, False)
        cached = self._memo.get(key)
        if cached is None:
            self._bump()
            cached = self.task.negative_holds(hypothesis, self.task.negative[index])
            self._memo[key] = cached
        else:
            self._memo_hits += 1
        return cached

    def _bump(self) -> None:
        self._checks += 1
        if self.budget is not None:
            self.budget.tick()
        if self._checks > self.max_checks:
            raise LearningError(
                f"learning exceeded {self.max_checks} coverage checks; "
                "shrink the hypothesis space or example set"
            )

    # -- violation accounting ----------------------------------------------

    def _violation_weight(self, hypothesis: Sequence[CandidateRule]) -> int:
        total = 0
        for index, example in enumerate(self.task.positive):
            if not self._positive_ok(hypothesis, index):
                total += example.weight
        for index, example in enumerate(self.task.negative):
            if not self._negative_ok(hypothesis, index):
                total += example.weight
        return total

    def _positive_violation_weight(self, hypothesis: Sequence[CandidateRule]) -> int:
        return sum(
            example.weight
            for index, example in enumerate(self.task.positive)
            if not self._positive_ok(hypothesis, index)
        )

    # -- search --------------------------------------------------------------

    def learn(self) -> LearnedHypothesis:
        """Find a minimal hypothesis; raise :class:`UnsatisfiableTaskError`
        if none exists within the limits.

        Under a resource budget (the learner's own, or an ambient
        :func:`~repro.runtime.budget.budget_scope` governing the oracle's
        solver calls), exhaustion does not kill the run: with
        ``degrade_on_exhaustion`` (the default) the least-violating
        hypothesis evaluated so far is returned with ``degraded=True``.
        """
        start = time.monotonic()
        scope = (
            budget_scope(self.budget)
            if self.budget is not None
            else contextlib.nullcontext()
        )
        with _tele_span(
            "learn.ilasp", space=len(self.task.hypothesis_space)
        ) as sp:
            self.diagnostics = lint_task(self.task)
            if self.diagnostics:
                sp.incr("learner.lint_findings", len(self.diagnostics))
                sp.incr(
                    "learner.lint_errors",
                    sum(1 for d in self.diagnostics if d.is_error),
                )
            try:
                with scope:
                    space = self._prefiltered_space()
                    self._space_size = len(space)
                    sp.set(prefiltered_space=len(space))
                    for allowed in range(0, self.max_violations + 1):
                        found = self._search_with_violations(space, allowed)
                        if found is not None:
                            hypothesis, cost = found
                            result = LearnedHypothesis(
                                hypothesis,
                                cost,
                                self._violation_weight(hypothesis),
                                self._checks,
                                time.monotonic() - start,
                                space_size=self._space_size,
                                memo_hits=self._memo_hits,
                                iterations=self._iterations,
                            )
                            self._record_span(sp, result)
                            return result
            except ResourceError:
                if not self.degrade_on_exhaustion:
                    raise
                result = self._degraded_result(start)
                self._record_span(sp, result)
                return result
            raise UnsatisfiableTaskError(
                f"no hypothesis within cost {self.max_cost}, "
                f"{self.max_rules} rules, {self.max_violations} violations"
            )

    @staticmethod
    def _record_span(sp, result: LearnedHypothesis) -> None:
        sp.incr("learner.checks", result.checks)
        sp.incr("learner.memo_hits", result.memo_hits)
        sp.incr("learner.iterations", result.iterations)
        sp.incr("learner.hypotheses_learned")
        if result.degraded:
            sp.incr("learner.degraded_returns")
        sp.set(
            cost=result.cost,
            violations=result.violations,
            rules=len(result.candidates),
            degraded=result.degraded,
        )

    def _degraded_result(self, start: float) -> LearnedHypothesis:
        """Best-so-far hypothesis after budget exhaustion."""
        if self._best is not None:
            violations, cost, hypothesis = self._best
        else:
            # not even the empty hypothesis was evaluated: report it with
            # the trivial upper bound on violations (every example missed)
            hypothesis, cost = [], 0
            violations = sum(e.weight for e in self.task.positive) + sum(
                e.weight for e in self.task.negative
            )
        return LearnedHypothesis(
            list(hypothesis),
            cost,
            violations,
            self._checks,
            time.monotonic() - start,
            degraded=True,
            space_size=self._space_size,
            memo_hits=self._memo_hits,
            iterations=self._iterations,
        )

    def _note_best(
        self, hypothesis: List[CandidateRule], cost: int, violations: int
    ) -> None:
        if self._best is None or (violations, cost) < self._best[:2]:
            self._best = (violations, cost, list(hypothesis))

    def _prefiltered_space(self) -> List[CandidateRule]:
        space = sorted(self.task.hypothesis_space, key=lambda c: c.cost)
        if not self._constraints_only or self.max_violations > 0:
            return space
        kept = []
        for candidate in space:
            if all(
                self._positive_ok([candidate], i)
                for i in range(len(self.task.positive))
            ):
                kept.append(candidate)
        return kept

    def _search_with_violations(
        self, space: List[CandidateRule], violation_budget: int
    ) -> Optional[Tuple[List[CandidateRule], int]]:
        for cost_budget in range(0, self.max_cost + 1):
            self._iterations += 1
            result = self._dfs(space, 0, [], 0, cost_budget, violation_budget)
            if result is not None:
                return result
        return None

    def _dfs(
        self,
        space: List[CandidateRule],
        index: int,
        current: List[CandidateRule],
        cost: int,
        cost_budget: int,
        violation_budget: int,
    ) -> Optional[Tuple[List[CandidateRule], int]]:
        weight = self._violation_weight(current)
        self._note_best(current, cost, weight)
        if weight <= violation_budget:
            return (list(current), cost)
        if index >= len(space) or len(current) >= self.max_rules:
            return None
        candidate = space[index]
        # include (if it fits the budget)
        if cost + candidate.cost <= cost_budget:
            current.append(candidate)
            prune = (
                self._constraints_only
                and self._positive_violation_weight(current) > violation_budget
            )
            if not prune:
                found = self._dfs(
                    space, index + 1, current, cost + candidate.cost,
                    cost_budget, violation_budget,
                )
                if found is not None:
                    current.pop()
                    return found
            current.pop()
        # exclude
        return self._dfs(space, index + 1, current, cost, cost_budget, violation_budget)


def learn(
    task,
    max_cost: int = 12,
    max_rules: int = 4,
    max_checks: int = 500_000,
    max_violations: int = 0,
    budget: Optional[Budget] = None,
    degrade_on_exhaustion: bool = True,
) -> LearnedHypothesis:
    """Convenience wrapper: build an :class:`ILASPLearner` and run it."""
    return ILASPLearner(
        task,
        max_cost=max_cost,
        max_rules=max_rules,
        max_checks=max_checks,
        max_violations=max_violations,
        budget=budget,
        degrade_on_exhaustion=degrade_on_exhaustion,
    ).learn()
