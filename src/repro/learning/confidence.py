"""Confidence values for learned rules (paper Sections IV.C and V.C).

"Gathering statistical information on the example dataset and
contextual information can help one prioritizing the examples by
assigning weights to them or to associate confidence values with the
generated policies" (IV.C); "causal rules must be rigorously verified
and tested by data analysis and certainty values should be associated
with rules" (V.C).

For each learned rule we compute, over the training examples:

* **support** — how many examples the rule participates in deciding
  (for a constraint: the examples it rejects; for a definite rule: the
  examples it covers);
* **confidence** — a Laplace-smoothed estimate that the rule's
  involvement agrees with the labels;
* **necessity** — whether dropping the rule breaks some example
  (redundant rules get ``necessity=False``).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.learning.mode_bias import CandidateRule

__all__ = ["RuleConfidence", "score_hypothesis"]


class RuleConfidence(NamedTuple):
    """Statistical annotations for one learned rule."""

    rule_text: str
    support: int
    confidence: float
    necessary: bool


def _satisfied_counts(task, hypothesis: Sequence[CandidateRule]) -> Tuple[int, int]:
    """(satisfied, total) examples under ``hypothesis``."""
    satisfied = 0
    total = 0
    for example in task.positive:
        total += 1
        if task.positive_holds(hypothesis, example):
            satisfied += 1
    for example in task.negative:
        total += 1
        if task.negative_holds(hypothesis, example):
            satisfied += 1
    return satisfied, total


def score_hypothesis(
    task, hypothesis: Sequence[CandidateRule]
) -> List[RuleConfidence]:
    """Annotate each rule of a learned hypothesis with its statistics.

    Support/confidence come from leave-one-rule-out analysis: a rule's
    support is the number of examples whose status *changes* when the
    rule is dropped; confidence is the smoothed fraction of those
    changes that move from satisfied to violated (i.e. the rule is doing
    correct work).  ``task`` is the learning task the hypothesis solves
    (its oracles are reused, so memoized learners stay cheap).
    """
    out: List[RuleConfidence] = []
    full = list(hypothesis)
    for index, candidate in enumerate(full):
        reduced = full[:index] + full[index + 1 :]
        helps = 0
        hurts = 0
        for example in task.positive:
            with_rule = task.positive_holds(full, example)
            without = task.positive_holds(reduced, example)
            if with_rule and not without:
                helps += example.weight
            elif without and not with_rule:
                hurts += example.weight
        for example in task.negative:
            with_rule = task.negative_holds(full, example)
            without = task.negative_holds(reduced, example)
            if with_rule and not without:
                helps += example.weight
            elif without and not with_rule:
                hurts += example.weight
        support = helps + hurts
        confidence = (helps + 1) / (support + 2)  # Laplace smoothing
        out.append(
            RuleConfidence(
                rule_text=repr(candidate.rule),
                support=support,
                confidence=confidence,
                necessary=helps > 0,
            )
        )
    return out
