"""Evaluation metrics for learned generative policy models.

Used by the benchmark harness to produce the learning curves of
experiment E5 (symbolic vs shallow ML) and the recovery rates of
E3/E4 (XACML case study).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["confusion", "accuracy", "precision_recall_f1", "learning_curve"]


def confusion(
    predictions: Sequence[bool], labels: Sequence[bool]
) -> Dict[str, int]:
    """Confusion counts for boolean predictions against boolean labels."""
    if len(predictions) != len(labels):
        raise ValueError("predictions and labels differ in length")
    counts = {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
    for predicted, actual in zip(predictions, labels):
        if predicted and actual:
            counts["tp"] += 1
        elif predicted and not actual:
            counts["fp"] += 1
        elif not predicted and not actual:
            counts["tn"] += 1
        else:
            counts["fn"] += 1
    return counts


def accuracy(predictions: Sequence[bool], labels: Sequence[bool]) -> float:
    """Fraction of predictions matching labels (1.0 on empty input)."""
    if not labels:
        return 1.0
    counts = confusion(predictions, labels)
    return (counts["tp"] + counts["tn"]) / len(labels)


def precision_recall_f1(
    predictions: Sequence[bool], labels: Sequence[bool]
) -> Tuple[float, float, float]:
    """Precision, recall and F1 of the positive class."""
    counts = confusion(predictions, labels)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def learning_curve(
    train_and_predict: Callable[[int], Sequence[bool]],
    labels: Sequence[bool],
    sample_sizes: Sequence[int],
) -> List[Tuple[int, float]]:
    """Accuracy at each training-set size.

    ``train_and_predict(n)`` must train on the first ``n`` examples of
    the caller's training pool and return test-set predictions aligned
    with ``labels``.
    """
    curve: List[Tuple[int, float]] = []
    for n in sample_sizes:
        predictions = train_and_predict(n)
        curve.append((n, accuracy(predictions, labels)))
    return curve
