"""Learning-task definitions.

Two task families, both with *context-dependent* examples:

* :class:`ASGLearningTask` — the paper's Definition 3: given an initial
  ASG ``G``, a hypothesis space ``S_M``, and examples ``<s, C>`` of
  policy strings under contexts, find ``H ⊆ S_M`` such that every
  positive ``s ∈ L(G(C) : H)`` and every negative ``s ∉ L(G(C) : H)``.
* :class:`LASTask` — ILASP's Learning-from-Answer-Sets for plain ASP
  programs: examples are partial interpretations ``<inc, exc>`` under a
  context; a positive example requires an answer set of
  ``B ∪ H ∪ C`` covering it, a negative requires none.

Both expose the same oracle interface (``positive_holds`` /
``negative_holds``) consumed by :mod:`repro.learning.ilasp`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom
from repro.asp.parser import parse_program
from repro.asp.rules import Program, Rule
from repro.asp.solver import solve
from repro.asg.annotated import ASG
from repro.asg.semantics import accepts
from repro.grammar.cfg import SymbolString
from repro.learning.mode_bias import CandidateRule

__all__ = ["ContextExample", "ASGLearningTask", "PartialInterpretation", "LASTask"]


class ContextExample:
    """An example ``<s, C>``: a policy string under an ASP context program."""

    __slots__ = ("tokens", "context", "name", "weight")

    def __init__(
        self,
        tokens: Sequence[str],
        context: Optional[Program] = None,
        name: str = "",
        weight: int = 1,
    ):
        self.tokens: SymbolString = tuple(tokens)
        self.context = context if context is not None else Program()
        self.name = name or " ".join(self.tokens)
        self.weight = weight

    @classmethod
    def from_text(cls, string: str, context_text: str = "", **kw) -> "ContextExample":
        """Build from a space-separated policy string and ASP context text."""
        context = parse_program(context_text) if context_text else Program()
        return cls(tuple(string.split()), context, **kw)

    def key(self) -> tuple:
        """Content identity (used for oracle memoization)."""
        return (self.tokens, tuple(sorted(repr(r) for r in self.context)))

    def __repr__(self) -> str:
        ctx = f" | {len(self.context.rules)} ctx rules" if len(self.context) else ""
        return f"<{' '.join(self.tokens)}{ctx}>"


class ASGLearningTask:
    """A context-dependent ASG learning task ``<G, S_M, E+, E->`` (Definition 3)."""

    def __init__(
        self,
        initial: ASG,
        hypothesis_space: Sequence[CandidateRule],
        positive: Sequence[ContextExample],
        negative: Sequence[ContextExample],
        context_placement: str = "all",
        max_trees: int = 256,
        use_fast_path: bool = True,
    ):
        self.initial = initial
        self.hypothesis_space = list(hypothesis_space)
        self.positive = list(positive)
        self.negative = list(negative)
        self.context_placement = context_placement
        self.max_trees = max_trees
        self.use_fast_path = use_fast_path
        self._grammar_cache: Dict[FrozenSet[tuple], ASG] = {}
        self._oracle_cache: Dict[tuple, bool] = {}

    def constraints_only(self) -> bool:
        """True iff every candidate is an integrity constraint.

        In that case acceptance is anti-monotone in the hypothesis, which
        the learner exploits for pruning.
        """
        return all(
            getattr(c.rule, "head", None) is None and not hasattr(c.rule, "elements")
            for c in self.hypothesis_space
        )

    def _grammar(self, hypothesis: Sequence[CandidateRule]) -> ASG:
        key = frozenset(c.key() for c in hypothesis)
        cached = self._grammar_cache.get(key)
        if cached is None:
            cached = self.initial.with_rules(
                [(c.rule, c.prod_id if c.prod_id is not None else 0) for c in hypothesis]
            )
            self._grammar_cache[key] = cached
        return cached

    def positive_holds(self, hypothesis: Sequence[CandidateRule], example: ContextExample) -> bool:
        """Check condition 1 of Definition 3: ``s ∈ L(G(C) : H)``."""
        key = (frozenset(c.key() for c in hypothesis), example.key())
        cached = self._oracle_cache.get(key)
        if cached is None:
            grammar = self._grammar(hypothesis).with_context(
                example.context, where=self.context_placement
            )
            cached = accepts(
                grammar,
                example.tokens,
                max_trees=self.max_trees,
                use_fast_path=self.use_fast_path,
            )
            self._oracle_cache[key] = cached
        return cached

    def negative_holds(self, hypothesis: Sequence[CandidateRule], example: ContextExample) -> bool:
        """Check condition 2 of Definition 3: ``s ∉ L(G(C) : H)``."""
        return not self.positive_holds(hypothesis, example)


class PartialInterpretation:
    """An ILASP example: atoms to include/exclude, under a context program."""

    __slots__ = ("inclusions", "exclusions", "context", "name", "weight")

    def __init__(
        self,
        inclusions: Iterable[Atom] = (),
        exclusions: Iterable[Atom] = (),
        context: Optional[Program] = None,
        name: str = "",
        weight: int = 1,
    ):
        self.inclusions = frozenset(inclusions)
        self.exclusions = frozenset(exclusions)
        self.context = context if context is not None else Program()
        self.name = name
        self.weight = weight

    def covered_by(self, answer_set: FrozenSet[Atom]) -> bool:
        return self.inclusions <= answer_set and not (self.exclusions & answer_set)

    def key(self) -> tuple:
        """Content identity (used for oracle memoization)."""
        return (
            tuple(sorted(map(repr, self.inclusions))),
            tuple(sorted(map(repr, self.exclusions))),
            tuple(sorted(repr(r) for r in self.context)),
        )

    def __repr__(self) -> str:
        inc = ", ".join(sorted(map(str, self.inclusions)))
        exc = ", ".join(sorted(map(str, self.exclusions)))
        return f"<inc: {{{inc}}} exc: {{{exc}}}>"


class LASTask:
    """A Learning-from-Answer-Sets task ``<B, S_M, E+, E->``."""

    def __init__(
        self,
        background: Program,
        hypothesis_space: Sequence[CandidateRule],
        positive: Sequence[PartialInterpretation],
        negative: Sequence[PartialInterpretation],
        max_models: int = 64,
        use_fast_path: bool = True,
    ):
        self.background = background
        self.hypothesis_space = list(hypothesis_space)
        self.positive = list(positive)
        self.negative = list(negative)
        self.max_models = max_models
        self.use_fast_path = use_fast_path
        self._oracle_cache: Dict[tuple, bool] = {}

    def constraints_only(self) -> bool:
        return all(
            getattr(c.rule, "head", None) is None and not hasattr(c.rule, "elements")
            for c in self.hypothesis_space
        )

    def _program(self, hypothesis: Sequence[CandidateRule], context: Program) -> Program:
        program = Program(list(self.background))
        program.extend(context)
        for candidate in hypothesis:
            program.add(candidate.rule)
        return program

    def positive_holds(
        self, hypothesis: Sequence[CandidateRule], example: PartialInterpretation
    ) -> bool:
        """Some answer set of ``B ∪ H ∪ C`` covers the partial interpretation."""
        key = (frozenset(c.key() for c in hypothesis), example.key())
        cached = self._oracle_cache.get(key)
        if cached is not None:
            return cached
        program = self._program(hypothesis, example.context)
        result = False
        for model in solve(
            program, max_models=self.max_models, use_fast_path=self.use_fast_path
        ):
            if example.covered_by(model):
                result = True
                break
        self._oracle_cache[key] = result
        return result

    def negative_holds(
        self, hypothesis: Sequence[CandidateRule], example: PartialInterpretation
    ) -> bool:
        """No answer set of ``B ∪ H ∪ C`` covers the partial interpretation."""
        return not self.positive_holds(hypothesis, example)
