"""Inductive learning of generative policy models (paper Section II.B).

The pieces mirror the Figure 1 workflow: a hypothesis space built from a
mode bias (:mod:`repro.learning.mode_bias`), a learning task pairing an
initial ASG (or background ASP program) with context-dependent examples
(:mod:`repro.learning.tasks`), and an ILASP-style optimal learner
(:mod:`repro.learning.ilasp`).
"""

from repro.learning.confidence import RuleConfidence, score_hypothesis
from repro.learning.decomposable import DecomposableLearner, learn_auto
from repro.learning.guidance import SearchGuidance, rule_features
from repro.learning.ilasp import ILASPLearner, LearnedHypothesis, learn
from repro.learning.metrics import (
    accuracy,
    confusion,
    learning_curve,
    precision_recall_f1,
)
from repro.learning.mode_bias import (
    CandidateRule,
    ModeAtom,
    ModeBias,
    Placeholder,
    constraint_space,
)
from repro.learning.tasks import (
    ASGLearningTask,
    ContextExample,
    LASTask,
    PartialInterpretation,
)

__all__ = [
    "ILASPLearner",
    "LearnedHypothesis",
    "learn",
    "DecomposableLearner",
    "learn_auto",
    "RuleConfidence",
    "score_hypothesis",
    "SearchGuidance",
    "rule_features",
    "ModeBias",
    "ModeAtom",
    "Placeholder",
    "CandidateRule",
    "constraint_space",
    "ASGLearningTask",
    "ContextExample",
    "LASTask",
    "PartialInterpretation",
    "accuracy",
    "confusion",
    "precision_recall_f1",
    "learning_curve",
]
