"""Statistical guidance for the symbolic hypothesis search (Section V.C).

"There is usually a very large hypothesis space to search.  Here is one
place where statistical machine learning can complement, in a
supporting role, symbolic learning.  One can learn strategies to best
search the hypothesis space."

:class:`SearchGuidance` learns, from completed learning episodes, which
candidate-rule *shapes* tend to appear in solutions (body length,
negation use, predicates mentioned, annotation positions), then
re-orders fresh hypothesis spaces so promising candidates are tried
first.  Ordering never changes *what* is learnable — the learners'
optimality/verification guarantees stand — it only changes how fast a
solution is found (candidate order is the tie-break everywhere).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.features import OneHotEncoder
from repro.baselines.logistic_regression import LogisticRegression
from repro.learning.mode_bias import CandidateRule

__all__ = ["rule_features", "SearchGuidance"]


def rule_features(candidate: CandidateRule) -> Dict[str, object]:
    """Shape features of a candidate rule (no constants — those are
    task-specific and would not transfer across episodes)."""
    rule = candidate.rule
    body = list(getattr(rule, "body", ()))
    literals = [e for e in body if hasattr(e, "atom")]
    predicates = sorted({lit.atom.predicate for lit in literals})
    annotations = sorted(
        {
            lit.atom.annotation[0]
            for lit in literals
            if lit.atom.annotation is not None and len(lit.atom.annotation) == 1
        }
    )
    features: Dict[str, object] = {
        "body_len": len(body),
        "n_negative": sum(1 for lit in literals if not lit.positive),
        "is_constraint": getattr(rule, "head", None) is None,
        "head_pred": getattr(getattr(rule, "head", None), "predicate", ""),
    }
    for predicate in predicates:
        features[f"pred:{predicate}"] = True
    for annotation in annotations:
        features[f"ann:{annotation}"] = True
    return features


class SearchGuidance:
    """Learn to rank hypothesis-space candidates from past episodes."""

    def __init__(self) -> None:
        self._rows: List[Dict[str, object]] = []
        self._labels: List[int] = []
        self._encoder: Optional[OneHotEncoder] = None
        self._model: Optional[LogisticRegression] = None

    @property
    def n_examples(self) -> int:
        return len(self._rows)

    def record_episode(
        self,
        space: Sequence[CandidateRule],
        solution: Sequence[CandidateRule],
    ) -> None:
        """Record one completed learning episode."""
        chosen = {candidate.key() for candidate in solution}
        for candidate in space:
            self._rows.append(rule_features(candidate))
            self._labels.append(1 if candidate.key() in chosen else 0)
        self._model = None  # stale

    def _fit(self) -> None:
        if not self._rows or not any(self._labels):
            raise RuntimeError("no positive episodes recorded yet")
        self._encoder = OneHotEncoder().fit(self._rows)
        X = self._encoder.transform(self._rows)
        y = np.array(self._labels)
        self._model = LogisticRegression(max_iter=300).fit(X, y)

    def score(self, candidates: Sequence[CandidateRule]) -> np.ndarray:
        """Predicted usefulness of each candidate (higher = try earlier)."""
        if self._model is None:
            self._fit()
        assert self._encoder is not None and self._model is not None
        X = self._encoder.transform([rule_features(c) for c in candidates])
        return self._model.predict_proba(X)

    def order(
        self, candidates: Sequence[CandidateRule], respect_cost: bool = True
    ) -> List[CandidateRule]:
        """Reorder a hypothesis space, best-first.

        With ``respect_cost`` (default) the cost remains the primary key
        — cost-minimality guarantees are preserved — and the guidance
        score breaks ties.  Without it, pure score order (useful for the
        greedy/decomposable paths where cost is re-checked anyway).
        """
        scores = self.score(candidates)
        indexed = list(zip(candidates, scores))
        if respect_cost:
            indexed.sort(key=lambda pair: (pair[0].cost, -pair[1]))
        else:
            indexed.sort(key=lambda pair: -pair[1])
        return [candidate for candidate, __ in indexed]
