"""AGENP: An ASGrammar-based GENerative Policy framework.

A complete, from-scratch reproduction of *"Generative Policies for
Coalition Systems - A Symbolic Learning Framework"* (Bertino et al.,
ICDCS 2019), including its substrates:

* :mod:`repro.asp` - an Answer Set Programming engine (parser, grounder,
  solver with exact stability checking), standing in for clingo;
* :mod:`repro.grammar` - context-free grammars, Earley parsing, language
  enumeration;
* :mod:`repro.asg` - Answer Set Grammars (Section II);
* :mod:`repro.learning` - ILASP-style inductive learning, including the
  context-dependent ASG learning task of Definition 3;
* :mod:`repro.core` - generative policy models and the Figure 1 workflow;
* :mod:`repro.policy` - XACML-lite policies, evaluation, quality metrics,
  conflicts, counterfactual explanations (Sections IV.C, V.A, V.B);
* :mod:`repro.agenp` - the full Figure 2 architecture, plus the
  multi-party coalition fabric;
* :mod:`repro.nl` - controlled-English policy intents to grammars
  (Section III.B);
* :mod:`repro.baselines` - shallow-ML comparators (Section IV.A);
* :mod:`repro.apps` - the application domains of Section IV;
* :mod:`repro.datasets` - synthetic dataset generators with pathology
  injection for the Figure 3 case study.

Quickstart::

    from repro.asg import parse_asg, accepts
    from repro.learning import ASGLearningTask, ContextExample, constraint_space, learn

See ``examples/quickstart.py`` for the full loop.
"""

__version__ = "0.1.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
