"""AGENP: An ASGrammar-based GENerative Policy framework.

A complete, from-scratch reproduction of *"Generative Policies for
Coalition Systems - A Symbolic Learning Framework"* (Bertino et al.,
ICDCS 2019), including its substrates:

* :mod:`repro.asp` - an Answer Set Programming engine (parser, grounder,
  solver with exact stability checking), standing in for clingo;
* :mod:`repro.grammar` - context-free grammars, Earley parsing, language
  enumeration;
* :mod:`repro.asg` - Answer Set Grammars (Section II);
* :mod:`repro.learning` - ILASP-style inductive learning, including the
  context-dependent ASG learning task of Definition 3;
* :mod:`repro.core` - generative policy models and the Figure 1 workflow;
* :mod:`repro.policy` - XACML-lite policies, evaluation, quality metrics,
  conflicts, counterfactual explanations (Sections IV.C, V.A, V.B);
* :mod:`repro.agenp` - the full Figure 2 architecture, plus the
  multi-party coalition fabric;
* :mod:`repro.engine` - the high-throughput serving engine
  (fingerprint-keyed caches, batched PDP decisions);
* :mod:`repro.analysis` - static analysis (linting) for policies,
  grammars, and learning tasks;
* :mod:`repro.telemetry` - structured tracing and profiling;
* :mod:`repro.nl` - controlled-English policy intents to grammars
  (Section III.B);
* :mod:`repro.baselines` - shallow-ML comparators (Section IV.A);
* :mod:`repro.apps` - the application domains of Section IV;
* :mod:`repro.datasets` - synthetic dataset generators with pathology
  injection for the Figure 3 case study.

The blessed top-level API re-exports the handful of entry points that
cover the common serving loop::

    import repro

    models = repro.solve_text("a :- not b. b :- not a.")
    grammar = repro.parse_asg(asg_text)
    engine = repro.PolicyEngine(repository, interpreter)
    with repro.tracer_scope() as tracer:
        records = engine.decide_many(requests)

Everything else stays importable from its subsystem module.  A few
older top-level spellings remain importable but emit
:class:`DeprecationWarning` (see ``_DEPRECATED`` below); new code
should use the replacements named in the warning.
"""

import warnings as _warnings

__version__ = "0.1.0"

from repro.errors import ReproError
from repro.analysis import lint_paths
from repro.asg import accepts, parse_asg
from repro.asp import is_satisfiable_text, solve_program, solve_text
from repro.engine import PolicyEngine
from repro.runtime.budget import Budget, budget_scope
from repro.telemetry import tracer_scope

__all__ = [
    "PolicyEngine",
    "solve_text",
    "solve_program",
    "is_satisfiable_text",
    "parse_asg",
    "accepts",
    "lint_paths",
    "Budget",
    "budget_scope",
    "tracer_scope",
    "ReproError",
    "__version__",
]

# Deprecated top-level spellings: name -> (provider, attribute, replacement).
# They keep working (served lazily via module __getattr__) but warn; the
# test suite turns DeprecationWarning into an error, so nothing inside the
# codebase may use them.
_DEPRECATED = {
    "lint_path": ("repro.analysis", "lint_path", "repro.lint_paths"),
    "solve": ("repro.asp.solver", "solve", "repro.solve_program or repro.PolicyEngine.solve"),
    "Engine": ("repro.engine", "PolicyEngine", "repro.PolicyEngine"),
}


def __getattr__(name: str):
    try:
        module_name, attribute, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))
