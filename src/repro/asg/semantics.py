"""Answer Set Grammar semantics: ``G[PT]`` and language membership.

Paper Section II.A: for an ASG ``G`` and parse tree ``PT``,

    ``G[PT] = { rule(n)@trace(n) | n in PT }``

where for a production annotated with program ``P`` at a node with trace
``t``, ``P@t`` replaces every annotated atom ``a@i`` with ``a@(t ++ [i])``
and every unannotated atom ``a`` with ``a@t``.  A string ``s`` is in
``L(G)`` iff some parse tree's program has at least one answer set.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.rules import ChoiceRule, NormalRule, Program, Rule
from repro.asp.solver import AnswerSet, solve
from repro.asg.annotated import ASG
from repro.grammar.cfg import SymbolString
from repro.grammar.earley import parse_trees
from repro.grammar.parse_tree import ParseTree, Trace
from repro.runtime.budget import Budget
from repro.telemetry import span as _tele_span

__all__ = [
    "reroot_rule",
    "tree_program",
    "accepts",
    "accepting_witness",
    "tree_answer_sets",
]


def _reroot_atom(atom: Atom, trace: Trace) -> Atom:
    if atom.annotation is None:
        return atom.with_annotation(trace)
    return atom.with_annotation(trace + atom.annotation)


def reroot_rule(rule: Rule, trace: Trace) -> Rule:
    """``P@t``: prefix every annotation in ``rule`` with ``trace``;
    unannotated atoms get annotation ``trace`` itself."""

    def reroot_body(body) -> List:
        out = []
        for elem in body:
            if isinstance(elem, Literal):
                out.append(Literal(_reroot_atom(elem.atom, trace), elem.positive))
            else:  # Comparison: term-level, no atoms to annotate
                out.append(elem)
        return out

    if isinstance(rule, NormalRule):
        head = _reroot_atom(rule.head, trace) if rule.head is not None else None
        return NormalRule(head, reroot_body(rule.body))
    return ChoiceRule(
        [_reroot_atom(a, trace) for a in rule.elements],
        reroot_body(rule.body),
        rule.lower,
        rule.upper,
    )


def tree_program(asg: ASG, tree: ParseTree) -> Program:
    """Build ``G[PT]`` for a parse tree of the underlying CFG."""
    program = Program()
    for node, trace in tree.interior_nodes():
        assert node.production is not None
        annotation = asg.annotation(node.production.prod_id)
        for rule in annotation:
            program.add(reroot_rule(rule, trace))
    return program


def tree_answer_sets(
    asg: ASG,
    tree: ParseTree,
    max_models: Optional[int] = None,
    budget: Optional[Budget] = None,
    use_fast_path: bool = True,
) -> List[AnswerSet]:
    """Answer sets of ``G[PT]`` for one parse tree."""
    return solve(
        tree_program(asg, tree),
        max_models=max_models,
        budget=budget,
        use_fast_path=use_fast_path,
    )


def accepts(
    asg: ASG,
    tokens: SymbolString,
    max_trees: int = 256,
    budget: Optional[Budget] = None,
    use_fast_path: bool = True,
) -> bool:
    """Membership: is ``tokens`` in ``L(G)``?

    True iff some parse tree of the underlying CFG induces a satisfiable
    program.  A string outside the CFG language is trivially rejected.
    ``budget`` (explicit or ambient) bounds parsing and every per-tree
    solve — membership is the hot path of PCP validation, so one budget
    covers the whole check.
    """
    return (
        accepting_witness(
            asg,
            tokens,
            max_trees=max_trees,
            budget=budget,
            use_fast_path=use_fast_path,
        )
        is not None
    )


def accepting_witness(
    asg: ASG,
    tokens: SymbolString,
    max_trees: int = 256,
    budget: Optional[Budget] = None,
    use_fast_path: bool = True,
) -> Optional[Tuple[ParseTree, AnswerSet]]:
    """Return a witness ``(parse tree, answer set)`` for membership, or None.

    The witness is the raw material for *explaining* why a policy string
    is valid (paper Section V.B): the tree shows the syntactic derivation
    and the answer set shows which semantic conditions held.  Under an
    ambient tracer an ``asg.membership`` span records how many candidate
    trees were solver-checked and whether one accepted.
    """
    with _tele_span("asg.membership", tokens=len(tokens)) as sp:
        trees_tried = 0
        for tree in parse_trees(
            asg.cfg, tuple(tokens), max_trees=max_trees, budget=budget
        ):
            trees_tried += 1
            models = tree_answer_sets(
                asg, tree, max_models=1, budget=budget, use_fast_path=use_fast_path
            )
            if models:
                sp.incr("asg.trees_tried", trees_tried)
                sp.incr("asg.accepted")
                sp.set(accepted=True)
                return tree, models[0]
        sp.incr("asg.trees_tried", trees_tried)
        sp.incr("asg.rejected")
        sp.set(accepted=False)
        return None
