"""Answer Set Grammars (ASG) — the paper's core formalism (Section II).

An ASG pairs a context-free grammar (policy *syntax*) with per-production
ASP programs (policy *semantics*).  The language of an ASG under a
context ``C`` — ``L(G(C))`` — is exactly the set of policies a
generative policy model admits in that context.
"""

from repro.asg.annotated import ASG, validate_annotation
from repro.asg.asg_parser import parse_asg
from repro.asg.explain import (
    BlockingConstraint,
    RejectionExplanation,
    context_counterfactuals,
    explain_rejection,
)
from repro.asg.generation import generate_policies, generate_valid_trees
from repro.asg.semantics import (
    accepting_witness,
    accepts,
    reroot_rule,
    tree_answer_sets,
    tree_program,
)

__all__ = [
    "ASG",
    "validate_annotation",
    "parse_asg",
    "accepts",
    "accepting_witness",
    "tree_program",
    "tree_answer_sets",
    "reroot_rule",
    "generate_policies",
    "generate_valid_trees",
    "explain_rejection",
    "RejectionExplanation",
    "BlockingConstraint",
    "context_counterfactuals",
]
