"""Policy generation from an ASG: enumerating ``L(G(C))``.

This is the *generative* step of the generative-policy model (paper
Section III.A): given a learned ASG and a current context, enumerate the
policies (strings) that are valid in that context.  Enumeration walks
the underlying CFG's parse trees shortest-first and keeps those whose
induced program ``G[PT]`` is satisfiable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Set, Tuple

from repro.asp.rules import Program
from repro.asg.annotated import ASG
from repro.asg.semantics import tree_answer_sets
from repro.grammar.cfg import SymbolString
from repro.grammar.generator import generate_trees
from repro.grammar.parse_tree import ParseTree

__all__ = ["generate_valid_trees", "generate_policies"]


def generate_valid_trees(
    asg: ASG,
    context: Optional[Program] = None,
    max_length: int = 12,
    max_trees: int = 10_000,
    max_candidates: int = 100_000,
) -> Iterator[Tuple[ParseTree, SymbolString]]:
    """Yield ``(parse tree, string)`` for every valid derivation of ``G(C)``.

    ``max_length`` bounds the policy-string length; ``max_candidates``
    bounds the number of CFG derivations examined (syntactically valid
    but semantically rejected candidates count toward it).
    """
    grammar = asg if context is None else asg.with_context(context)
    produced = 0
    for tree in generate_trees(
        asg.cfg, max_length=max_length, max_trees=max_candidates
    ):
        if tree_answer_sets(grammar, tree, max_models=1):
            yield tree, tree.yield_string()
            produced += 1
            if produced >= max_trees:
                return


def generate_policies(
    asg: ASG,
    context: Optional[Program] = None,
    max_length: int = 12,
    max_policies: int = 10_000,
    max_candidates: int = 100_000,
) -> List[SymbolString]:
    """Enumerate the distinct policy strings of ``L(G(C))``.

    The result is the policy set the PReP hands to the Policy Repository
    in the AGENP architecture.
    """
    seen: Set[SymbolString] = set()
    out: List[SymbolString] = []
    for __, string in generate_valid_trees(
        asg,
        context,
        max_length=max_length,
        max_trees=max_candidates,
        max_candidates=max_candidates,
    ):
        if string not in seen:
            seen.add(string)
            out.append(string)
            if len(out) >= max_policies:
                break
    return out
