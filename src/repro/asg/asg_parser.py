"""Text format for Answer Set Grammars.

The format extends the CFG format with an optional ASP block in braces
after each production alternative:

.. code-block:: none

    policy -> "allow" subject action {
        :- is(alice)@1, is(write)@2.   % semantic condition
    }
    policy -> "deny" subject action
    subject -> "alice" { is(alice). }
    subject -> "bob"   { is(bob). }
    action  -> "read"  { is(read). }
    action  -> "write" { is(write). }

Annotations ``@i`` refer to the i-th symbol of the production's
right-hand side, counting *all* symbols (terminals included), 1-indexed,
as in the paper.  Brace matching is depth-aware, so ASP choice rules
(``{ a ; b }``) inside an annotation block are fine.  ``|`` alternatives
are allowed; a brace block binds to the alternative immediately before
it.  ``%`` comments are handled by the ASP parser inside blocks; use
``#`` for comments outside blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asp.parser import parse_program
from repro.asp.rules import Program
from repro.errors import GrammarSyntaxError
from repro.grammar.cfg import CFG, Production
from repro.grammar.cfg_parser import _parse_rhs
from repro.asg.annotated import ASG

__all__ = ["parse_asg"]


def _strip_comments(text: str) -> str:
    """Remove ``#`` comments outside brace blocks (keep ASP ``%`` intact)."""
    out: List[str] = []
    depth = 0
    for line in text.splitlines():
        if depth == 0:
            cut = line.find("#")
            if cut != -1:
                line = line[:cut]
        depth += line.count("{") - line.count("}")
        out.append(line)
    return "\n".join(out)


def _scan(text: str) -> List[Tuple[str, Optional[str]]]:
    """Split source text into (production text, annotation text) pairs.

    A production starts at ``lhs ->`` or a ``|`` continuation and runs
    until ``{``, ``|``, or a newline at depth 0.
    """
    entries: List[Tuple[str, Optional[str]]] = []
    pos = 0
    n = len(text)
    current: List[str] = []
    pending_lhs: Optional[str] = None

    def flush(annotation: Optional[str]) -> None:
        nonlocal pending_lhs
        chunk = "".join(current).strip()
        current.clear()
        if not chunk and annotation is None:
            return
        if chunk.startswith("|"):
            if pending_lhs is None:
                raise GrammarSyntaxError("'|' continuation without a preceding rule")
            chunk = f"{pending_lhs} -> {chunk[1:].strip()}"
        if "->" not in chunk and "::=" not in chunk:
            raise GrammarSyntaxError(f"expected 'lhs -> rhs', got {chunk!r}")
        arrow = "->" if "->" in chunk else "::="
        pending_lhs = chunk.split(arrow, 1)[0].strip()
        entries.append((chunk, annotation))

    while pos < n:
        char = text[pos]
        if char == "{":
            depth = 0
            start = pos
            while pos < n:
                if text[pos] == "{":
                    depth += 1
                elif text[pos] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                pos += 1
            if depth != 0:
                raise GrammarSyntaxError("unbalanced braces in annotation block")
            flush(text[start + 1 : pos])
            pos += 1
        elif char == "\n":
            lookahead = text[pos + 1 :].lstrip()
            joined = "".join(current).strip()
            if joined and not lookahead.startswith("|") and not lookahead.startswith("{"):
                flush(None)
            pos += 1
        elif char == "|" and "".join(current).strip():
            flush(None)
            current.append("|")
            pos += 1
        else:
            current.append(char)
            pos += 1
    if "".join(current).strip():
        flush(None)
    return entries


def parse_asg(text: str, strict: bool = True) -> ASG:
    """Parse ASG source text into an :class:`ASG`.

    ``strict=False`` defers structural defects (nonterminals without
    productions, out-of-range annotations) to the static analyzer
    (:func:`repro.analysis.lint_asg`) instead of raising.
    """
    entries = _scan(_strip_comments(text))
    if not entries:
        raise GrammarSyntaxError("empty grammar")

    nonterminals = set()
    order: List[Tuple[str, List[Tuple[str, bool]], Optional[str]]] = []
    for chunk, annotation in entries:
        arrow = "->" if "->" in chunk else "::="
        lhs, rhs_text = chunk.split(arrow, 1)
        lhs = lhs.strip()
        nonterminals.add(lhs)
        rhs_text = rhs_text.strip()
        if rhs_text in ("eps", "epsilon", ""):
            rhs: List[Tuple[str, bool]] = []
        else:
            rhs = _parse_rhs(rhs_text, 0)
        order.append((lhs, rhs, annotation))

    terminals = set()
    productions: List[Production] = []
    annotations: Dict[int, Program] = {}
    for index, (lhs, rhs, annotation) in enumerate(order):
        symbols = []
        for name, is_terminal in rhs:
            if is_terminal:
                terminals.add(name)
            elif name not in nonterminals:
                raise GrammarSyntaxError(
                    f"nonterminal {name!r} used but never defined "
                    f"(quote it if it is a terminal)"
                )
            symbols.append(name)
        productions.append(Production(lhs, symbols))
        if annotation and annotation.strip():
            annotations[index] = parse_program(annotation)

    start = order[0][0]
    cfg = CFG(nonterminals, terminals, productions, start, strict=strict)
    return ASG(cfg, annotations, strict=strict)
