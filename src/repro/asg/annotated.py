"""Answer Set Grammars (paper Section II.A, Definitions 1 and 2).

An *annotated production rule* is a CFG production ``n0 -> n1 ... nk``
together with an annotated ASP program ``P`` whose atom annotations are
integers between 1 and k, referring to the production's children.  An
ASG is a CFG whose productions are annotated.

This module holds the data model; the language semantics (``G[PT]``,
membership, ``G(C)``) lives in :mod:`repro.asg.semantics`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.asp.rules import Program, Rule
from repro.errors import GrammarError
from repro.grammar.cfg import CFG, Production

__all__ = ["ASG", "annotation_violations", "validate_annotation"]


def annotation_violations(production: Production, program: Program) -> List[tuple]:
    """The Definition-1 violations of a production-local program.

    Returns ``(rule, atom)`` pairs whose annotation is not a singleton
    ``(i,)`` with ``1 <= i <= k`` (``k`` the production's rhs length).
    Shared by :func:`validate_annotation` (which raises on the first)
    and the static ASG linter (which reports all as diagnostics).
    """
    arity = len(production.rhs)
    violations: List[tuple] = []
    for rule in program:
        atoms = []
        if hasattr(rule, "head") and rule.head is not None:
            atoms.append(rule.head)
        if hasattr(rule, "elements"):
            atoms.extend(rule.elements)
        for elem in rule.body:
            atom = getattr(elem, "atom", None)
            if atom is not None:
                atoms.append(atom)
        for atom in atoms:
            if atom.annotation is None:
                continue
            if len(atom.annotation) != 1 or not (1 <= atom.annotation[0] <= arity):
                violations.append((rule, atom))
    return violations


def validate_annotation(production: Production, program: Program) -> None:
    """Check Definition 1: every annotation is an integer in ``1..k``.

    (Our atoms carry trace-tuple annotations; in a production-local
    program each must be a singleton ``(i,)`` with ``1 <= i <= k``.)
    """
    violations = annotation_violations(production, program)
    if violations:
        rule, atom = violations[0]
        arity = len(production.rhs)
        raise GrammarError(
            f"annotation {atom.annotation} out of range 1..{arity} "
            f"in rule {rule!r} of production {production!r}"
        )


class ASG:
    """An Answer Set Grammar: a CFG plus per-production ASP annotations.

    ``annotations`` maps production ids (as assigned by the CFG) to ASP
    programs; productions without an entry have the empty annotation.

    ``strict`` (the default) validates every annotation program against
    Definition 1 at construction time; ``strict=False`` defers that to
    the static analyzer (:func:`repro.analysis.lint_asg`), which reports
    violations as diagnostics instead of raising.
    """

    def __init__(
        self,
        cfg: CFG,
        annotations: Optional[Mapping[int, Program]] = None,
        strict: bool = True,
    ):
        self.cfg = cfg
        self.strict = strict
        self.annotations: Dict[int, Program] = {}
        if annotations:
            for prod_id, program in annotations.items():
                if not (0 <= prod_id < len(cfg.productions)):
                    raise GrammarError(f"no production with id {prod_id}")
                if strict:
                    validate_annotation(cfg.production(prod_id), program)
                self.annotations[prod_id] = Program(list(program))

    # -- accessors -----------------------------------------------------------

    @property
    def start(self) -> str:
        return self.cfg.start

    def annotation(self, prod_id: int) -> Program:
        """The ASP program annotating production ``prod_id`` (possibly empty)."""
        return self.annotations.get(prod_id, Program())

    def underlying_cfg(self) -> CFG:
        """``G_CF`` — the CFG obtained by stripping all annotations."""
        return self.cfg

    # -- construction of derived grammars (paper Sections II.B, III.A) --------

    def with_rules(self, additions: Iterable[Tuple[Rule, int]]) -> "ASG":
        """``G : H`` — add each hypothesis rule to its production's annotation.

        ``additions`` is an iterable of ``(rule, production_id)`` pairs,
        matching the hypothesis representation of Definition 3.
        """
        annotations = {pid: Program(list(prog)) for pid, prog in self.annotations.items()}
        for rule, prod_id in additions:
            if not (0 <= prod_id < len(self.cfg.productions)):
                raise GrammarError(f"no production with id {prod_id}")
            program = annotations.setdefault(prod_id, Program())
            program.add(rule)
        result = ASG(self.cfg, strict=self.strict)
        for prod_id, program in annotations.items():
            if self.strict:
                validate_annotation(self.cfg.production(prod_id), program)
            result.annotations[prod_id] = program
        return result

    def with_context(self, context: Program, where: str = "all") -> "ASG":
        """``G(C)`` — add the context program to production annotations.

        ``where='all'`` follows Definition 3 literally (add ``C`` to
        every production's annotation, so any semantic rule can reference
        context atoms unannotated); ``where='start'`` adds it only to the
        start node's productions, as described in Section III.A.
        """
        if where not in ("all", "start"):
            raise ValueError("where must be 'all' or 'start'")
        if where == "all":
            targets = [p.prod_id for p in self.cfg.productions]
        else:
            targets = [p.prod_id for p in self.cfg.productions_for(self.cfg.start)]
        additions = [(rule, pid) for pid in targets for rule in context]
        return self.with_rules(additions)

    def __repr__(self) -> str:
        lines = [f"start: {self.cfg.start}"]
        for prod in self.cfg.productions:
            lines.append(f"  [{prod.prod_id}] {prod!r}")
            for rule in self.annotation(prod.prod_id):
                lines.append(f"        {rule!r}")
        return "\n".join(lines)
