"""Explainability at the policy-*generation* level (paper Section V.B).

The paper requires explanations "at two different levels: policy
learning, and policy enforcement".  Enforcement-level explanations live
in :mod:`repro.policy.explain`; this module covers the generation side:

* :func:`explain_rejection` — why is a policy string *not* in
  ``L(G(C))``?  For each parse tree, identify the learned/annotated
  constraints whose removal would make the tree's program satisfiable
  (the blocking conditions).
* :func:`context_counterfactuals` — under which *other* contexts would
  the string be valid?  ("You may not take the river route because it
  is night; by day the route would be permitted.")
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.asp.atoms import Atom
from repro.asp.rules import NormalRule, Program, Rule, fact
from repro.asp.solver import solve
from repro.asg.annotated import ASG
from repro.asg.semantics import accepts, reroot_rule, tree_program
from repro.grammar.cfg import SymbolString
from repro.grammar.earley import parse_trees
from repro.grammar.parse_tree import ParseTree

__all__ = [
    "BlockingConstraint",
    "RejectionExplanation",
    "explain_rejection",
    "context_counterfactuals",
]


class BlockingConstraint(NamedTuple):
    """A constraint that blocks one parse tree of the rejected string."""

    rule_text: str
    production_id: int
    trace: Tuple[int, ...]


class RejectionExplanation:
    """Why a string is outside ``L(G(C))``."""

    def __init__(
        self,
        tokens: SymbolString,
        syntactic: bool,
        blockers_per_tree: List[List[BlockingConstraint]],
    ):
        self.tokens = tokens
        self.syntactic = syntactic
        self.blockers_per_tree = blockers_per_tree

    def text(self) -> str:
        string = " ".join(self.tokens)
        if self.syntactic:
            return f"{string!r} is not in the policy language (syntax)."
        lines = [f"{string!r} is syntactically valid but semantically rejected:"]
        for index, blockers in enumerate(self.blockers_per_tree):
            if len(self.blockers_per_tree) > 1:
                lines.append(f"  parse {index + 1}:")
            if not blockers:
                lines.append(
                    "    rejected by an interaction of conditions "
                    "(no single constraint is responsible)"
                )
            for blocker in blockers:
                lines.append(
                    f"    {blocker.rule_text} (production {blocker.production_id})"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        total = sum(len(b) for b in self.blockers_per_tree)
        return f"RejectionExplanation({' '.join(self.tokens)!r}, {total} blockers)"


def _is_constraint(rule: Rule) -> bool:
    return isinstance(rule, NormalRule) and rule.head is None


def explain_rejection(
    asg: ASG,
    tokens: Sequence[str],
    context: Optional[Program] = None,
    max_trees: int = 16,
) -> Optional[RejectionExplanation]:
    """Explain why ``tokens ∉ L(G(C))``; None if it is actually valid.

    For each parse tree, each *constraint* in the induced program is
    tested individually: dropping it and checking satisfiability.  A
    constraint whose removal (alone) restores an answer set is a
    blocker.  Non-constraint causes (e.g. odd loops) yield an empty
    blocker list for that tree.
    """
    grammar = asg if context is None else asg.with_context(context)
    tokens = tuple(tokens)
    trees = parse_trees(grammar.cfg, tokens, max_trees=max_trees)
    if not trees:
        return RejectionExplanation(tokens, syntactic=True, blockers_per_tree=[])
    blockers_per_tree: List[List[BlockingConstraint]] = []
    any_satisfiable = False
    for tree in trees:
        # Build the program with provenance: (rule, prod_id, trace).
        pieces: List[Tuple[Rule, int, Tuple[int, ...]]] = []
        for node, trace in tree.interior_nodes():
            assert node.production is not None
            for rule in grammar.annotation(node.production.prod_id):
                pieces.append(
                    (reroot_rule(rule, trace), node.production.prod_id, trace)
                )
        program = Program([piece[0] for piece in pieces])
        if solve(program, max_models=1):
            any_satisfiable = True
            break
        blockers: List[BlockingConstraint] = []
        for index, (rule, prod_id, trace) in enumerate(pieces):
            if not _is_constraint(rule):
                continue
            reduced = Program(
                [p[0] for j, p in enumerate(pieces) if j != index]
            )
            if solve(reduced, max_models=1):
                blockers.append(BlockingConstraint(repr(rule), prod_id, trace))
        blockers_per_tree.append(blockers)
    if any_satisfiable:
        return None
    return RejectionExplanation(tokens, syntactic=False, blockers_per_tree=blockers_per_tree)


def context_counterfactuals(
    asg: ASG,
    tokens: Sequence[str],
    context_atoms: Iterable[Atom],
    current: Optional[Program] = None,
    max_changes: int = 2,
    max_results: int = 5,
) -> List[Tuple[frozenset, bool]]:
    """Context flips that change the string's validity.

    ``context_atoms`` is the universe of boolean context facts to toggle.
    Returns up to ``max_results`` minimal fact-sets (as frozensets of
    atoms *present*) whose adoption flips validity, each with the new
    validity value — the generation-level analogue of the paper's
    counterfactual explanations.
    """
    atoms = list(context_atoms)
    current_facts = frozenset(current.facts()) if current is not None else frozenset()
    base_context = Program([fact(a) for a in sorted(current_facts, key=repr)])
    originally_valid = accepts(asg.with_context(base_context), tuple(tokens))

    results: List[Tuple[frozenset, bool]] = []
    seen_supersets: List[frozenset] = []
    for size in range(1, max_changes + 1):
        for combo in itertools.combinations(atoms, size):
            flipped = set(current_facts)
            for atom in combo:
                if atom in flipped:
                    flipped.discard(atom)
                else:
                    flipped.add(atom)
            flip_key = frozenset(combo)
            if any(prev <= flip_key for prev in seen_supersets):
                continue
            program = Program([fact(a) for a in sorted(flipped, key=repr)])
            valid = accepts(asg.with_context(program), tuple(tokens))
            if valid != originally_valid:
                results.append((frozenset(flipped), valid))
                seen_supersets.append(flip_key)
                if len(results) >= max_results:
                    return results
    return results
