"""Context-free grammars.

A CFG is a tuple ``(N, T, PR, S)`` (paper Section II.A): nonterminal
symbols, terminal symbols, production rules ``n0 -> n1 ... nk``, and a
start symbol.  Symbols are plain strings; terminals and nonterminals are
distinguished by membership in the grammar's symbol sets, and in the
text format (:mod:`repro.grammar.cfg_parser`) terminals are quoted.

Strings of the language are tuples of terminal symbols (tokens), e.g.
``("allow", "alice", "read")``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import GrammarError

__all__ = ["Production", "CFG"]

Symbol = str
SymbolString = Tuple[Symbol, ...]


class Production:
    """A production rule ``lhs -> rhs`` with a stable integer id.

    Ids are assigned by the owning :class:`CFG` and are what the ASG
    hypothesis space uses to say *which* production a learned rule may be
    attached to (paper Definition 3).
    """

    __slots__ = ("lhs", "rhs", "prod_id")

    def __init__(self, lhs: Symbol, rhs: Sequence[Symbol], prod_id: int = -1):
        self.lhs = lhs
        self.rhs: SymbolString = tuple(rhs)
        self.prod_id = prod_id

    def __repr__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else "eps"
        return f"{self.lhs} -> {rhs}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Production)
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.rhs))


class CFG:
    """A context-free grammar ``(nonterminals, terminals, productions, start)``.

    ``strict`` (the default) preserves the historical construction-time
    validation: nonterminals without productions raise
    :class:`~repro.errors.GrammarError`.  With ``strict=False``
    construction always succeeds and such defects are left to the static
    analyzer (:func:`repro.analysis.lint_cfg`), which reports them as
    diagnostics with stable codes instead of hard failures.
    """

    def __init__(
        self,
        nonterminals: Iterable[Symbol],
        terminals: Iterable[Symbol],
        productions: Iterable[Production],
        start: Symbol,
        strict: bool = True,
    ):
        self.nonterminals: FrozenSet[Symbol] = frozenset(nonterminals)
        self.terminals: FrozenSet[Symbol] = frozenset(terminals)
        if self.nonterminals & self.terminals:
            overlap = sorted(self.nonterminals & self.terminals)
            raise GrammarError(f"symbols are both terminal and nonterminal: {overlap}")
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} is not a nonterminal")
        self.start = start
        self.productions: List[Production] = []
        self._by_lhs: Dict[Symbol, List[Production]] = {}
        for prod in productions:
            self._add(prod)
        for nt in self.nonterminals:
            self._by_lhs.setdefault(nt, [])
        if strict:
            self._validate()

    def _add(self, prod: Production) -> None:
        if prod.lhs not in self.nonterminals:
            raise GrammarError(f"production lhs {prod.lhs!r} is not a nonterminal")
        for sym in prod.rhs:
            if sym not in self.nonterminals and sym not in self.terminals:
                raise GrammarError(f"unknown symbol {sym!r} in production {prod!r}")
        registered = Production(prod.lhs, prod.rhs, len(self.productions))
        self.productions.append(registered)
        self._by_lhs.setdefault(prod.lhs, []).append(registered)

    def _validate(self) -> None:
        unproductive = [
            nt for nt in sorted(self.nonterminals) if not self._by_lhs.get(nt)
        ]
        if unproductive:
            raise GrammarError(f"nonterminals without productions: {unproductive}")

    def productions_for(self, nonterminal: Symbol) -> List[Production]:
        """All productions whose left-hand side is ``nonterminal``."""
        return self._by_lhs.get(nonterminal, [])

    def production(self, prod_id: int) -> Production:
        return self.productions[prod_id]

    def is_terminal(self, symbol: Symbol) -> bool:
        return symbol in self.terminals

    def reachable_set(self) -> Set[Symbol]:
        """Symbols reachable from the start symbol (terminals included)."""
        reachable: Set[Symbol] = {self.start}
        frontier = [self.start]
        while frontier:
            symbol = frontier.pop()
            for prod in self._by_lhs.get(symbol, ()):
                for sym in prod.rhs:
                    if sym not in reachable:
                        reachable.add(sym)
                        if sym in self.nonterminals:
                            frontier.append(sym)
        return reachable

    def generating_set(self) -> Set[Symbol]:
        """Nonterminals that derive at least one terminal string.

        A nonterminal outside this set is *unproductive*: it has no
        productions at all, or every production loops through another
        unproductive nonterminal.
        """
        generating: Set[Symbol] = set()
        changed = True
        while changed:
            changed = False
            for prod in self.productions:
                if prod.lhs in generating:
                    continue
                if all(
                    sym in self.terminals or sym in generating for sym in prod.rhs
                ):
                    generating.add(prod.lhs)
                    changed = True
        return generating

    def nullable_set(self) -> Set[Symbol]:
        """Nonterminals that derive the empty string."""
        nullable: Set[Symbol] = set()
        changed = True
        while changed:
            changed = False
            for prod in self.productions:
                if prod.lhs in nullable:
                    continue
                if all(sym in nullable for sym in prod.rhs):
                    nullable.add(prod.lhs)
                    changed = True
        return nullable

    def tokenize(self, text: str) -> SymbolString:
        """Split whitespace-separated source text into a token string,
        checking every token is a terminal of this grammar."""
        tokens = tuple(text.split())
        for token in tokens:
            if token not in self.terminals:
                raise GrammarError(f"token {token!r} is not a terminal of this grammar")
        return tokens

    def __repr__(self) -> str:
        lines = [f"start: {self.start}"]
        lines += [f"  [{p.prod_id}] {p!r}" for p in self.productions]
        return "\n".join(lines)
