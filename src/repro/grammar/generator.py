"""Language enumeration: generate strings and parse trees of a CFG.

The generative-policy setting needs to *enumerate* the policies a
grammar admits (the PReP "generates the policies for the AMS", paper
Section III.A).  Strings are enumerated by breadth-first search over
*sentential forms* (leftmost expansion) with visited-state
deduplication, which keeps even nullable cyclic grammars
(``s -> s s | eps``) finite; parse trees are recovered per string with
the Earley extractor.

Bounds: ``max_length`` on the yielded string length, ``max_form_slack``
on how much longer than ``max_length`` an intermediate sentential form
may grow (derivations that must pass through longer forms are missed —
irrelevant for policy grammars, documented for completeness), and
``max_steps`` on total expansion work.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional, Set, Tuple

from repro.errors import GrammarError
from repro.grammar.cfg import CFG, Production, Symbol, SymbolString
from repro.grammar.earley import parse_trees
from repro.grammar.parse_tree import ParseTree

__all__ = ["generate_trees", "generate_strings"]


def _min_lengths(grammar: CFG) -> dict:
    """Minimum terminal-yield length per nonterminal (infinity if none)."""
    inf = float("inf")
    min_len = {nt: inf for nt in grammar.nonterminals}
    changed = True
    while changed:
        changed = False
        for prod in grammar.productions:
            total = 0
            for sym in prod.rhs:
                total += 1 if sym in grammar.terminals else min_len[sym]
            if total < min_len[prod.lhs]:
                min_len[prod.lhs] = total
                changed = True
    return min_len


def generate_strings(
    grammar: CFG,
    max_length: int = 12,
    max_strings: int = 10_000,
    max_steps: int = 1_000_000,
    max_form_slack: int = 8,
) -> Iterator[SymbolString]:
    """Yield distinct strings of the CFG language, shortest-form first."""
    min_len = _min_lengths(grammar)

    def min_yield(form: Tuple[Symbol, ...]) -> float:
        total = 0.0
        for sym in form:
            total += 1 if sym in grammar.terminals else min_len[sym]
        return total

    start_form = (grammar.start,)
    if min_yield(start_form) > max_length:
        return
    form_cap = max_length + max_form_slack
    queue: deque = deque([start_form])
    visited: Set[Tuple[Symbol, ...]] = {start_form}
    yielded: Set[SymbolString] = set()
    steps = 0
    while queue:
        steps += 1
        if steps > max_steps:
            raise GrammarError(f"generation exceeded {max_steps} expansion steps")
        form = queue.popleft()
        expand_at = None
        for index, sym in enumerate(form):
            if sym in grammar.nonterminals:
                expand_at = index
                break
        if expand_at is None:
            if len(form) <= max_length and form not in yielded:
                yielded.add(form)
                yield form
                if len(yielded) >= max_strings:
                    return
            continue
        head = form[:expand_at]
        tail = form[expand_at + 1 :]
        for prod in grammar.productions_for(form[expand_at]):
            new_form = head + prod.rhs + tail
            if len(new_form) > form_cap:
                continue
            if min_yield(new_form) > max_length:
                continue
            if new_form not in visited:
                visited.add(new_form)
                queue.append(new_form)


def generate_trees(
    grammar: CFG,
    max_length: int = 12,
    max_trees: int = 10_000,
    max_steps: int = 1_000_000,
    max_trees_per_string: int = 64,
) -> Iterator[ParseTree]:
    """Yield parse trees of the language, grouped by string, shortest first.

    For each generated string, up to ``max_trees_per_string`` distinct
    parse trees are produced (ambiguous grammars have several; the ASG
    layer needs them all because any one may carry the satisfiable
    annotation program).
    """
    produced = 0
    for string in generate_strings(
        grammar, max_length=max_length, max_strings=max_trees, max_steps=max_steps
    ):
        for tree in parse_trees(grammar, string, max_trees=max_trees_per_string):
            yield tree
            produced += 1
            if produced >= max_trees:
                return
