"""Text format for context-free grammars.

One rule per line; alternatives with ``|``; terminals quoted; the first
rule's left-hand side is the start symbol; ``#`` starts a comment;
``eps`` denotes the empty right-hand side:

.. code-block:: none

    policy  -> "allow" subject action | "deny" subject action
    subject -> "alice" | "bob"
    action  -> "read" | "write"

Continuation lines starting with ``|`` extend the previous rule.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.errors import GrammarSyntaxError
from repro.grammar.cfg import CFG, Production

__all__ = ["parse_cfg"]

_TOKEN_RE = re.compile(r'"([^"]*)"|([A-Za-z_][A-Za-z0-9_]*)')
_ARROW_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:->|::=)\s*(.*)$")


def _parse_rhs(text: str, line_no: int) -> List[Tuple[str, bool]]:
    """Parse one alternative into (symbol, is_terminal) pairs."""
    symbols: List[Tuple[str, bool]] = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise GrammarSyntaxError(
                f"line {line_no}: cannot parse RHS near {text[pos:pos + 20]!r}"
            )
        if match.group(1) is not None:
            symbols.append((match.group(1), True))
        else:
            symbols.append((match.group(2), False))
        pos = match.end()
    return symbols


def parse_cfg(text: str, strict: bool = True) -> CFG:
    """Parse grammar source text into a :class:`CFG`.

    ``strict=False`` defers structural defects (nonterminals without
    productions) to the static analyzer instead of raising.
    """
    raw_rules: List[Tuple[str, List[List[Tuple[str, bool]]]]] = []
    current_lhs = None
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("|"):
            if current_lhs is None:
                raise GrammarSyntaxError(f"line {line_no}: continuation without a rule")
            alternatives = stripped[1:]
            lhs = current_lhs
        else:
            match = _ARROW_RE.match(line)
            if match is None:
                raise GrammarSyntaxError(
                    f"line {line_no}: expected 'lhs -> rhs', got {stripped!r}"
                )
            lhs = match.group(1)
            alternatives = match.group(2)
            current_lhs = lhs
        for alt in alternatives.split("|"):
            alt = alt.strip()
            if alt in ("eps", "epsilon", ""):
                rhs: List[Tuple[str, bool]] = []
            else:
                rhs = _parse_rhs(alt, line_no)
            raw_rules.append((lhs, [rhs]))

    if not raw_rules:
        raise GrammarSyntaxError("empty grammar")

    nonterminals: Set[str] = {lhs for lhs, __ in raw_rules}
    terminals: Set[str] = set()
    productions: List[Production] = []
    for lhs, alternatives in raw_rules:
        for rhs in alternatives:
            symbols = []
            for name, is_terminal in rhs:
                if is_terminal:
                    terminals.add(name)
                elif name not in nonterminals:
                    raise GrammarSyntaxError(
                        f"nonterminal {name!r} used but never defined "
                        f"(quote it if it is a terminal)"
                    )
                symbols.append(name)
            productions.append(Production(lhs, symbols))
    start = raw_rules[0][0]
    return CFG(nonterminals, terminals, productions, start, strict=strict)
