"""Context-free grammar substrate: CFGs, Earley parsing, enumeration.

The ASG layer (:mod:`repro.asg`) builds on this package: a policy
language's *syntax* is a CFG here, and the ASG adds ASP annotations to
its productions.
"""

from repro.grammar.cfg import CFG, Production
from repro.grammar.cfg_parser import parse_cfg
from repro.grammar.earley import parse_trees, recognize
from repro.grammar.generator import generate_strings, generate_trees
from repro.grammar.parse_tree import ParseTree

__all__ = [
    "CFG",
    "Production",
    "parse_cfg",
    "recognize",
    "parse_trees",
    "generate_trees",
    "generate_strings",
    "ParseTree",
]
