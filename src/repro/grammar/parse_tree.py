"""Parse trees with traces.

Per the paper (Section II.A), each node of a parse tree is identified by
its *trace*: the root has trace ``[]``, the i-th child of the root has
trace ``[i]`` (1-indexed), and so on.  Traces are what the Answer Set
Grammar semantics uses to annotate atoms (``G[PT]`` in the paper).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.grammar.cfg import Production, Symbol, SymbolString

__all__ = ["ParseTree", "Trace"]

Trace = Tuple[int, ...]


class ParseTree:
    """A node of a parse tree.

    Terminal leaves have ``production is None`` and no children; interior
    nodes carry the production applied at that node, and their children
    correspond 1:1 (ordered) to the production's right-hand side.
    """

    __slots__ = ("symbol", "production", "children")

    def __init__(
        self,
        symbol: Symbol,
        production: Optional[Production] = None,
        children: Sequence["ParseTree"] = (),
    ):
        self.symbol = symbol
        self.production = production
        self.children: Tuple[ParseTree, ...] = tuple(children)
        if production is not None and len(self.children) != len(production.rhs):
            raise ValueError(
                f"production {production!r} expects {len(production.rhs)} children, "
                f"got {len(self.children)}"
            )

    @property
    def is_leaf(self) -> bool:
        return self.production is None

    def yield_string(self) -> SymbolString:
        """The terminal string this tree derives (left-to-right leaf concatenation)."""
        if self.is_leaf:
            return (self.symbol,)
        out: List[Symbol] = []
        for child in self.children:
            out.extend(child.yield_string())
        return tuple(out)

    def nodes_with_traces(self, prefix: Trace = ()) -> Iterator[Tuple["ParseTree", Trace]]:
        """Yield every node along with its trace, depth-first pre-order.

        The root's trace is the empty tuple; the i-th child of a node with
        trace ``t`` has trace ``t + (i,)`` with ``i`` starting at 1.
        """
        yield self, prefix
        for index, child in enumerate(self.children, start=1):
            yield from child.nodes_with_traces(prefix + (index,))

    def interior_nodes(self) -> Iterator[Tuple["ParseTree", Trace]]:
        """Nonterminal nodes (those carrying a production) with traces."""
        for node, trace in self.nodes_with_traces():
            if node.production is not None:
                yield node, trace

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def pretty(self, indent: int = 0) -> str:
        """Human-readable multi-line rendering."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}'{self.symbol}'"
        lines = [f"{pad}{self.symbol}  [{self.production!r}]"]
        lines += [child.pretty(indent + 1) for child in self.children]
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"'{self.symbol}'"
        inner = " ".join(repr(c) for c in self.children)
        return f"({self.symbol} {inner})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ParseTree)
            and self.symbol == other.symbol
            and self.production == other.production
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.symbol, self.production, self.children))
