"""Earley recognition and parse-tree extraction.

Two cooperating pieces:

* :func:`recognize` — a standard Earley recognizer (with the Aycock &
  Horspool nullable fix) deciding membership in the CFG's language in
  O(n³).
* :func:`parse_trees` — extraction of *all* parse trees for a string, by
  memoized span enumeration.  Cyclic derivations (``A -> A``) would make
  the forest infinite; the extractor breaks cycles by refusing to re-enter
  an in-progress (symbol, span) pair, and callers can cap the number of
  trees with ``max_trees`` (exceeding the cap raises
  :class:`~repro.errors.AmbiguityLimitError` when ``strict`` is set).

The ASG semantics needs *every* parse tree of the underlying CFG
(a string is in the ASG language if *some* tree's induced program is
satisfiable), which is why full-forest extraction exists rather than a
single-parse algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import AmbiguityLimitError, GrammarError
from repro.grammar.cfg import CFG, Production, Symbol, SymbolString
from repro.grammar.parse_tree import ParseTree
from repro.runtime.budget import Budget, current_budget
from repro.telemetry import span as _tele_span

__all__ = ["recognize", "parse_trees"]


def recognize(
    grammar: CFG, tokens: SymbolString, budget: Optional[Budget] = None
) -> bool:
    """True iff ``tokens`` is in the language of ``grammar``'s CFG.

    ``budget`` (explicit or ambient) is ticked once per processed chart
    state, bounding the O(n³) worst case.  Under an ambient tracer an
    ``earley.recognize`` span records the chart size.
    """
    with _tele_span("earley.recognize", tokens=len(tokens)) as sp:
        accepted = _recognize(grammar, tokens, budget, sp)
        sp.set(accepted=accepted)
        return accepted


def _recognize(
    grammar: CFG,
    tokens: SymbolString,
    budget: Optional[Budget],
    sp,
) -> bool:
    if budget is None:
        budget = current_budget()
    for token in tokens:
        if token not in grammar.terminals:
            return False
    nullable = grammar.nullable_set()
    n = len(tokens)
    # State: (prod_id, dot, origin)
    chart: List[Set[Tuple[int, int, int]]] = [set() for _ in range(n + 1)]

    def add(index: int, state: Tuple[int, int, int], agenda: List) -> None:
        if state not in chart[index]:
            chart[index].add(state)
            agenda.append(state)

    agenda0: List[Tuple[int, int, int]] = []
    for prod in grammar.productions_for(grammar.start):
        add(0, (prod.prod_id, 0, 0), agenda0)

    for i in range(n + 1):
        agenda = agenda0 if i == 0 else list(chart[i])
        while agenda:
            if budget is not None:
                budget.tick()
            prod_id, dot, origin = agenda.pop()
            prod = grammar.production(prod_id)
            if dot < len(prod.rhs):
                symbol = prod.rhs[dot]
                if symbol in grammar.nonterminals:
                    # predict
                    for next_prod in grammar.productions_for(symbol):
                        add(i, (next_prod.prod_id, 0, i), agenda)
                    if symbol in nullable:
                        add(i, (prod_id, dot + 1, origin), agenda)
                elif i < n and tokens[i] == symbol:
                    # scan (goes to chart[i+1]; processed in next iteration)
                    chart[i + 1].add((prod_id, dot + 1, origin))
            else:
                # complete
                completed_lhs = prod.lhs
                for other in list(chart[origin]):
                    o_prod_id, o_dot, o_origin = other
                    o_prod = grammar.production(o_prod_id)
                    if o_dot < len(o_prod.rhs) and o_prod.rhs[o_dot] == completed_lhs:
                        add(i, (o_prod_id, o_dot + 1, o_origin), agenda)
    sp.incr("earley.chart_states", sum(len(states) for states in chart))
    for prod in grammar.productions_for(grammar.start):
        if (prod.prod_id, len(prod.rhs), 0) in chart[n]:
            return True
    return False


class _TreeExtractor:
    """Enumerate all parse trees of each (nonterminal, span) pair."""

    def __init__(
        self,
        grammar: CFG,
        tokens: SymbolString,
        max_trees: int,
        budget: Optional[Budget] = None,
    ):
        self.grammar = grammar
        self.tokens = tokens
        self.max_trees = max_trees
        self.budget = budget
        self._memo: Dict[Tuple[Symbol, int, int], List[ParseTree]] = {}
        self._active: Set[Tuple[Symbol, int, int]] = set()
        self.truncated = False

    def trees(self, symbol: Symbol, start: int, end: int) -> List[ParseTree]:
        if self.budget is not None:
            self.budget.tick()
        key = (symbol, start, end)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._active:
            # cyclic derivation (e.g. A -> A): contribute no *additional*
            # trees beyond the acyclic ones already being built.
            return []
        self._active.add(key)
        out: List[ParseTree] = []
        capped = False
        for prod in self.grammar.productions_for(symbol):
            for children in self._match_rhs(prod.rhs, 0, start, end):
                out.append(ParseTree(symbol, prod, children))
                if len(out) >= self.max_trees:
                    capped = True
                    break
            if capped:
                break
        self._active.discard(key)
        if capped:
            # the span's forest was cut short: later callers must not
            # trust the memo as exhaustive, but the capped list is a
            # valid sample of the forest
            self.truncated = True
        self._memo[key] = out
        return out

    def _match_rhs(
        self, rhs: Tuple[Symbol, ...], index: int, start: int, end: int
    ) -> Iterator[List[ParseTree]]:
        """Yield child lists matching rhs[index:] against tokens[start:end]."""
        if index == len(rhs):
            if start == end:
                yield []
            return
        symbol = rhs[index]
        remaining = len(rhs) - index - 1
        if symbol in self.grammar.terminals:
            if start < end and self.tokens[start] == symbol:
                for rest in self._match_rhs(rhs, index + 1, start + 1, end):
                    yield [ParseTree(symbol)] + rest
            return
        # nonterminal: try every split point, leaving at least 0 tokens
        # for each remaining symbol.
        for split in range(start, end + 1):
            if end - split < 0:
                continue
            subtrees = self.trees(symbol, start, split)
            if not subtrees:
                continue
            for rest in self._match_rhs(rhs, index + 1, split, end):
                for subtree in subtrees:
                    yield [subtree] + rest


def parse_trees(
    grammar: CFG,
    tokens: SymbolString,
    max_trees: int = 256,
    strict: bool = False,
    budget: Optional[Budget] = None,
) -> List[ParseTree]:
    """All parse trees of ``tokens`` (up to ``max_trees``).

    Returns an empty list for strings outside the language.  With
    ``strict=True``, exceeding ``max_trees`` raises
    :class:`AmbiguityLimitError` instead of silently truncating.
    ``budget`` (explicit or ambient) bounds recognition and extraction.
    """
    if budget is None:
        budget = current_budget()
    with _tele_span("earley.parse_trees", tokens=len(tokens)) as sp:
        for token in tokens:
            if token not in grammar.terminals:
                return []
        if not recognize(grammar, tokens, budget=budget):
            return []
        extractor = _TreeExtractor(grammar, tokens, max_trees, budget=budget)
        trees = extractor.trees(grammar.start, 0, len(tokens))
        sp.incr("earley.spans_explored", len(extractor._memo))
        if extractor.truncated:
            sp.set(truncated=True)
            if strict:
                raise AmbiguityLimitError(
                    f"more than {max_trees} parse trees for {' '.join(tokens)!r}"
                )
            trees = trees[:max_trees]
        sp.incr("earley.trees", len(trees))
        sp.set(ambiguity=len(trees))
        return trees
