"""Command-line interface for the static analyzer.

.. code-block:: none

    python -m repro.analysis lint policy.lp
    python -m repro.analysis lint grammar.asg other.lp --format json
    python -m repro.analysis lint examples/policies/

Files are dispatched on extension: ``.lp``/``.asp`` are ASP programs,
``.cfg``/``.grammar`` are context-free grammars, ``.asg`` are answer set
grammars.  Directories are walked recursively for those extensions.
Syntax errors are reported as ``SYN001`` error diagnostics rather than
tracebacks.  The exit status is 1 when any *error*-severity diagnostic
was emitted (warnings and infos alone exit 0), 2 on usage errors.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.errors import ASPSyntaxError, GrammarError, GrammarSyntaxError, Span
from repro.analysis.diagnostics import ERROR, Diagnostic, DiagnosticCollector

__all__ = ["main", "lint_path", "lint_paths", "LINTABLE_SUFFIXES"]

ASP_SUFFIXES = (".lp", ".asp")
CFG_SUFFIXES = (".cfg", ".grammar")
ASG_SUFFIXES = (".asg",)
LINTABLE_SUFFIXES = ASP_SUFFIXES + CFG_SUFFIXES + ASG_SUFFIXES


def _syntax_diagnostic(exc: Exception, source: str) -> Diagnostic:
    span = None
    line = getattr(exc, "line", 0)
    if line:
        span = Span(line, getattr(exc, "column", 0) or 1)
    return Diagnostic(
        "SYN001",
        ERROR,
        f"syntax error: {exc}",
        span=span,
        source=source,
        hint="fix the syntax error before further analysis",
    )


def _lint_asp_file(
    text: str, source: str, roots: Sequence[str] = ()
) -> List[Diagnostic]:
    from repro.asp.parser import parse_program
    from repro.analysis.asp_lint import lint_program

    try:
        program = parse_program(text)
    except ASPSyntaxError as exc:
        return [_syntax_diagnostic(exc, source)]
    return lint_program(program, source=source, roots=roots)


def _lint_cfg_file(text: str, source: str) -> List[Diagnostic]:
    from repro.grammar.cfg_parser import parse_cfg
    from repro.analysis.grammar_lint import lint_cfg

    try:
        cfg = parse_cfg(text, strict=False)
    except (GrammarSyntaxError, GrammarError) as exc:
        return [_syntax_diagnostic(exc, source)]
    return lint_cfg(cfg, source=source)


def _lint_asg_file(text: str, source: str) -> List[Diagnostic]:
    from repro.asg.asg_parser import parse_asg
    from repro.analysis.asg_lint import lint_asg

    try:
        asg = parse_asg(text, strict=False)
    except (ASPSyntaxError, GrammarSyntaxError, GrammarError) as exc:
        return [_syntax_diagnostic(exc, source)]
    return lint_asg(asg, source=source)


def lint_path(path: Path, roots: Sequence[str] = ()) -> List[Diagnostic]:
    """Lint one file or every lintable file under a directory."""
    if path.is_dir():
        out: List[Diagnostic] = []
        for child in sorted(path.rglob("*")):
            if child.is_file() and child.suffix in LINTABLE_SUFFIXES:
                out.extend(lint_path(child, roots=roots))
        return out
    source = str(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return [
            Diagnostic(
                "SYN001", ERROR, f"cannot read file: {exc}", source=source
            )
        ]
    if path.suffix in ASG_SUFFIXES:
        return _lint_asg_file(text, source)
    if path.suffix in CFG_SUFFIXES:
        return _lint_cfg_file(text, source)
    return _lint_asp_file(text, source, roots=roots)


def lint_paths(
    paths: Iterable, roots: Sequence[str] = ()
) -> List[Diagnostic]:
    """Lint several files/directories; the programmatic façade entry.

    Accepts paths as strings or :class:`~pathlib.Path` objects and
    returns the concatenated diagnostics in input order (directories
    are walked recursively, as with ``python -m repro.analysis lint``).
    Nonexistent paths produce a ``SYN001`` error diagnostic instead of
    raising, matching the CLI's behaviour.
    """
    out: List[Diagnostic] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            out.append(
                Diagnostic(
                    "SYN001",
                    ERROR,
                    "no such file or directory",
                    source=str(path),
                )
            )
            continue
        out.extend(lint_path(path, roots=roots))
    return out


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for ASP policies and answer set grammars.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser(
        "lint", help="lint .lp/.asp/.cfg/.grammar/.asg files or directories"
    )
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--root",
        action="append",
        default=[],
        metavar="PREDICATE",
        help="output predicate exempt from the unused-predicate lint "
        "(repeatable)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    collector = DiagnosticCollector()
    for raw in args.paths:
        path = Path(raw)
        if not path.exists():
            print(f"error: no such file or directory: {raw}")
            return 2
        collector.extend(lint_path(path, roots=args.root))

    if args.format == "json":
        print(collector.render_json())
    else:
        print(collector.render_text())
    return 1 if collector.has_errors() else 0
