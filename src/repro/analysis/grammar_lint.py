"""Static linter for context-free grammars.

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
GRM001    warning   nonterminal unreachable from the start symbol
GRM002    warning   unproductive nonterminal (no productions, or none
                    that derive a terminal string)
GRM003    error     the start symbol is unproductive — the policy
                    language is empty
========  ========  =====================================================

Construct grammars with ``CFG(..., strict=False)`` /
``parse_cfg(text, strict=False)`` to reach the linter instead of the
historical construction-time :class:`~repro.errors.GrammarError`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grammar.cfg import CFG
from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic

__all__ = ["lint_cfg"]


def lint_cfg(cfg: CFG, source: Optional[str] = None) -> List[Diagnostic]:
    """Run every grammar lint over ``cfg``."""
    out: List[Diagnostic] = []
    reachable = cfg.reachable_set()
    generating = cfg.generating_set()

    for nt in sorted(cfg.nonterminals - reachable):
        out.append(
            Diagnostic(
                "GRM001",
                WARNING,
                f"nonterminal '{nt}' is unreachable from the start symbol "
                f"'{cfg.start}'",
                source=source,
                hint="remove the nonterminal or reference it from a "
                "reachable production",
            )
        )
    for nt in sorted(cfg.nonterminals - generating):
        if not cfg.productions_for(nt):
            message = f"nonterminal '{nt}' has no productions"
            hint = "add at least one production for it"
        else:
            message = (
                f"nonterminal '{nt}' is unproductive: no derivation "
                f"reaches a terminal string"
            )
            hint = "add a non-recursive production for it"
        out.append(Diagnostic("GRM002", WARNING, message, source=source, hint=hint))
    if cfg.start not in generating:
        out.append(
            Diagnostic(
                "GRM003",
                ERROR,
                f"the start symbol '{cfg.start}' derives no terminal string: "
                f"the language is empty",
                source=source,
                hint="make the start symbol productive",
            )
        )
    return out
