"""Static linter for ASP programs.

Runs entirely on parsed :class:`~repro.asp.rules.Program` values —
before grounding, solving, or learning — and reports
:class:`~repro.analysis.diagnostics.Diagnostic` findings with stable
codes and source spans:

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
ASP001    error     unsafe rule (a variable cannot be bound); mirrors the
                    grounder's :class:`~repro.errors.UnsafeRuleError`
                    one-to-one via the shared binding schedule
ASP002    warning   unstratified program: negation inside a recursive
                    component (the solver keeps full stability checking)
ASP003    warning   predicate used in a body but never defined by any
                    head or fact (may legitimately come from a context
                    program at runtime — hence not an error)
ASP004    info      predicate defined but never used (modulo ``roots``,
                    the output predicates of the program)
ASP005    warning   predicate used with more than one arity
ASP006    warning   duplicate rule
ASP007    warning   trivially dead rule (body contains ``l`` and
                    ``not l``)
========  ========  =====================================================

The predicate-level stratification verdict is exposed via
:func:`stratification`; the solver computes the same property at the
ground-atom level (see :mod:`repro.analysis.graphs`) to unlock its
stability-check fast path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asp.grounder import binding_schedule
from repro.asp.rules import ChoiceRule, NormalRule, Program, Rule
from repro.analysis.diagnostics import ERROR, INFO, WARNING, Diagnostic
from repro.analysis.graphs import StratificationResult, check_stratification

__all__ = [
    "lint_program",
    "lint_rules",
    "stratification",
    "predicate_dependencies",
]


def _head_atoms(rule: Rule) -> List[Atom]:
    if isinstance(rule, NormalRule):
        return [rule.head] if rule.head is not None else []
    if isinstance(rule, ChoiceRule):
        return list(rule.elements)
    return []


def _body_literals(rule: Rule) -> List[Literal]:
    return [elem for elem in rule.body if isinstance(elem, Literal)]


def predicate_dependencies(
    program: Program,
) -> Tuple[Set[str], List[Tuple[str, str]], List[Tuple[str, str]]]:
    """The predicate dependency graph ``(nodes, positive, negative)``.

    Edges run from a head predicate to each predicate its rule body
    depends on; constraints and weak constraints have no head and
    contribute no edges.
    """
    nodes: Set[str] = set()
    positive: List[Tuple[str, str]] = []
    negative: List[Tuple[str, str]] = []
    for rule in program:
        heads = _head_atoms(rule)
        literals = _body_literals(rule)
        for atom in heads:
            nodes.add(atom.predicate)
        for literal in literals:
            nodes.add(literal.atom.predicate)
        for head in heads:
            for literal in literals:
                edge = (head.predicate, literal.atom.predicate)
                (positive if literal.positive else negative).append(edge)
    return nodes, positive, negative


def stratification(program: Program) -> StratificationResult:
    """The predicate-level stratification/tightness verdict of a program."""
    nodes, positive, negative = predicate_dependencies(program)
    return check_stratification(nodes, positive, negative)


# ---------------------------------------------------------------------------
# Rule-local checks (shared with the ASG annotation linter)


def _check_unsafe(rule: Rule, source: Optional[str]) -> Optional[Diagnostic]:
    __, unbound = binding_schedule(rule)
    if not unbound:
        return None
    names = ", ".join(sorted(unbound))
    return Diagnostic(
        "ASP001",
        ERROR,
        f"unsafe rule: variable(s) {names} cannot be bound in {rule!r}",
        span=rule.span,
        source=source,
        hint="bind each variable in a positive body literal or an '=' assignment",
    )


def _check_dead(rule: Rule, source: Optional[str]) -> Optional[Diagnostic]:
    literals = _body_literals(rule)
    positive = {lit.atom for lit in literals if lit.positive}
    for lit in literals:
        if not lit.positive and lit.atom in positive:
            return Diagnostic(
                "ASP007",
                WARNING,
                f"rule can never fire: body contains both "
                f"{lit.atom!r} and 'not {lit.atom!r}'",
                span=lit.atom.span or rule.span,
                source=source,
                hint="remove the rule or one of the contradictory literals",
            )
    return None


def lint_rules(
    program: Program, source: Optional[str] = None
) -> List[Diagnostic]:
    """The rule-local lints only: ASP001 (unsafe), ASP006 (duplicate),
    ASP007 (trivially dead).

    Used directly for production-local ASG annotation programs, where
    whole-program lints (definedness, stratification) would misfire —
    annotated atoms are defined by *other* productions' programs.
    """
    out: List[Diagnostic] = []
    seen: Dict[Rule, Rule] = {}
    for rule in program:
        unsafe = _check_unsafe(rule, source)
        if unsafe is not None:
            out.append(unsafe)
        dead = _check_dead(rule, source)
        if dead is not None:
            out.append(dead)
        if rule in seen:
            out.append(
                Diagnostic(
                    "ASP006",
                    WARNING,
                    f"duplicate rule: {rule!r}",
                    span=rule.span,
                    source=source,
                    hint="delete the repeated rule",
                )
            )
        else:
            seen[rule] = rule
    return out


# ---------------------------------------------------------------------------
# Whole-program checks


def _check_stratification(
    program: Program, source: Optional[str]
) -> List[Diagnostic]:
    result = stratification(program)
    if result.stratified:
        return []
    out: List[Diagnostic] = []
    reported: Set[Tuple[str, str]] = set()
    for head_pred, body_pred in result.offending_edges:
        if (head_pred, body_pred) in reported:
            continue
        reported.add((head_pred, body_pred))
        span = None
        for rule in program:
            if any(a.predicate == head_pred for a in _head_atoms(rule)):
                for literal in _body_literals(rule):
                    if not literal.positive and literal.atom.predicate == body_pred:
                        span = literal.atom.span or rule.span
                        break
            if span is not None:
                break
        out.append(
            Diagnostic(
                "ASP002",
                WARNING,
                f"program is unstratified: 'not {body_pred}' occurs inside a "
                f"recursive component containing '{head_pred}'",
                span=span,
                source=source,
                hint="break the negative cycle to enable the solver's "
                "stratified fast path",
            )
        )
    return out


def _check_definedness(
    program: Program, source: Optional[str], roots: Set[str]
) -> List[Diagnostic]:
    defined: Set[str] = set()
    used: Dict[str, Atom] = {}
    head_witness: Dict[str, Atom] = {}
    for rule in program:
        for atom in _head_atoms(rule):
            defined.add(atom.predicate)
            head_witness.setdefault(atom.predicate, atom)
        for literal in _body_literals(rule):
            used.setdefault(literal.atom.predicate, literal.atom)
    out: List[Diagnostic] = []
    for predicate in sorted(set(used) - defined):
        atom = used[predicate]
        out.append(
            Diagnostic(
                "ASP003",
                WARNING,
                f"predicate '{predicate}/{atom.arity}' is used but never "
                f"defined by any head or fact",
                span=atom.span,
                source=source,
                hint="add a defining rule/fact, or expect it from the "
                "context program",
            )
        )
    for predicate in sorted(defined - set(used) - roots):
        atom = head_witness[predicate]
        out.append(
            Diagnostic(
                "ASP004",
                INFO,
                f"predicate '{predicate}/{atom.arity}' is defined but never used",
                span=atom.span,
                source=source,
                hint="declare it a root/output predicate if it is the "
                "program's result",
            )
        )
    return out


def _check_arities(program: Program, source: Optional[str]) -> List[Diagnostic]:
    arities: Dict[str, Dict[int, Atom]] = {}
    for rule in program:
        atoms = _head_atoms(rule) + [lit.atom for lit in _body_literals(rule)]
        for atom in atoms:
            arities.setdefault(atom.predicate, {}).setdefault(atom.arity, atom)
    out: List[Diagnostic] = []
    for predicate in sorted(arities):
        seen = arities[predicate]
        if len(seen) < 2:
            continue
        ordered = sorted(seen)
        witness = seen[ordered[-1]]
        out.append(
            Diagnostic(
                "ASP005",
                WARNING,
                f"predicate '{predicate}' is used with multiple arities: "
                f"{', '.join(str(a) for a in ordered)}",
                span=witness.span,
                source=source,
                hint="atoms of different arity never unify; rename one of them",
            )
        )
    return out


def lint_program(
    program: Program,
    source: Optional[str] = None,
    roots: Iterable[str] = (),
) -> List[Diagnostic]:
    """Run every ASP lint over ``program``.

    ``source`` attributes the findings to a file or logical unit;
    ``roots`` names the output predicates exempt from the
    unused-predicate lint (ASP004) — the fragment has no ``#show``
    directive, so roots are declared by the caller.
    """
    root_set = set(roots)
    out = lint_rules(program, source)
    out.extend(_check_stratification(program, source))
    out.extend(_check_definedness(program, source, root_set))
    out.extend(_check_arities(program, source))
    return out
