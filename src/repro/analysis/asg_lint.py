"""Static linter for Answer Set Grammars.

Combines the grammar lints (GRM*) over the underlying CFG, the
rule-local ASP lints (ASP001/ASP006/ASP007) over every production's
annotation program, and the ASG-specific annotation lints:

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
ASG001    error     annotation references a child index out of range
                    (Definition 1: annotations must be ``@i`` with
                    ``1 <= i <= k`` for a production of rhs length k)
ASG002    warning   annotation ``p@i`` references child ``i`` but no
                    production of that child defines predicate ``p``
                    (a terminal child defines nothing)
========  ========  =====================================================

Findings inside a production's annotation program are attributed to the
logical source ``production <id> (<lhs> -> <rhs>)``, suffixed onto any
file-level ``source`` the caller supplies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.asg.annotated import ASG, annotation_violations
from repro.analysis.asp_lint import _body_literals, _head_atoms, lint_rules
from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic
from repro.analysis.grammar_lint import lint_cfg

__all__ = ["lint_asg"]


def _production_source(asg: ASG, prod_id: int, source: Optional[str]) -> str:
    label = f"production {prod_id} ({asg.cfg.production(prod_id)!r})"
    return f"{source}: {label}" if source else label


def _defined_by_nonterminal(asg: ASG) -> Dict[str, Set[str]]:
    """Predicates each nonterminal's productions define (heads + facts)."""
    defined: Dict[str, Set[str]] = {nt: set() for nt in asg.cfg.nonterminals}
    for prod in asg.cfg.productions:
        predicates = defined.setdefault(prod.lhs, set())
        for rule in asg.annotation(prod.prod_id):
            for atom in _head_atoms(rule):
                predicates.add(atom.predicate)
    return defined


def lint_asg(asg: ASG, source: Optional[str] = None) -> List[Diagnostic]:
    """Run grammar, annotation-program, and annotation-reference lints."""
    out = lint_cfg(asg.cfg, source=source)
    defined = _defined_by_nonterminal(asg)

    for prod in asg.cfg.productions:
        program = asg.annotation(prod.prod_id)
        if not len(program):
            continue
        prod_source = _production_source(asg, prod.prod_id, source)
        out.extend(lint_rules(program, source=prod_source))

        arity = len(prod.rhs)
        for rule, atom in annotation_violations(prod, program):
            out.append(
                Diagnostic(
                    "ASG001",
                    ERROR,
                    f"annotation {atom.annotation} on {atom.predicate!r} is "
                    f"out of range 1..{arity} in rule {rule!r}",
                    span=atom.span or rule.span,
                    source=prod_source,
                    hint="annotations must name a child position of this "
                    "production's right-hand side",
                )
            )

        # Annotated body atoms must be derivable by the referenced child.
        for rule in program:
            for literal in _body_literals(rule):
                atom = literal.atom
                trace = atom.annotation
                if trace is None or len(trace) != 1:
                    continue
                child = trace[0]
                if not (1 <= child <= arity):
                    continue  # already an ASG001
                symbol = prod.rhs[child - 1]
                if symbol in asg.cfg.terminals:
                    out.append(
                        Diagnostic(
                            "ASG002",
                            WARNING,
                            f"annotation '{atom.predicate}@{child}' references "
                            f"terminal child {child} ('{symbol}'), which "
                            f"defines no predicates",
                            span=atom.span or rule.span,
                            source=prod_source,
                            hint="point the annotation at a nonterminal child",
                        )
                    )
                elif atom.predicate not in defined.get(symbol, set()):
                    out.append(
                        Diagnostic(
                            "ASG002",
                            WARNING,
                            f"annotation '{atom.predicate}@{child}' references "
                            f"child {child} ('{symbol}'), but no production of "
                            f"'{symbol}' defines predicate '{atom.predicate}'",
                            span=atom.span or rule.span,
                            source=prod_source,
                            hint=f"define '{atom.predicate}' in an annotation "
                            f"of a '{symbol}' production",
                        )
                    )
    return out
