"""Static lints for learning tasks and their mode-bias hypothesis spaces.

========  ========  =====================================================
code      severity  finding
========  ========  =====================================================
MB001     warning   no hypothesis head predicate appears in any example
                    (LAS tasks), or a candidate rule targets a production
                    id outside the initial grammar (ASG tasks — error)
MB002     warning   a candidate rule's positive body literal uses a
                    predicate nothing can derive (not in the background,
                    not a hypothesis head, not in any example context),
                    so the candidate can never fire
========  ========  =====================================================

The task classes are matched structurally (``hasattr``) rather than by
import so that :mod:`repro.learning` can depend on this module without a
cycle: an object with ``background`` + ``hypothesis_space`` is treated
as a LAS task, one with ``initial`` + ``hypothesis_space`` as an ASG
learning task.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.analysis.diagnostics import ERROR, WARNING, Diagnostic

__all__ = ["lint_task"]


def _head_predicates(rule) -> Set[str]:
    predicates: Set[str] = set()
    head = getattr(rule, "head", None)
    if head is not None:
        predicates.add(head.predicate)
    for elem in getattr(rule, "elements", ()):
        predicates.add(elem.predicate)
    return predicates


def _positive_body_predicates(rule) -> Set[str]:
    predicates: Set[str] = set()
    for elem in rule.body:
        atom = getattr(elem, "atom", None)
        if atom is not None and getattr(elem, "positive", True):
            predicates.add(atom.predicate)
    return predicates


def _program_head_predicates(program: Iterable) -> Set[str]:
    predicates: Set[str] = set()
    for rule in program:
        predicates |= _head_predicates(rule)
    return predicates


def _candidate_source(candidate, source: Optional[str]) -> str:
    label = f"candidate {candidate!r}"
    return f"{source}: {label}" if source else label


def _lint_dead_bodies(task, derivable: Set[str], source: Optional[str]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for candidate in task.hypothesis_space:
        dead = sorted(_positive_body_predicates(candidate.rule) - derivable)
        for predicate in dead:
            out.append(
                Diagnostic(
                    "MB002",
                    WARNING,
                    f"body predicate '{predicate}' is never derivable "
                    f"(not in the background/grammar, hypothesis heads, or "
                    f"any example context), so this candidate can never fire",
                    span=getattr(candidate.rule, "span", None),
                    source=_candidate_source(candidate, source),
                    hint=f"define '{predicate}' or drop the mode declaration",
                )
            )
    return out


def _lint_las_task(task, source: Optional[str]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    hypothesis_heads: Set[str] = set()
    for candidate in task.hypothesis_space:
        hypothesis_heads |= _head_predicates(candidate.rule)

    example_predicates: Set[str] = set()
    context_heads: Set[str] = set()
    for example in list(task.positive) + list(task.negative):
        for atom in list(example.inclusions) + list(example.exclusions):
            example_predicates.add(atom.predicate)
        context_heads |= _program_head_predicates(example.context)

    if hypothesis_heads and example_predicates and not (
        hypothesis_heads & example_predicates
    ):
        out.append(
            Diagnostic(
                "MB001",
                WARNING,
                f"no hypothesis head predicate "
                f"({', '.join(sorted(hypothesis_heads))}) appears in any "
                f"example inclusion/exclusion "
                f"({', '.join(sorted(example_predicates))})",
                source=source,
                hint="learned rules cannot change example coverage unless "
                "their heads (or consequences) are observed; check the "
                "modeh declarations",
            )
        )

    derivable = (
        _program_head_predicates(task.background) | hypothesis_heads | context_heads
    )
    out.extend(_lint_dead_bodies(task, derivable, source))
    return out


def _lint_asg_task(task, source: Optional[str]) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    asg = task.initial
    n_productions = len(asg.cfg.productions)

    hypothesis_heads: Set[str] = set()
    for candidate in task.hypothesis_space:
        hypothesis_heads |= _head_predicates(candidate.rule)
        prod_id = candidate.prod_id
        if prod_id is not None and not (0 <= prod_id < n_productions):
            out.append(
                Diagnostic(
                    "MB001",
                    ERROR,
                    f"candidate targets production id {prod_id}, but the "
                    f"initial grammar has productions 0..{n_productions - 1}",
                    span=getattr(candidate.rule, "span", None),
                    source=_candidate_source(candidate, source),
                    hint="hypothesis elements must attach to an existing "
                    "production (Definition 3)",
                )
            )

    grammar_heads: Set[str] = set()
    for prod in asg.cfg.productions:
        grammar_heads |= _program_head_predicates(asg.annotation(prod.prod_id))
    context_heads: Set[str] = set()
    for example in list(task.positive) + list(task.negative):
        context_heads |= _program_head_predicates(example.context)

    derivable = grammar_heads | hypothesis_heads | context_heads
    out.extend(_lint_dead_bodies(task, derivable, source))
    return out


def lint_task(task, source: Optional[str] = None) -> List[Diagnostic]:
    """Lint a learning task (LAS or ASG, matched structurally)."""
    if hasattr(task, "background") and hasattr(task, "hypothesis_space"):
        return _lint_las_task(task, source)
    if hasattr(task, "initial") and hasattr(task, "hypothesis_space"):
        return _lint_asg_task(task, source)
    raise TypeError(
        f"not a learning task (expected 'background' or 'initial' plus "
        f"'hypothesis_space' attributes): {type(task).__name__}"
    )
