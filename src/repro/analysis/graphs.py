"""Dependency-graph algorithms shared by the linters and the solver.

Pure, self-contained graph machinery over hashable nodes: an iterative
Tarjan SCC decomposition, a stratification check (a program is
*stratified* iff no negative dependency edge lies inside a strongly
connected component of its full dependency graph), and a positive-cycle
(tightness) check.  The ASP linter runs these at the predicate level for
diagnostics; :class:`~repro.asp.solver.AnswerSetSolver` runs them at the
ground-atom level to decide whether the Gelfond–Lifschitz stability
check can be skipped.

This module deliberately imports nothing from the rest of the package so
the solver can depend on it without layering cycles.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set, Tuple

__all__ = ["tarjan_scc", "has_cycle", "StratificationResult", "check_stratification"]

Node = Hashable
Edge = Tuple[Node, Node]


def tarjan_scc(
    nodes: Iterable[Node], successors: Mapping[Node, Iterable[Node]]
) -> List[List[Node]]:
    """Strongly connected components in reverse topological order.

    Iterative Tarjan (explicit stack), so deep positive chains — e.g.
    the ground dependency graph of a long transitive closure — do not
    hit the recursion limit.
    """
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # (node, iterator over successors) work stack
        work: List[Tuple[Node, Iterable[Node]]] = [(root, iter(successors.get(root, ())))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(successors.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def has_cycle(nodes: Iterable[Node], successors: Mapping[Node, Iterable[Node]]) -> bool:
    """True iff the directed graph has a cycle (including self-loops)."""
    for component in tarjan_scc(nodes, successors):
        if len(component) > 1:
            return True
        node = component[0]
        if node in set(successors.get(node, ())):
            return True
    return False


class StratificationResult:
    """The verdict of a stratification check.

    * ``stratified`` — no negative edge inside any SCC;
    * ``sccs`` — the strongly connected components (reverse topological);
    * ``offending_edges`` — negative edges ``(from, to)`` whose endpoints
      share an SCC (empty iff stratified);
    * ``tight`` — the positive subgraph is acyclic.  For tight programs
      supported models coincide with stable models (Fages' theorem),
      which is what licenses the solver's stability-check fast path.
    """

    __slots__ = ("stratified", "sccs", "offending_edges", "tight")

    def __init__(
        self,
        stratified: bool,
        sccs: List[List[Node]],
        offending_edges: List[Edge],
        tight: bool,
    ):
        self.stratified = stratified
        self.sccs = sccs
        self.offending_edges = offending_edges
        self.tight = tight

    def __repr__(self) -> str:
        return (
            f"StratificationResult(stratified={self.stratified}, "
            f"tight={self.tight}, sccs={len(self.sccs)})"
        )


def check_stratification(
    nodes: Iterable[Node],
    positive_edges: Sequence[Edge],
    negative_edges: Sequence[Edge],
) -> StratificationResult:
    """Analyze a dependency graph with positive and negative edges.

    Edges run from the depending node (rule head) to the node depended
    on (body atom/predicate).  The program is stratified iff no negative
    edge has both endpoints in one SCC of the combined graph, and tight
    iff the positive-edge subgraph is acyclic.
    """
    node_list = list(nodes)
    node_set = set(node_list)
    combined: Dict[Node, List[Node]] = {}
    positive_only: Dict[Node, List[Node]] = {}
    for src, dst in positive_edges:
        node_set.add(src)
        node_set.add(dst)
        combined.setdefault(src, []).append(dst)
        positive_only.setdefault(src, []).append(dst)
    for src, dst in negative_edges:
        node_set.add(src)
        node_set.add(dst)
        combined.setdefault(src, []).append(dst)
    all_nodes = list(node_set)

    sccs = tarjan_scc(all_nodes, combined)
    component_of: Dict[Node, int] = {}
    for i, component in enumerate(sccs):
        for member in component:
            component_of[member] = i

    offending = [
        (src, dst)
        for src, dst in negative_edges
        if component_of.get(src) == component_of.get(dst)
    ]
    tight = not has_cycle(all_nodes, positive_only)
    return StratificationResult(not offending, sccs, offending, tight)
