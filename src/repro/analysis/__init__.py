"""Static analysis for policies, grammars, and learning tasks.

The paper's policy-checking point (PCP, Section IV) gates generated
policies before enforcement; this package supplies the *static* half of
that gate — analyses that run without grounding or solving:

* :mod:`repro.analysis.diagnostics` — :class:`Diagnostic` records with
  stable codes, severities, source spans, and text/JSON rendering;
* :mod:`repro.analysis.asp_lint` — safety, stratification, definedness,
  arity, and dead-rule lints over parsed ASP programs (ASP001–ASP007);
* :mod:`repro.analysis.grammar_lint` — reachability/productivity lints
  over CFGs (GRM001–GRM003);
* :mod:`repro.analysis.asg_lint` — annotation lints over answer set
  grammars (ASG001–ASG002);
* :mod:`repro.analysis.mode_lint` — mode-bias lints over learning tasks
  (MB001–MB002);
* :mod:`repro.analysis.graphs` — dependency-graph algorithms (Tarjan
  SCCs, stratification, tightness) shared with the solver's
  stability-check fast path.

Run the CLI with ``python -m repro.analysis lint <paths>``.
"""

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticCollector,
    diagnostics_from_json,
)
from repro.analysis.graphs import (
    StratificationResult,
    check_stratification,
    has_cycle,
    tarjan_scc,
)
from repro.analysis.asp_lint import (
    lint_program,
    lint_rules,
    predicate_dependencies,
    stratification,
)
from repro.analysis.grammar_lint import lint_cfg
from repro.analysis.asg_lint import lint_asg
from repro.analysis.mode_lint import lint_task
from repro.analysis.cli import lint_path, lint_paths, main

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "Diagnostic",
    "DiagnosticCollector",
    "diagnostics_from_json",
    "StratificationResult",
    "check_stratification",
    "has_cycle",
    "tarjan_scc",
    "lint_program",
    "lint_rules",
    "predicate_dependencies",
    "stratification",
    "lint_cfg",
    "lint_asg",
    "lint_task",
    "lint_path",
    "lint_paths",
    "main",
]
