"""The diagnostics core: stable-coded findings with source spans.

Every linter in :mod:`repro.analysis` reports its findings as
:class:`Diagnostic` values — a stable code (``ASP001``, ``GRM002``,
``ASG001``, ``MB001``, ...), a severity, a human message, an optional
source :class:`~repro.errors.Span`, and an optional fix hint.  The
:class:`DiagnosticCollector` accumulates them across linters and files
and renders them as text (one ``file:line:col: severity[CODE] message``
line each) or JSON (round-trippable via :func:`diagnostics_from_json`).

Severity semantics follow the paper's PCP contract (Figure 2): ``error``
diagnostics describe programs that will misbehave at ground/solve time
(unsafe rules, out-of-range ASG annotations, an empty policy language)
and are folded into :class:`~repro.agenp.pcp.CheckOutcome` rejections;
``warning`` and ``info`` diagnostics describe quality issues (the
Section V consistency/minimality/completeness axes) that do not block a
policy from reaching the repository.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import Span

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticCollector",
    "diagnostics_from_json",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


class Diagnostic:
    """One finding: a stable code, severity, message, and location.

    ``code`` is stable across releases (tools may filter on it);
    ``source`` names the file (or logical unit, e.g. ``production 3``)
    the finding belongs to; ``hint`` suggests a fix when one is known.
    """

    __slots__ = ("code", "severity", "message", "span", "source", "hint")

    def __init__(
        self,
        code: str,
        severity: str,
        message: str,
        span: Optional[Span] = None,
        source: Optional[str] = None,
        hint: Optional[str] = None,
    ):
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r}")
        self.code = code
        self.severity = severity
        self.message = message
        self.span = span
        self.source = source
        self.hint = hint

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def with_source(self, source: str) -> "Diagnostic":
        """A copy attributed to ``source`` (used when linting files)."""
        return Diagnostic(
            self.code, self.severity, self.message, self.span, source, self.hint
        )

    def format(self) -> str:
        """Render as one ``file:line:col: severity[CODE] message`` line."""
        prefix = self.source or "<program>"
        if self.span is not None:
            prefix = f"{prefix}:{self.span.line}:{self.span.col}"
        line = f"{prefix}: {self.severity}[{self.code}] {self.message}"
        if self.hint:
            line = f"{line} (hint: {self.hint})"
        return line

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            data["span"] = self.span.as_dict()
        if self.source is not None:
            data["source"] = self.source
        if self.hint is not None:
            data["hint"] = self.hint
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Diagnostic":
        span = data.get("span")
        return cls(
            str(data["code"]),
            str(data["severity"]),
            str(data["message"]),
            Span.from_dict(span) if isinstance(span, dict) else None,
            data.get("source"),  # type: ignore[arg-type]
            data.get("hint"),  # type: ignore[arg-type]
        )

    def sort_key(self) -> tuple:
        span = self.span
        return (
            self.source or "",
            span.line if span is not None else 0,
            span.col if span is not None else 0,
            _SEVERITY_RANK[self.severity],
            self.code,
        )

    def __repr__(self) -> str:
        return f"Diagnostic({self.format()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Diagnostic) and (
            (self.code, self.severity, self.message, self.span, self.source, self.hint)
            == (other.code, other.severity, other.message, other.span, other.source, other.hint)
        )

    def __hash__(self) -> int:
        return hash((self.code, self.severity, self.message, self.span, self.source))


class DiagnosticCollector:
    """Accumulates diagnostics across linters, files, and passes."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == INFO]

    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity] += 1
        return out

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered by source, position, severity, code."""
        return sorted(self.diagnostics, key=lambda d: d.sort_key())

    # -- renderers --------------------------------------------------------

    def render_text(self, summary: bool = True) -> str:
        """One line per diagnostic plus an ``N errors, M warnings`` tail."""
        lines = [d.format() for d in self.sorted()]
        if summary:
            counts = self.counts()
            lines.append(
                f"{counts[ERROR]} error(s), {counts[WARNING]} warning(s), "
                f"{counts[INFO]} info(s)"
            )
        return "\n".join(lines)

    def render_json(self, indent: Optional[int] = 2) -> str:
        """A JSON document round-trippable via :func:`diagnostics_from_json`."""
        payload = {
            "diagnostics": [d.as_dict() for d in self.sorted()],
            "counts": self.counts(),
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def __repr__(self) -> str:
        counts = self.counts()
        inner = " ".join(f"{k}={v}" for k, v in counts.items())
        return f"DiagnosticCollector({inner})"


def diagnostics_from_json(text: str) -> "DiagnosticCollector":
    """Parse :meth:`DiagnosticCollector.render_json` output back."""
    payload = json.loads(text)
    items = payload["diagnostics"] if isinstance(payload, dict) else payload
    return DiagnosticCollector(Diagnostic.from_dict(item) for item in items)
