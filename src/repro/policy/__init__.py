"""The policy layer: XACML-lite policies, evaluation, quality, explanations.

This package implements the *managed* side of the paper: the policies
the generative framework produces are evaluated here (PDP semantics),
quality-checked here (Section V.A's consistency / relevance /
minimality / completeness), conflict-resolved here, and explained here
(Section V.B counterfactuals).
"""

from repro.policy.conflicts import (
    ContextualResolver,
    deny_overrides,
    first_applicable,
    permit_overrides,
    priority_based,
    resolve,
)
from repro.policy.evaluation import (
    applicable_rules,
    evaluate_policy,
    evaluate_policy_set,
    evaluate_rule,
)
from repro.policy.enforceability import (
    AttributeCapability,
    EnforcementCapability,
    EnforceabilityReport,
    assess_enforceability,
    information_needs,
)
from repro.policy.risk import RiskAssessment, RiskModel, assess_risk, constant_harm
from repro.policy.goals import DeadlineGoal, GoalMonitor, GoalStatus, ThresholdGoal
from repro.policy.utility import UtilityPolicy
from repro.policy.xacml_io import (
    policies_from_xml,
    policies_to_xml,
    policy_from_xml,
    policy_to_xml,
)
from repro.policy.explain import (
    Counterfactual,
    DecisionExplanation,
    counterfactuals,
    explain_decision,
)
from repro.policy.model import (
    AttributeDomain,
    CategoricalDomain,
    Decision,
    DomainSchema,
    Effect,
    IntegerDomain,
    Request,
)
from repro.policy.quality import (
    Conflict,
    QualityReport,
    assess,
    find_conflicts,
    find_coverage_gaps,
    find_irrelevant,
    find_redundant,
    rules_overlap,
)
from repro.policy.xacml import Match, Policy, Target, XacmlRule

__all__ = [
    "Effect",
    "Decision",
    "Request",
    "AttributeDomain",
    "CategoricalDomain",
    "IntegerDomain",
    "DomainSchema",
    "Match",
    "Target",
    "XacmlRule",
    "Policy",
    "evaluate_rule",
    "evaluate_policy",
    "evaluate_policy_set",
    "applicable_rules",
    "Conflict",
    "QualityReport",
    "assess",
    "find_conflicts",
    "find_irrelevant",
    "find_redundant",
    "find_coverage_gaps",
    "rules_overlap",
    "resolve",
    "deny_overrides",
    "permit_overrides",
    "first_applicable",
    "priority_based",
    "ContextualResolver",
    "DecisionExplanation",
    "Counterfactual",
    "explain_decision",
    "counterfactuals",
    "AttributeCapability",
    "EnforcementCapability",
    "EnforceabilityReport",
    "assess_enforceability",
    "information_needs",
    "RiskModel",
    "RiskAssessment",
    "assess_risk",
    "constant_harm",
    "UtilityPolicy",
    "ThresholdGoal",
    "DeadlineGoal",
    "GoalMonitor",
    "GoalStatus",
    "policy_to_xml",
    "policy_from_xml",
    "policies_to_xml",
    "policies_from_xml",
]
