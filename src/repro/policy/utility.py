"""Utility-based policies (paper Section I's third policy type).

"Utility-based policies ... direct the managed parties to produce the
best consequence according to some value function, such as for example
maximizing the usage of certain resources."

A :class:`UtilityPolicy` is an ASP program with weak constraints: the
*options* are a one-of choice, the *value function* is the set of weak
constraints, and context facts modulate both.  ``choose`` returns the
cost-optimal option(s) for a context — the utility-based counterpart of
the constraint policies the rest of the framework generates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom
from repro.asp.parser import parse_program
from repro.asp.rules import ChoiceRule, Program, fact
from repro.asp.solver import CostVector, solve_optimal
from repro.asp.terms import Constant
from repro.core.contexts import Context
from repro.errors import PolicyError

__all__ = ["UtilityPolicy"]


class UtilityPolicy:
    """A choose-one-option policy ranked by weak constraints.

    ``options`` are the symbolic choices (``chosen(<option>)`` atoms are
    generated); ``value_rules`` is ASP text containing the utility model
    — weak constraints plus any helper rules — which may reference
    ``chosen/1`` and any context facts.

    Example::

        policy = UtilityPolicy(
            options=["main", "river", "narrow"],
            value_rules='''
                risk(main, 3). risk(river, 1). risk(narrow, 2).
                risk_override(river, 9) :- storm.
                overridden(R) :- risk_override(R, X).
                effective(R, W) :- risk_override(R, W).
                effective(R, W) :- risk(R, W), not overridden(R).
                :~ chosen(R), effective(R, W). [W]
            ''',
        )
        policy.choose(Context.from_text("storm."))   # -> ["narrow"]
    """

    def __init__(
        self,
        options: Sequence[str],
        value_rules: str,
        choice_predicate: str = "chosen",
    ):
        if not options:
            raise PolicyError("a utility policy needs at least one option")
        self.options = list(options)
        self.choice_predicate = choice_predicate
        self.value_program = parse_program(value_rules)

    def _program(self, context: Optional[Context]) -> Program:
        program = Program()
        atoms = [
            Atom(self.choice_predicate, [Constant(option)])
            for option in self.options
        ]
        program.add(ChoiceRule(atoms, lower=1, upper=1))
        program.extend(self.value_program)
        if context is not None:
            program.extend(context.program)
        return program

    def choose(self, context: Optional[Context] = None) -> List[str]:
        """The optimal option(s) under ``context`` (ties all returned)."""
        models, __ = solve_optimal(self._program(context))
        if not models:
            raise PolicyError(
                "utility policy is unsatisfiable under this context"
            )
        chosen: List[str] = []
        for model in models:
            for atom in model:
                if atom.predicate == self.choice_predicate and len(atom.args) == 1:
                    name = repr(atom.args[0])
                    if name not in chosen:
                        chosen.append(name)
        return sorted(chosen)

    def rank(self, context: Optional[Context] = None) -> List[Tuple[str, CostVector]]:
        """Every option with its cost vector, best first.

        Implemented by pinning each option in turn — useful for
        explaining *why* the chosen option won.
        """
        ranked: List[Tuple[str, CostVector]] = []
        for option in self.options:
            program = self._program(context)
            program.add(fact(Atom(self.choice_predicate, [Constant(option)])))
            models, cost = solve_optimal(program)
            if models:
                ranked.append((option, cost))
        ranked.sort(key=lambda pair: pair[1])
        return ranked
