"""Policy quality assessment (paper Section V.A; Bertino et al. [14]).

Four requirements, each with a detector:

* **Consistency** — no two rules with contradictory effects can apply to
  the same request.  Detected by symbolic overlap analysis of the rules'
  match sets against the declared attribute domains.
* **Relevance** — every policy applies to at least one possible request
  of the domain schema (and optionally to at least one request of an
  observed workload).
* **Minimality** — no rule is redundant: removing it leaves every
  decision unchanged.  A sound syntactic subsumption check flags rules
  whose match region is contained in an earlier same-effect rule; an
  exact semantic check verifies on the full request space.
* **Completeness** — every request of the schema receives a Permit or
  Deny (no NOT_APPLICABLE gaps).

The report structure feeds the AGENP Policy Checking Point's Quality
Checker (Figure 2).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.policy.evaluation import evaluate_policy, evaluate_policy_set
from repro.policy.model import Decision, DomainSchema, Request
from repro.policy.xacml import Match, Policy, Target, XacmlRule

__all__ = [
    "Conflict",
    "QualityReport",
    "rules_overlap",
    "find_conflicts",
    "find_irrelevant",
    "find_redundant",
    "find_coverage_gaps",
    "assess",
]


class Conflict:
    """Two rules with contradictory effects and overlapping applicability."""

    __slots__ = ("policy_a", "rule_a", "policy_b", "rule_b", "witness")

    def __init__(self, policy_a, rule_a, policy_b, rule_b, witness: Optional[Request]):
        self.policy_a = policy_a
        self.rule_a = rule_a
        self.policy_b = policy_b
        self.rule_b = rule_b
        self.witness = witness

    def __repr__(self) -> str:
        return (
            f"Conflict({self.policy_a}.{self.rule_a.rule_id} vs "
            f"{self.policy_b}.{self.rule_b.rule_id})"
        )


def _region(rule: XacmlRule, policy: Policy, schema: DomainSchema):
    """Allowed value sets per attribute for policy target + rule matches.

    Returns None when the conjunction is unsatisfiable within the schema.
    """
    region: Dict[Tuple[str, str], Set] = {}
    for match in policy.target.matches + rule.all_matches():
        key = (match.category, match.attribute)
        domain = schema.domain(*key)
        if domain is None:
            # attribute outside the schema: treat as unconstrained
            continue
        allowed = set(match.allowed_values(domain))
        if key in region:
            region[key] &= allowed
        else:
            region[key] = allowed
        if not region[key]:
            return None
    return region


def rules_overlap(
    policy_a: Policy,
    rule_a: XacmlRule,
    policy_b: Policy,
    rule_b: XacmlRule,
    schema: DomainSchema,
) -> Optional[Request]:
    """If the two rules can apply to one request, return a witness request."""
    region_a = _region(rule_a, policy_a, schema)
    region_b = _region(rule_b, policy_b, schema)
    if region_a is None or region_b is None:
        return None
    merged: Dict[Tuple[str, str], Set] = dict(region_a)
    for key, allowed in region_b.items():
        if key in merged:
            merged[key] = merged[key] & allowed
            if not merged[key]:
                return None
        else:
            merged[key] = set(allowed)
    # Build a witness over the full schema (unconstrained attributes take
    # any domain value).
    attributes: Dict[str, Dict[str, object]] = {}
    for category, attribute in schema.attributes():
        key = (category, attribute)
        if key in merged:
            value = sorted(merged[key], key=repr)[0]
        else:
            value = list(schema.domain(category, attribute).values())[0]
        attributes.setdefault(category, {})[attribute] = value
    return Request(attributes)


def find_conflicts(
    policies: Sequence[Policy], schema: DomainSchema
) -> List[Conflict]:
    """All pairs of contradictory-effect rules with overlapping regions.

    Within a single policy the combining algorithm resolves overlaps, so
    only *cross-policy* contradictions are reported, plus within-policy
    contradictions when the algorithm is ``first-applicable`` (where
    ordering silently masks the later rule).
    """
    conflicts: List[Conflict] = []
    indexed = [
        (policy, rule) for policy in policies for rule in policy.rules
    ]
    for (pol_a, rule_a), (pol_b, rule_b) in itertools.combinations(indexed, 2):
        if rule_a.effect == rule_b.effect:
            continue
        same_policy = pol_a.policy_id == pol_b.policy_id
        if same_policy and pol_a.combining != "first-applicable":
            continue
        witness = rules_overlap(pol_a, rule_a, pol_b, rule_b, schema)
        if witness is not None:
            conflicts.append(
                Conflict(pol_a.policy_id, rule_a, pol_b.policy_id, rule_b, witness)
            )
    return conflicts


def find_irrelevant(
    policies: Sequence[Policy],
    schema: DomainSchema,
    workload: Optional[Sequence[Request]] = None,
) -> List[str]:
    """Policy ids that can never produce a decision.

    With a ``workload``, relevance means applying to at least one
    workload request; otherwise it is checked symbolically against the
    schema.
    """
    irrelevant = []
    for policy in policies:
        if workload is not None:
            applies = any(
                evaluate_policy(policy, request)
                in (Decision.PERMIT, Decision.DENY)
                for request in workload
            )
        else:
            applies = any(
                _region(rule, policy, schema) is not None for rule in policy.rules
            )
        if not applies:
            irrelevant.append(policy.policy_id)
    return irrelevant


def find_redundant(
    policies: Sequence[Policy],
    schema: DomainSchema,
    exact: bool = False,
    max_requests: int = 200_000,
) -> List[Tuple[str, str]]:
    """Redundant rules as ``(policy id, rule id)`` pairs.

    The default syntactic check flags rule r2 subsumed by an earlier
    same-effect rule r1 of the same policy (r1's region contains r2's).
    With ``exact=True``, each flagged rule is verified semantically:
    dropping it must leave every decision over the schema unchanged.
    """
    redundant: List[Tuple[str, str]] = []
    for policy in policies:
        regions = [(rule, _region(rule, policy, schema)) for rule in policy.rules]
        for i, (rule_i, region_i) in enumerate(regions):
            if region_i is None:
                redundant.append((policy.policy_id, rule_i.rule_id))
                continue
            for j in range(i):
                rule_j, region_j = regions[j]
                if region_j is None or rule_j.effect != rule_i.effect:
                    continue
                if _contains(region_j, region_i, schema):
                    if not exact or _drop_is_safe(policy, rule_i, schema, max_requests):
                        redundant.append((policy.policy_id, rule_i.rule_id))
                    break
    return redundant


def _contains(outer: Dict, inner: Dict, schema: DomainSchema) -> bool:
    """Does region ``outer`` contain region ``inner``?"""
    for key, allowed in outer.items():
        domain = schema.domain(*key)
        full = set(domain.values()) if domain else None
        inner_allowed = inner.get(key, full)
        if inner_allowed is None:
            return False
        if not inner_allowed <= allowed:
            return False
    return True


def _drop_is_safe(
    policy: Policy, rule: XacmlRule, schema: DomainSchema, max_requests: int
) -> bool:
    remaining = [r for r in policy.rules if r.rule_id != rule.rule_id]
    if not remaining:
        return False
    reduced = Policy(policy.policy_id, remaining, policy.target, policy.combining)
    for request in schema.all_requests(max_requests=max_requests):
        if evaluate_policy(policy, request) != evaluate_policy(reduced, request):
            return False
    return True


def find_coverage_gaps(
    policies: Sequence[Policy],
    schema: DomainSchema,
    combining: str = "deny-overrides",
    max_requests: int = 200_000,
    max_gaps: int = 100,
) -> List[Request]:
    """Requests for which the policy set yields no Permit/Deny decision."""
    gaps: List[Request] = []
    for request in schema.all_requests(max_requests=max_requests):
        decision = evaluate_policy_set(policies, request, combining)
        if decision in (Decision.NOT_APPLICABLE, Decision.INDETERMINATE):
            gaps.append(request)
            if len(gaps) >= max_gaps:
                break
    return gaps


class QualityReport:
    """The combined result of the four quality checks."""

    def __init__(
        self,
        conflicts: List[Conflict],
        irrelevant: List[str],
        redundant: List[Tuple[str, str]],
        gaps: List[Request],
    ):
        self.conflicts = conflicts
        self.irrelevant = irrelevant
        self.redundant = redundant
        self.gaps = gaps

    @property
    def consistent(self) -> bool:
        return not self.conflicts

    @property
    def relevant(self) -> bool:
        return not self.irrelevant

    @property
    def minimal(self) -> bool:
        return not self.redundant

    @property
    def complete(self) -> bool:
        return not self.gaps

    @property
    def ok(self) -> bool:
        return self.consistent and self.relevant and self.minimal and self.complete

    def summary(self) -> Dict[str, int]:
        return {
            "conflicts": len(self.conflicts),
            "irrelevant": len(self.irrelevant),
            "redundant": len(self.redundant),
            "coverage_gaps": len(self.gaps),
        }

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.summary().items())
        return f"QualityReport({parts})"


def assess(
    policies: Sequence[Policy],
    schema: DomainSchema,
    workload: Optional[Sequence[Request]] = None,
    combining: str = "deny-overrides",
    check_completeness: bool = True,
    max_requests: int = 200_000,
) -> QualityReport:
    """Run all four quality checks and bundle the results."""
    gaps: List[Request] = []
    if check_completeness:
        gaps = find_coverage_gaps(
            policies, schema, combining, max_requests=max_requests
        )
    return QualityReport(
        conflicts=find_conflicts(policies, schema),
        irrelevant=find_irrelevant(policies, schema, workload),
        redundant=find_redundant(policies, schema),
        gaps=gaps,
    )
