"""Core policy-domain vocabulary: decisions, effects, attribute domains.

The paper distinguishes constraint, goal-based, and utility-based
policies (Section I).  This layer implements the constraint family in an
XACML-like attribute model — the family every experiment in the paper
exercises — while keeping the vocabulary (effects, decisions, requests)
generic enough for the other AGENP components.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import PolicyValidationError

__all__ = [
    "Effect",
    "Decision",
    "AttributeValue",
    "Request",
    "AttributeDomain",
    "CategoricalDomain",
    "IntegerDomain",
    "DomainSchema",
]

AttributeValue = Union[str, int]

CATEGORIES = ("subject", "resource", "action", "environment")


class Effect(enum.Enum):
    """The effect a rule prescribes when it applies."""

    PERMIT = "permit"
    DENY = "deny"

    def __repr__(self) -> str:
        return self.value


class Decision(enum.Enum):
    """The outcome of evaluating a request against a policy."""

    PERMIT = "permit"
    DENY = "deny"
    NOT_APPLICABLE = "not_applicable"
    INDETERMINATE = "indeterminate"

    @classmethod
    def from_effect(cls, effect: Effect) -> "Decision":
        return cls.PERMIT if effect is Effect.PERMIT else cls.DENY

    def __repr__(self) -> str:
        return self.value


class Request:
    """An access request: attribute bags per category.

    ``Request({"subject": {"role": "dba"}, "action": {"id": "read"}})``
    """

    __slots__ = ("attributes",)

    def __init__(self, attributes: Mapping[str, Mapping[str, AttributeValue]]):
        self.attributes: Dict[str, Dict[str, AttributeValue]] = {}
        for category, bag in attributes.items():
            if category not in CATEGORIES:
                raise PolicyValidationError(f"unknown attribute category {category!r}")
            self.attributes[category] = dict(bag)

    def get(self, category: str, attribute: str) -> Optional[AttributeValue]:
        return self.attributes.get(category, {}).get(attribute)

    def with_value(self, category: str, attribute: str, value: AttributeValue) -> "Request":
        """A copy of this request with one attribute changed (used by the
        counterfactual explainer)."""
        attributes = {cat: dict(bag) for cat, bag in self.attributes.items()}
        attributes.setdefault(category, {})[attribute] = value
        return Request(attributes)

    def items(self) -> Iterable[Tuple[str, str, AttributeValue]]:
        for category, bag in self.attributes.items():
            for attribute, value in bag.items():
                yield category, attribute, value

    def key(self) -> tuple:
        return tuple(sorted(self.items()))

    def __repr__(self) -> str:
        parts = [f"{c}.{a}={v!r}" for c, a, v in sorted(self.items())]
        return f"Request({', '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Request) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class AttributeDomain:
    """Abstract domain of values an attribute may take."""

    def values(self) -> Sequence[AttributeValue]:
        raise NotImplementedError

    def contains(self, value: AttributeValue) -> bool:
        raise NotImplementedError


class CategoricalDomain(AttributeDomain):
    """A finite set of symbolic values."""

    def __init__(self, values: Iterable[str]):
        self._values: Tuple[str, ...] = tuple(dict.fromkeys(values))
        if not self._values:
            raise PolicyValidationError("categorical domain must be non-empty")

    def values(self) -> Sequence[AttributeValue]:
        return self._values

    def contains(self, value: AttributeValue) -> bool:
        return value in self._values

    def __repr__(self) -> str:
        return f"{{{', '.join(self._values)}}}"


class IntegerDomain(AttributeDomain):
    """An inclusive integer range."""

    def __init__(self, low: int, high: int):
        if low > high:
            raise PolicyValidationError(f"empty integer domain [{low}, {high}]")
        self.low = low
        self.high = high

    def values(self) -> Sequence[AttributeValue]:
        return range(self.low, self.high + 1)

    def contains(self, value: AttributeValue) -> bool:
        return isinstance(value, int) and self.low <= value <= self.high

    def __repr__(self) -> str:
        return f"[{self.low}..{self.high}]"


class DomainSchema:
    """Declared domains for every (category, attribute) pair.

    Quality analysis (consistency/completeness, paper Section V.A) needs
    to reason about *all possible* requests; the schema makes that space
    explicit and finite.
    """

    def __init__(self, domains: Mapping[Tuple[str, str], AttributeDomain]):
        self.domains: Dict[Tuple[str, str], AttributeDomain] = dict(domains)
        for (category, __), domain in self.domains.items():
            if category not in CATEGORIES:
                raise PolicyValidationError(f"unknown category {category!r}")

    def domain(self, category: str, attribute: str) -> Optional[AttributeDomain]:
        return self.domains.get((category, attribute))

    def attributes(self) -> Sequence[Tuple[str, str]]:
        return sorted(self.domains.keys())

    def all_requests(self, max_requests: int = 1_000_000) -> Iterable[Request]:
        """Enumerate every request over the schema (cartesian product)."""
        import itertools

        keys = self.attributes()
        pools = [list(self.domains[key].values()) for key in keys]
        count = 1
        for pool in pools:
            count *= len(pool)
        if count > max_requests:
            raise PolicyValidationError(
                f"request space has {count} elements (> {max_requests})"
            )
        for combo in itertools.product(*pools):
            attributes: Dict[str, Dict[str, AttributeValue]] = {}
            for (category, attribute), value in zip(keys, combo):
                attributes.setdefault(category, {})[attribute] = value
            yield Request(attributes)

    def sample_requests(self, n: int, rng) -> Sequence[Request]:
        """Draw ``n`` uniform random requests (``rng`` is a ``random.Random``)."""
        out = []
        keys = self.attributes()
        for __ in range(n):
            attributes: Dict[str, Dict[str, AttributeValue]] = {}
            for category, attribute in keys:
                pool = list(self.domains[(category, attribute)].values())
                attributes.setdefault(category, {})[attribute] = rng.choice(pool)
            out.append(Request(attributes))
        return out
