"""Conflict resolution strategies (paper Section V.A).

The paper's approach: *static analysis* identifies potential conflicts
(:func:`repro.policy.quality.find_conflicts`), and at run time a
*conflict resolution strategy* picks the decision.  Which strategy to
use may itself be context dependent, so strategies are first-class
values and a :class:`ContextualResolver` maps contexts to strategies —
optionally learned from human decisions via the usual learner.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import PolicyError
from repro.policy.evaluation import applicable_rules
from repro.policy.model import Decision, Effect, Request
from repro.policy.xacml import Policy, XacmlRule

__all__ = [
    "ResolutionStrategy",
    "deny_overrides",
    "permit_overrides",
    "first_applicable",
    "priority_based",
    "ContextualResolver",
    "resolve",
]

# A strategy maps the applicable (policy, rule, decision) triples to one decision.
ResolutionStrategy = Callable[
    [Sequence[Tuple[Policy, XacmlRule, Decision]]], Decision
]


def deny_overrides(hits: Sequence[Tuple[Policy, XacmlRule, Decision]]) -> Decision:
    """Any deny wins."""
    if not hits:
        return Decision.NOT_APPLICABLE
    if any(decision is Decision.DENY for __, __, decision in hits):
        return Decision.DENY
    return Decision.PERMIT


def permit_overrides(hits: Sequence[Tuple[Policy, XacmlRule, Decision]]) -> Decision:
    """Any permit wins."""
    if not hits:
        return Decision.NOT_APPLICABLE
    if any(decision is Decision.PERMIT for __, __, decision in hits):
        return Decision.PERMIT
    return Decision.DENY


def first_applicable(hits: Sequence[Tuple[Policy, XacmlRule, Decision]]) -> Decision:
    """The first applicable rule (policy order, then rule order) wins."""
    if not hits:
        return Decision.NOT_APPLICABLE
    return hits[0][2]


def priority_based(
    priorities: Dict[str, int],
) -> ResolutionStrategy:
    """Build a strategy where the highest-priority policy wins
    (``priorities`` maps policy id to an integer, larger wins; ties fall
    back to deny-overrides among the top-priority hits)."""

    def strategy(hits: Sequence[Tuple[Policy, XacmlRule, Decision]]) -> Decision:
        if not hits:
            return Decision.NOT_APPLICABLE
        best = max(priorities.get(policy.policy_id, 0) for policy, __, __ in hits)
        top = [
            hit for hit in hits if priorities.get(hit[0].policy_id, 0) == best
        ]
        return deny_overrides(top)

    return strategy


_NAMED: Dict[str, ResolutionStrategy] = {
    "deny-overrides": deny_overrides,
    "permit-overrides": permit_overrides,
    "first-applicable": first_applicable,
}


class ContextualResolver:
    """Pick a resolution strategy from the current context.

    ``rules`` is an ordered list of ``(predicate, strategy)`` pairs where
    ``predicate`` is a callable on a context dict; the first matching
    entry wins, with a default strategy as a fallback.  This mirrors the
    paper's suggestion to "specify additional policies that indicate
    which conflict resolution strategy to adopt based on the context".
    """

    def __init__(
        self,
        rules: Sequence[Tuple[Callable[[Dict], bool], ResolutionStrategy]] = (),
        default: ResolutionStrategy = deny_overrides,
    ):
        self.rules = list(rules)
        self.default = default

    def strategy_for(self, context: Dict) -> ResolutionStrategy:
        for predicate, strategy in self.rules:
            if predicate(context):
                return strategy
        return self.default


def resolve(
    policies: Sequence[Policy],
    request: Request,
    strategy: ResolutionStrategy = deny_overrides,
) -> Decision:
    """Evaluate ``request`` against all policies, resolving conflicts
    with ``strategy`` (a callable or a named algorithm)."""
    if isinstance(strategy, str):
        named = _NAMED.get(strategy)
        if named is None:
            raise PolicyError(f"unknown strategy {strategy!r}")
        strategy = named
    hits: List[Tuple[Policy, XacmlRule, Decision]] = []
    for policy in policies:
        for rule, decision in applicable_rules(policy, request):
            hits.append((policy, rule, decision))
    return strategy(hits)
