"""XACML-style XML serialization of policies.

The paper's Figure 3 shows learned policies in XACML's textual form;
this module renders our XACML-lite model to a compact XACML-flavoured
XML dialect and parses it back, enabling interchange with the external
policy repositories of Figure 2 (shared policies arrive as text, not
Python objects).

The dialect, deliberately small but structurally faithful:

.. code-block:: xml

    <Policy PolicyId="p1" RuleCombiningAlgId="deny-overrides">
      <Target>
        <Match Category="subject" AttributeId="role" Op="eq">dba</Match>
      </Target>
      <Rule RuleId="r1" Effect="Permit">
        <Target>
          <Match Category="action" AttributeId="id" Op="eq">write</Match>
        </Target>
        <Condition>
          <Match Category="subject" AttributeId="age" Op="ge">30</Match>
        </Condition>
      </Rule>
    </Policy>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional, Sequence

from repro.errors import PolicyValidationError
from repro.policy.model import Effect
from repro.policy.xacml import Match, Policy, Target, XacmlRule

__all__ = ["policy_to_xml", "policy_from_xml", "policies_to_xml", "policies_from_xml"]


def _value_to_text(value) -> str:
    if isinstance(value, tuple):
        return "|".join(str(v) for v in value)
    return str(value)


def _text_to_value(text: str, op: str):
    if op == "in":
        return tuple(_scalar(part) for part in text.split("|"))
    return _scalar(text)


def _scalar(text: str):
    try:
        return int(text)
    except ValueError:
        return text


def _match_element(match: Match) -> ET.Element:
    element = ET.Element(
        "Match",
        Category=match.category,
        AttributeId=match.attribute,
        Op=match.op,
    )
    element.text = _value_to_text(match.value)
    return element


def _target_element(target: Target, tag: str = "Target") -> Optional[ET.Element]:
    if not target.matches:
        return None
    element = ET.Element(tag)
    for match in target.matches:
        element.append(_match_element(match))
    return element


def policy_to_xml(policy: Policy) -> str:
    """Render one policy to its XML text."""
    root = ET.Element(
        "Policy",
        PolicyId=policy.policy_id,
        RuleCombiningAlgId=policy.combining,
    )
    target = _target_element(policy.target)
    if target is not None:
        root.append(target)
    for rule in policy.rules:
        rule_el = ET.SubElement(
            root,
            "Rule",
            RuleId=rule.rule_id,
            Effect="Permit" if rule.effect is Effect.PERMIT else "Deny",
        )
        rule_target = _target_element(rule.target)
        if rule_target is not None:
            rule_el.append(rule_target)
        condition = _target_element(rule.condition, tag="Condition")
        if condition is not None:
            rule_el.append(condition)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _parse_match(element: ET.Element) -> Match:
    try:
        op = element.attrib["Op"]
        return Match(
            element.attrib["Category"],
            element.attrib["AttributeId"],
            op,
            _text_to_value(element.text or "", op),
        )
    except KeyError as missing:
        raise PolicyValidationError(f"Match missing attribute {missing}") from None


def _parse_target(parent: ET.Element, tag: str = "Target") -> Target:
    element = parent.find(tag)
    if element is None:
        return Target()
    return Target([_parse_match(m) for m in element.findall("Match")])


def policy_from_xml(text: str) -> Policy:
    """Parse one policy from its XML text."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise PolicyValidationError(f"malformed policy XML: {error}") from None
    if root.tag != "Policy":
        raise PolicyValidationError(f"expected <Policy>, found <{root.tag}>")
    rules: List[XacmlRule] = []
    for rule_el in root.findall("Rule"):
        effect_text = rule_el.attrib.get("Effect", "")
        if effect_text not in ("Permit", "Deny"):
            raise PolicyValidationError(f"bad rule effect {effect_text!r}")
        rules.append(
            XacmlRule(
                rule_el.attrib.get("RuleId", f"r{len(rules)}"),
                Effect.PERMIT if effect_text == "Permit" else Effect.DENY,
                _parse_target(rule_el),
                _parse_target(rule_el, "Condition"),
            )
        )
    return Policy(
        root.attrib.get("PolicyId", "imported"),
        rules,
        _parse_target(root),
        root.attrib.get("RuleCombiningAlgId", "deny-overrides"),
    )


def policies_to_xml(policies: Sequence[Policy]) -> str:
    """Render a policy set inside a ``<PolicySet>`` wrapper."""
    root = ET.Element("PolicySet")
    for policy in policies:
        root.append(ET.fromstring(policy_to_xml(policy)))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def policies_from_xml(text: str) -> List[Policy]:
    """Parse a ``<PolicySet>`` document."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as error:
        raise PolicyValidationError(f"malformed policy-set XML: {error}") from None
    if root.tag != "PolicySet":
        raise PolicyValidationError(f"expected <PolicySet>, found <{root.tag}>")
    return [
        policy_from_xml(ET.tostring(el, encoding="unicode"))
        for el in root.findall("Policy")
    ]
