"""Policy evaluation: the PDP's decision function.

Implements the three standard XACML combining algorithms over rules and
over policy sets.  Indeterminate match results (missing attributes)
propagate as :data:`Decision.INDETERMINATE` following the simplified
(non-extended) XACML semantics.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.policy.model import Decision, Effect, Request
from repro.policy.xacml import Policy, XacmlRule

__all__ = [
    "evaluate_rule",
    "evaluate_policy",
    "evaluate_policy_set",
    "applicable_rules",
]


def evaluate_rule(rule: XacmlRule, request: Request) -> Decision:
    """Decision of a single rule on a request."""
    applies = rule.applies(request)
    if applies is True:
        return Decision.from_effect(rule.effect)
    if applies is None:
        return Decision.INDETERMINATE
    return Decision.NOT_APPLICABLE


def _combine(decisions: Iterable[Decision], algorithm: str) -> Decision:
    result = Decision.NOT_APPLICABLE
    for decision in decisions:
        if algorithm == "first-applicable":
            if decision is not Decision.NOT_APPLICABLE:
                return decision
        elif algorithm == "deny-overrides":
            if decision is Decision.DENY:
                return Decision.DENY
            if decision is Decision.INDETERMINATE:
                result = Decision.INDETERMINATE
            elif decision is Decision.PERMIT and result is not Decision.INDETERMINATE:
                result = Decision.PERMIT
        elif algorithm == "permit-overrides":
            if decision is Decision.PERMIT:
                return Decision.PERMIT
            if decision is Decision.INDETERMINATE:
                result = Decision.INDETERMINATE
            elif decision is Decision.DENY and result is not Decision.INDETERMINATE:
                result = Decision.DENY
    return result


def evaluate_policy(policy: Policy, request: Request) -> Decision:
    """Decision of a policy on a request (target gate + rule combination)."""
    gate = policy.target.applies(request)
    if gate is False:
        return Decision.NOT_APPLICABLE
    if gate is None:
        return Decision.INDETERMINATE
    return _combine(
        (evaluate_rule(rule, request) for rule in policy.rules), policy.combining
    )


def evaluate_policy_set(
    policies: Sequence[Policy],
    request: Request,
    combining: str = "deny-overrides",
) -> Decision:
    """Decision of an ordered policy set under a top-level combining algorithm."""
    if combining not in Policy.COMBINING_ALGORITHMS:
        raise ValueError(f"unknown combining algorithm {combining!r}")
    return _combine(
        (evaluate_policy(policy, request) for policy in policies), combining
    )


def applicable_rules(
    policy: Policy, request: Request
) -> List[Tuple[XacmlRule, Decision]]:
    """The rules of ``policy`` that produced a decision for ``request``.

    This is the raw material for enforcement-time explanations
    (paper Section V.B: "clarify which rules within a policy were the
    ones that were applied to the request").
    """
    if policy.target.applies(request) is not True:
        return []
    out = []
    for rule in policy.rules:
        decision = evaluate_rule(rule, request)
        if decision in (Decision.PERMIT, Decision.DENY):
            out.append((rule, decision))
    return out
