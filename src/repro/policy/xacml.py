"""XACML-lite: attribute-based policies with targets, rules and effects.

A faithful-but-small model of the XACML structures the paper's case
study (Section IV.C) learns: a :class:`Policy` holds a target and a list
of effect rules, each with its own target/condition; combining
algorithms are in :mod:`repro.policy.evaluation`.

Matches support equality and integer comparisons, which covers the
policies of the paper's Figure 3 (e.g. conditions on ``subject age``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PolicyValidationError
from repro.policy.model import (
    AttributeDomain,
    AttributeValue,
    Effect,
    Request,
)

__all__ = ["Match", "Target", "XacmlRule", "Policy"]

_OPS = {
    "eq": lambda a, b: a == b,
    "neq": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "in": lambda a, b: a in b,
}


class Match:
    """One attribute test: ``category.attribute op value``."""

    __slots__ = ("category", "attribute", "op", "value")

    def __init__(self, category: str, attribute: str, op: str, value):
        if op not in _OPS:
            raise PolicyValidationError(f"unknown match operator {op!r}")
        if op == "in":
            value = tuple(value)
        self.category = category
        self.attribute = attribute
        self.op = op
        self.value = value

    def applies(self, request: Request) -> Optional[bool]:
        """True/False if decidable; None if the attribute is absent
        (XACML's *indeterminate* source)."""
        actual = request.get(self.category, self.attribute)
        if actual is None:
            return None
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return None

    def allowed_values(self, domain: AttributeDomain) -> Tuple[AttributeValue, ...]:
        """The subset of ``domain`` satisfying this match (for overlap
        analysis in :mod:`repro.policy.quality`)."""
        return tuple(v for v in domain.values() if _OPS[self.op](v, self.value))

    def __repr__(self) -> str:
        return f"{self.category}.{self.attribute} {self.op} {self.value!r}"

    def key(self) -> tuple:
        return (self.category, self.attribute, self.op, self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Match) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class Target:
    """A conjunction of matches; the empty target matches every request."""

    __slots__ = ("matches",)

    def __init__(self, matches: Iterable[Match] = ()):
        self.matches: Tuple[Match, ...] = tuple(matches)

    def applies(self, request: Request) -> Optional[bool]:
        indeterminate = False
        for match in self.matches:
            result = match.applies(request)
            if result is False:
                return False
            if result is None:
                indeterminate = True
        return None if indeterminate else True

    def constrained(self) -> Dict[Tuple[str, str], List[Match]]:
        out: Dict[Tuple[str, str], List[Match]] = {}
        for match in self.matches:
            out.setdefault((match.category, match.attribute), []).append(match)
        return out

    def __repr__(self) -> str:
        if not self.matches:
            return "<any>"
        return " AND ".join(repr(m) for m in self.matches)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Target) and set(self.matches) == set(other.matches)

    def __hash__(self) -> int:
        return hash(frozenset(self.matches))


class XacmlRule:
    """An effect rule: target + optional extra condition."""

    __slots__ = ("rule_id", "effect", "target", "condition")

    def __init__(
        self,
        rule_id: str,
        effect: Effect,
        target: Optional[Target] = None,
        condition: Optional[Target] = None,
    ):
        self.rule_id = rule_id
        self.effect = effect
        self.target = target if target is not None else Target()
        self.condition = condition if condition is not None else Target()

    def applies(self, request: Request) -> Optional[bool]:
        target_result = self.target.applies(request)
        if target_result is not True:
            return target_result
        return self.condition.applies(request)

    def all_matches(self) -> Tuple[Match, ...]:
        return self.target.matches + self.condition.matches

    def __repr__(self) -> str:
        cond = f" IF {self.condition!r}" if self.condition.matches else ""
        return f"[{self.rule_id}] {self.effect.value.upper()} WHEN {self.target!r}{cond}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, XacmlRule)
            and self.effect == other.effect
            and self.target == other.target
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash((self.effect, self.target, self.condition))


class Policy:
    """A policy: a target guarding a list of rules plus a combining algorithm.

    ``combining`` is one of ``deny-overrides``, ``permit-overrides``,
    ``first-applicable`` (see :mod:`repro.policy.evaluation`).
    """

    COMBINING_ALGORITHMS = ("deny-overrides", "permit-overrides", "first-applicable")

    def __init__(
        self,
        policy_id: str,
        rules: Sequence[XacmlRule],
        target: Optional[Target] = None,
        combining: str = "deny-overrides",
    ):
        if combining not in self.COMBINING_ALGORITHMS:
            raise PolicyValidationError(f"unknown combining algorithm {combining!r}")
        if not rules:
            raise PolicyValidationError(f"policy {policy_id!r} has no rules")
        seen = set()
        for rule in rules:
            if rule.rule_id in seen:
                raise PolicyValidationError(
                    f"duplicate rule id {rule.rule_id!r} in policy {policy_id!r}"
                )
            seen.add(rule.rule_id)
        self.policy_id = policy_id
        self.rules: Tuple[XacmlRule, ...] = tuple(rules)
        self.target = target if target is not None else Target()
        self.combining = combining

    def __repr__(self) -> str:
        lines = [f"Policy {self.policy_id} ({self.combining}) WHEN {self.target!r}:"]
        lines += [f"  {rule!r}" for rule in self.rules]
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Policy)
            and self.rules == other.rules
            and self.target == other.target
            and self.combining == other.combining
        )

    def __hash__(self) -> int:
        return hash((self.rules, self.target, self.combining))
