"""Risk assessment for policies (paper Section V.A, extension requirement).

"The risk related requirement focuses on possible risks that may
result from the application of a policy ... a restrictive access
control policy may prevent the delivery of relevant information needed
by a party, thus affecting the outcomes of activities."

Two risk directions, both computed against a request workload:

* **permissiveness risk** — the probability mass of requests a policy
  set *permits* weighted by the harm of wrongly permitting them;
* **restrictiveness risk** — the probability mass it *denies* weighted
  by the cost of wrongly denying them (the paper's example).

Harm/cost models are pluggable callables on requests, so "different
risk models for different contexts and coalition missions" are plain
values that can be swapped per context.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.policy.evaluation import evaluate_policy_set
from repro.policy.model import Decision, Request
from repro.policy.xacml import Policy

__all__ = ["RiskModel", "RiskAssessment", "assess_risk", "constant_harm"]

HarmModel = Callable[[Request], float]


def constant_harm(value: float) -> HarmModel:
    """A harm model assigning the same weight to every request."""

    def model(request: Request) -> float:
        return value

    return model


class RiskModel:
    """A context's risk model: harm of wrong permits / cost of wrong denies.

    ``permit_harm(request)`` is the damage if permitting ``request`` is
    the wrong call; ``deny_cost(request)`` the loss if denying it is.
    """

    def __init__(
        self,
        permit_harm: HarmModel,
        deny_cost: HarmModel,
        name: str = "",
    ):
        self.permit_harm = permit_harm
        self.deny_cost = deny_cost
        self.name = name


class RiskAssessment:
    """The risk profile of a policy set over a workload."""

    def __init__(
        self,
        permissiveness_risk: float,
        restrictiveness_risk: float,
        permitted: int,
        denied: int,
        undecided: int,
    ):
        self.permissiveness_risk = permissiveness_risk
        self.restrictiveness_risk = restrictiveness_risk
        self.permitted = permitted
        self.denied = denied
        self.undecided = undecided

    @property
    def total(self) -> float:
        return self.permissiveness_risk + self.restrictiveness_risk

    def __repr__(self) -> str:
        return (
            f"RiskAssessment(permissive={self.permissiveness_risk:.3f}, "
            f"restrictive={self.restrictiveness_risk:.3f}, "
            f"permitted={self.permitted}, denied={self.denied}, "
            f"undecided={self.undecided})"
        )


def assess_risk(
    policies: Sequence[Policy],
    workload: Sequence[Request],
    model: RiskModel,
    combining: str = "deny-overrides",
    error_rate: float = 0.1,
) -> RiskAssessment:
    """Score a policy set under a risk model.

    ``error_rate`` is the assumed probability that any individual
    decision is wrong (learned policies are never perfect); risk is the
    expected harm of those errors over the workload:

    * each permitted request contributes ``error_rate * permit_harm``;
    * each denied request contributes ``error_rate * deny_cost``;
    * undecided requests (gaps) contribute the *larger* of the two —
      the operator must guess.
    """
    permissive = 0.0
    restrictive = 0.0
    permitted = denied = undecided = 0
    for request in workload:
        decision = evaluate_policy_set(policies, request, combining)
        if decision is Decision.PERMIT:
            permitted += 1
            permissive += error_rate * model.permit_harm(request)
        elif decision is Decision.DENY:
            denied += 1
            restrictive += error_rate * model.deny_cost(request)
        else:
            undecided += 1
            worst = max(model.permit_harm(request), model.deny_cost(request))
            permissive += error_rate * worst / 2
            restrictive += error_rate * worst / 2
    return RiskAssessment(permissive, restrictive, permitted, denied, undecided)
