"""Goal-based policies (paper Section I's second policy type).

"Goal-based policies ... direct the managed parties to achieve a
specific goal, e.g., maintain a minimum threshold of utilization or try
to finish a task before a specific deadline."

Goals are evaluated against a metric stream fed by monitoring; a
:class:`GoalMonitor` tracks compliance over time, and its violations
are exactly the "system is not meeting the goals set by the global
PBMS" trigger that starts the PAdaP adaptation loop (Section III.A).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Union

from repro.errors import PolicyError

__all__ = ["GoalStatus", "ThresholdGoal", "DeadlineGoal", "GoalMonitor"]

Number = Union[int, float]

_OPS = {
    "ge": lambda value, bound: value >= bound,
    "gt": lambda value, bound: value > bound,
    "le": lambda value, bound: value <= bound,
    "lt": lambda value, bound: value < bound,
}


class GoalStatus(NamedTuple):
    """One goal's evaluation at one tick."""

    goal_name: str
    satisfied: bool
    detail: str


class ThresholdGoal:
    """Maintain ``metric <op> bound`` (the paper's utilization example)."""

    def __init__(self, name: str, metric: str, op: str, bound: Number):
        if op not in _OPS:
            raise PolicyError(f"unknown threshold operator {op!r}")
        self.name = name
        self.metric = metric
        self.op = op
        self.bound = bound

    def evaluate(self, tick: int, metrics: Mapping[str, Number]) -> GoalStatus:
        value = metrics.get(self.metric)
        if value is None:
            return GoalStatus(
                self.name, False, f"metric {self.metric!r} not reported"
            )
        ok = _OPS[self.op](value, self.bound)
        return GoalStatus(
            self.name,
            ok,
            f"{self.metric}={value} {'meets' if ok else 'violates'} "
            f"{self.op} {self.bound}",
        )

    def __repr__(self) -> str:
        return f"ThresholdGoal({self.name}: {self.metric} {self.op} {self.bound})"


class DeadlineGoal:
    """Finish a task (boolean metric turns true) before a deadline tick."""

    def __init__(self, name: str, task_metric: str, deadline: int):
        self.name = name
        self.task_metric = task_metric
        self.deadline = deadline

    def evaluate(self, tick: int, metrics: Mapping[str, Number]) -> GoalStatus:
        done = bool(metrics.get(self.task_metric, False))
        if done:
            return GoalStatus(self.name, True, f"completed by tick {tick}")
        if tick <= self.deadline:
            return GoalStatus(
                self.name, True, f"in progress, {self.deadline - tick} ticks left"
            )
        return GoalStatus(
            self.name, False, f"missed deadline {self.deadline} (now {tick})"
        )

    def __repr__(self) -> str:
        return f"DeadlineGoal({self.name}: {self.task_metric} by {self.deadline})"


class GoalMonitor:
    """Track a set of goals over a metric stream.

    ``observe`` ingests one tick of metrics and returns the statuses;
    ``violations`` accumulates every failed evaluation, and
    ``needs_adaptation`` is the PBMS-goals trigger for the AGENP loop.
    """

    def __init__(self, goals: Sequence[Union[ThresholdGoal, DeadlineGoal]]):
        names = [goal.name for goal in goals]
        if len(set(names)) != len(names):
            raise PolicyError("goal names must be unique")
        self.goals = list(goals)
        self.tick = 0
        self.history: List[GoalStatus] = []

    def observe(self, metrics: Mapping[str, Number]) -> List[GoalStatus]:
        self.tick += 1
        statuses = [goal.evaluate(self.tick, metrics) for goal in self.goals]
        self.history.extend(statuses)
        return statuses

    def violations(self) -> List[GoalStatus]:
        return [status for status in self.history if not status.satisfied]

    def needs_adaptation(self) -> bool:
        return bool(self.violations())

    def compliance_rate(self, goal_name: Optional[str] = None) -> float:
        relevant = [
            status
            for status in self.history
            if goal_name is None or status.goal_name == goal_name
        ]
        if not relevant:
            return 1.0
        return sum(1 for status in relevant if status.satisfied) / len(relevant)
