"""Decision explanations, including counterfactuals (paper Section V.B).

Two levels, as the paper requires:

* **enforcement-time** — which rules applied to a request and which
  attribute matches made them apply (:func:`explain_decision`);
* **counterfactual** — the minimal attribute changes that would flip the
  decision (:func:`counterfactuals`), in the style of Wachter et al.:
  "you were denied because role=dev; had role been dba, you would have
  been permitted".
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policy.evaluation import applicable_rules, evaluate_policy_set
from repro.policy.model import Decision, DomainSchema, Request
from repro.policy.xacml import Match, Policy, XacmlRule

__all__ = ["DecisionExplanation", "Counterfactual", "explain_decision", "counterfactuals"]


class DecisionExplanation:
    """Why a request received its decision."""

    def __init__(
        self,
        request: Request,
        decision: Decision,
        fired: List[Tuple[str, XacmlRule, Decision]],
        relevant_matches: List[Match],
    ):
        self.request = request
        self.decision = decision
        self.fired = fired
        self.relevant_matches = relevant_matches

    def text(self) -> str:
        """A human-readable explanation."""
        if not self.fired:
            return (
                f"Decision {self.decision.value}: no rule applied to this request."
            )
        lines = [f"Decision {self.decision.value} because:"]
        for policy_id, rule, decision in self.fired:
            conditions = ", ".join(repr(m) for m in rule.all_matches()) or "always"
            lines.append(
                f"  - rule {policy_id}.{rule.rule_id} ({decision.value}) applied: {conditions}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"DecisionExplanation({self.decision!r}, {len(self.fired)} rules fired)"


class Counterfactual:
    """A minimal attribute change that flips the decision."""

    def __init__(
        self,
        changes: Dict[Tuple[str, str], Tuple[object, object]],
        new_decision: Decision,
    ):
        self.changes = changes
        self.new_decision = new_decision

    @property
    def size(self) -> int:
        return len(self.changes)

    def text(self) -> str:
        parts = [
            f"{category}.{attribute} were {new!r} instead of {old!r}"
            for (category, attribute), (old, new) in sorted(self.changes.items())
        ]
        return (
            f"If {' and '.join(parts)}, the decision would have been "
            f"{self.new_decision.value}."
        )

    def __repr__(self) -> str:
        return f"Counterfactual({self.changes}, -> {self.new_decision!r})"


def explain_decision(
    policies: Sequence[Policy],
    request: Request,
    combining: str = "deny-overrides",
) -> DecisionExplanation:
    """Explain the decision for ``request`` under ``policies``.

    Only the attributes actually tested by fired rules are reported as
    relevant, per the paper's observation that "not all attributes may
    be relevant for the request".
    """
    decision = evaluate_policy_set(policies, request, combining)
    fired: List[Tuple[str, XacmlRule, Decision]] = []
    for policy in policies:
        for rule, rule_decision in applicable_rules(policy, request):
            fired.append((policy.policy_id, rule, rule_decision))
    agreeing = [
        (pid, rule, d) for pid, rule, d in fired if d == decision
    ] or fired
    matches: List[Match] = []
    seen = set()
    for __, rule, __d in agreeing:
        for match in rule.all_matches():
            if match.key() not in seen:
                seen.add(match.key())
                matches.append(match)
    return DecisionExplanation(request, decision, agreeing, matches)


def counterfactuals(
    policies: Sequence[Policy],
    request: Request,
    schema: DomainSchema,
    combining: str = "deny-overrides",
    target: Optional[Decision] = None,
    max_changes: int = 2,
    max_results: int = 10,
) -> List[Counterfactual]:
    """Minimal attribute flips that change the decision.

    ``target`` restricts the desired new decision (default: any decision
    different from the current one, excluding indeterminate outcomes).
    Results are sorted by number of changed attributes; only minimal
    ones are returned (no counterfactual whose change set is a superset
    of another's).
    """
    original = evaluate_policy_set(policies, request, combining)
    keys = schema.attributes()
    results: List[Counterfactual] = []
    accepted_changes: List[frozenset] = []
    for size in range(1, max_changes + 1):
        for combo in itertools.combinations(keys, size):
            if any(set(prev) <= set(combo) for prev in accepted_changes):
                continue
            pools = []
            for category, attribute in combo:
                current = request.get(category, attribute)
                pools.append(
                    [
                        value
                        for value in schema.domain(category, attribute).values()
                        if value != current
                    ]
                )
            for values in itertools.product(*pools):
                changed = request
                changes: Dict[Tuple[str, str], Tuple[object, object]] = {}
                for (category, attribute), value in zip(combo, values):
                    changes[(category, attribute)] = (
                        request.get(category, attribute),
                        value,
                    )
                    changed = changed.with_value(category, attribute, value)
                new_decision = evaluate_policy_set(policies, changed, combining)
                if new_decision == original:
                    continue
                if new_decision in (Decision.INDETERMINATE, Decision.NOT_APPLICABLE):
                    continue
                if target is not None and new_decision != target:
                    continue
                results.append(Counterfactual(changes, new_decision))
                accepted_changes.append(frozenset(combo))
                if len(results) >= max_results:
                    return results
                break  # one witness per attribute combination is enough
    return results
