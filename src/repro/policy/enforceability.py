"""Enforceability assessment (paper Section V.A, extension requirement).

"Enforceability requires that a policy can actually be enforced by a
managed party in a certain context.  For example, a policy may require
contextual information be acquired in real time — which may be
challenging in certain contexts — and it is crucial to provide
indicators about the feasibility of the policy enforcement."

A policy's *information needs* are the attributes its matches test; an
:class:`EnforcementCapability` describes which attributes a managed
party can obtain, at what freshness and reliability.  The assessor
reports, per policy, whether it is enforceable and a feasibility score.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.policy.xacml import Policy

__all__ = [
    "AttributeCapability",
    "EnforcementCapability",
    "EnforceabilityReport",
    "information_needs",
    "assess_enforceability",
]


class AttributeCapability(NamedTuple):
    """What a managed party can find out about one attribute.

    * ``available`` — the attribute can be obtained at all;
    * ``realtime`` — it can be obtained at decision time (vs only from
      stale caches or pre-mission intelligence);
    * ``reliability`` — probability the obtained value is correct.
    """

    available: bool = True
    realtime: bool = True
    reliability: float = 1.0


class EnforcementCapability:
    """The capability profile of one managed party in one context."""

    def __init__(
        self,
        capabilities: Mapping[Tuple[str, str], AttributeCapability],
        default: Optional[AttributeCapability] = None,
    ):
        self.capabilities = dict(capabilities)
        self.default = default if default is not None else AttributeCapability(
            available=False, realtime=False, reliability=0.0
        )

    def capability(self, category: str, attribute: str) -> AttributeCapability:
        return self.capabilities.get((category, attribute), self.default)


def information_needs(policy: Policy) -> List[Tuple[str, str]]:
    """All (category, attribute) pairs the policy tests."""
    needs = set()
    for match in policy.target.matches:
        needs.add((match.category, match.attribute))
    for rule in policy.rules:
        for match in rule.all_matches():
            needs.add((match.category, match.attribute))
    return sorted(needs)


class EnforceabilityReport:
    """Per-policy enforceability verdicts."""

    def __init__(self, entries: Dict[str, Tuple[bool, float, List[Tuple[str, str]]]]):
        self.entries = entries

    def enforceable(self, policy_id: str) -> bool:
        return self.entries[policy_id][0]

    def feasibility(self, policy_id: str) -> float:
        return self.entries[policy_id][1]

    def missing(self, policy_id: str) -> List[Tuple[str, str]]:
        return self.entries[policy_id][2]

    def unenforceable_policies(self) -> List[str]:
        return sorted(
            pid for pid, (ok, __f, __m) in self.entries.items() if not ok
        )

    def __repr__(self) -> str:
        lines = ["EnforceabilityReport:"]
        for pid, (ok, feasibility, missing) in sorted(self.entries.items()):
            verdict = "ok" if ok else f"MISSING {missing}"
            lines.append(f"  {pid}: feasibility={feasibility:.2f} {verdict}")
        return "\n".join(lines)


def assess_enforceability(
    policies: Sequence[Policy],
    capability: EnforcementCapability,
    require_realtime: bool = True,
) -> EnforceabilityReport:
    """Check every policy's information needs against a capability profile.

    A policy is enforceable iff every attribute it tests is available
    (and obtainable in real time when ``require_realtime``).  Its
    feasibility score is the product of the reliabilities of the
    attributes it needs (1.0 for an unconditional policy).
    """
    entries: Dict[str, Tuple[bool, float, List[Tuple[str, str]]]] = {}
    for policy in policies:
        needs = information_needs(policy)
        missing: List[Tuple[str, str]] = []
        feasibility = 1.0
        for need in needs:
            cap = capability.capability(*need)
            if not cap.available or (require_realtime and not cap.realtime):
                missing.append(need)
            feasibility *= cap.reliability
        entries[policy.policy_id] = (not missing, feasibility, missing)
    return EnforceabilityReport(entries)
