"""Application domains from the paper's Section IV.

* :mod:`repro.apps.cav` — connected and autonomous vehicles (IV.A);
* :mod:`repro.apps.resupply` — logistical resupply missions (IV.B);
* :mod:`repro.apps.xacml_case_study` — access-control learning (IV.C);
* :mod:`repro.apps.datasharing` — coalition data sharing (IV.D);
* :mod:`repro.apps.federated` — federated-learning governance (IV.E).
"""
