"""The XACML learning pipeline (paper Section IV.C / Figure 3).

Configuration knobs map one-to-one to the paper's discussion:

* ``prefer_general`` — the *background knowledge / statistics*
  mitigation: user-identity literals are penalized relative to role
  literals, steering generalization toward roles ("prior knowledge
  about the role of a user makes it possible to generate policies that
  are relevant to the role of the user rather than ... that specific
  user");
* ``require_target`` — the *target-based restriction* mitigation:
  every learnable rule must explicitly pin a deterministic target (the
  user), preventing unsafe generalization of rare per-user grants;
* ``filter_noise`` — the *dataset filtering* mitigation: drop
  irrelevant (NotApplicable) responses and resolve inconsistencies
  before learning;
* ``allow_irrelevant_head`` — when True, ``not_applicable`` is a legal
  decision the learner may conclude — the Figure 3b "Policy 3" failure
  mode of misinterpreting an irrelevant response as a proper decision;
* ``prefer_specific`` — an *adversarial tie-break*: among equally
  minimal hypotheses, pick user-identity rules over role rules.  An
  optimal learner like ILASP is free to return any cost-minimal
  solution, so this knob exhibits the overfitting risk the paper
  describes without changing what counts as optimal coverage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom
from repro.asp.parser import parse_program
from repro.asp.rules import Program
from repro.asp.solver import solve
from repro.asp.terms import Constant
from repro.datasets.noise import filter_low_quality
from repro.datasets.xacml_conformance import (
    ACTIONS,
    LogEntry,
    RESOURCE_TYPES,
    ROLES,
    USERS,
    USER_ROLES,
    decision_for,
    entry_to_example,
    request_to_context,
)
from repro.errors import UnsatisfiableTaskError
from repro.learning.decomposable import learn_auto
from repro.learning.mode_bias import CandidateRule, ModeAtom, ModeBias, Placeholder
from repro.learning.tasks import LASTask
from repro.policy.model import Decision, Request
from repro.policy.xacml import Policy

__all__ = ["XacmlLearningPipeline", "LearnedPolicyModel", "semantic_accuracy"]

_BACKGROUND = "decision(deny) :- not decision(permit), not decision(not_applicable).\n"
_BACKGROUND_STRICT = "decision(deny) :- not decision(permit).\n"


class LearnedPolicyModel:
    """A learned decision program with an evaluation interface."""

    def __init__(self, background: Program, rules: Sequence[CandidateRule]):
        self.background = background
        self.rules = list(rules)

    def decide(self, request: Request) -> Decision:
        program = Program(list(self.background))
        program.extend(request_to_context(request))
        for candidate in self.rules:
            program.add(candidate.rule)
        models = solve(program, max_models=1)
        if not models:
            return Decision.INDETERMINATE
        model = models[0]
        for decision in (Decision.PERMIT, Decision.NOT_APPLICABLE, Decision.DENY):
            if Atom("decision", [Constant(decision.value)]) in model:
                return decision
        return Decision.DENY

    def rule_texts(self) -> List[str]:
        return sorted(repr(c.rule) for c in self.rules)

    def __repr__(self) -> str:
        return "LearnedPolicyModel:\n  " + "\n  ".join(self.rule_texts() or ["<empty>"])


class XacmlLearningPipeline:
    """End-to-end: log entries -> learned decision rules."""

    def __init__(
        self,
        max_body: int = 3,
        max_rules: int = 4,
        max_violations: int = 0,
        prefer_general: bool = False,
        prefer_specific: bool = False,
        require_target: bool = False,
        filter_noise: bool = False,
        allow_irrelevant_head: bool = False,
        user_literal_penalty: int = 2,
        strict: bool = False,
    ):
        self.max_body = max_body
        self.max_rules = max_rules
        self.max_violations = max_violations
        self.prefer_general = prefer_general
        self.prefer_specific = prefer_specific
        self.require_target = require_target
        self.filter_noise = filter_noise
        self.allow_irrelevant_head = allow_irrelevant_head
        self.user_literal_penalty = user_literal_penalty
        self.strict = strict

    # -- hypothesis space -------------------------------------------------

    def hypothesis_space(self) -> List[CandidateRule]:
        verdicts = [Constant("permit")]
        if self.allow_irrelevant_head:
            verdicts.append(Constant("not_applicable"))
        bias = ModeBias(
            head_modes=[ModeAtom(Atom("decision", [Placeholder("verdict")]))],
            body_modes=[
                ModeAtom(Atom("role", [Placeholder("role")])),
                ModeAtom(Atom("user", [Placeholder("user")])),
                ModeAtom(Atom("action", [Placeholder("action")])),
                ModeAtom(Atom("rtype", [Placeholder("rtype")])),
            ],
            pools={
                "verdict": verdicts,
                "role": [Constant(r) for r in ROLES],
                "user": [Constant(u) for u in USERS],
                "action": [Constant(a) for a in ACTIONS],
                "rtype": [Constant(t) for t in RESOURCE_TYPES],
            },
            max_body=self.max_body,
            allow_constraints=False,
            allow_negation=False,
        )
        space = bias.generate()
        space = [c for c in space if self._well_formed(c)]
        if self.require_target:
            space = [c for c in space if self._has_user_literal(c)]
        if self.prefer_general:
            for candidate in space:
                if self._has_user_literal(candidate):
                    candidate.cost += self.user_literal_penalty
        if self.prefer_specific:
            # adversarial tie-break: order user-identity rules first so
            # they win cost ties (see the module docstring)
            space.sort(key=lambda c: (c.cost, not self._has_user_literal(c)))
        return space

    @staticmethod
    def _has_user_literal(candidate: CandidateRule) -> bool:
        return any(
            lit.atom.predicate == "user" for lit in candidate.rule.body
        )

    @staticmethod
    def _well_formed(candidate: CandidateRule) -> bool:
        """At most one literal per attribute predicate (a request has one
        value per attribute, so duplicates are vacuous or contradictory)."""
        predicates = [lit.atom.predicate for lit in candidate.rule.body]
        return len(predicates) == len(set(predicates))

    # -- learning -----------------------------------------------------------

    def background(self) -> Program:
        text = _BACKGROUND if self.allow_irrelevant_head else _BACKGROUND_STRICT
        return parse_program(text)

    def learn(self, log: Sequence[LogEntry]) -> LearnedPolicyModel:
        entries = list(log)
        if self.filter_noise:
            entries = filter_low_quality(entries)
        else:
            # irrelevant responses are only representable when the head
            # pool includes not_applicable; otherwise they are skipped
            # with a warning-by-construction (they cannot be expressed)
            if not self.allow_irrelevant_head:
                entries = [
                    e
                    for e in entries
                    if e.decision in (Decision.PERMIT, Decision.DENY)
                ]
        examples = [entry_to_example(entry) for entry in entries]
        task = LASTask(self.background(), self.hypothesis_space(), examples, [])
        try:
            result = learn_auto(
                task,
                max_rules=self.max_rules,
                max_violations=self.max_violations,
                auto_violations=not self.strict,
                fallback=False,
            )
        except UnsatisfiableTaskError:
            if not self.strict:
                raise
            # the paper's noisy-dataset failure mode: a strict learner
            # finds no consistent policy at all — deny-by-default remains
            return LearnedPolicyModel(self.background(), [])
        return LearnedPolicyModel(self.background(), result.candidates)


def _coherent_requests() -> List[Request]:
    """All requests whose role matches the user's actual role."""
    out = []
    for user in USERS:
        for action in ACTIONS:
            for rtype in RESOURCE_TYPES:
                out.append(
                    Request(
                        {
                            "subject": {"id": user, "role": USER_ROLES[user]},
                            "action": {"id": action},
                            "resource": {"type": rtype},
                        }
                    )
                )
    return out


def semantic_accuracy(
    model: LearnedPolicyModel,
    ground_truth: Sequence[Policy],
    requests: Optional[Sequence[Request]] = None,
) -> float:
    """Decision agreement between the learned model and the ground truth
    over the full coherent request space (the *transfer* measure that
    exposes overfitting: high log accuracy, low semantic accuracy)."""
    if requests is None:
        requests = _coherent_requests()
    if not requests:
        return 1.0
    agree = 0
    for request in requests:
        expected = decision_for(ground_truth, request)
        actual = model.decide(request)
        if actual == expected:
            agree += 1
    return agree / len(requests)
