"""The Section IV.C access-control case study (Figure 3).

Learn XACML policies from request/response logs; study the three
failure modes the paper reports (overfitting, unsafe generalization,
noisy datasets) and the three mitigations it proposes (background
knowledge / statistics, pre-defined restrictions, dataset filtering).
"""

from repro.apps.xacml_case_study.pipeline import (
    LearnedPolicyModel,
    XacmlLearningPipeline,
    semantic_accuracy,
)

__all__ = ["XacmlLearningPipeline", "LearnedPolicyModel", "semantic_accuracy"]
