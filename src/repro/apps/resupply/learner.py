"""Symbolic learning of resupply route policies.

Policies are strings ``take <route>``; the learnable semantics are
constraints on when a route may be taken, conditioned on mission
context.  The planning/execution distinction of the paper maps to which
conditions (speculative vs real) are used as the example context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg.annotated import ASG
from repro.asg.asg_parser import parse_asg
from repro.asg.semantics import accepts
from repro.core.contexts import Context
from repro.learning.decomposable import learn_auto
from repro.learning.mode_bias import CandidateRule, constraint_space
from repro.learning.tasks import ASGLearningTask, ContextExample
from repro.apps.resupply.domain import (
    MissionConditions,
    MissionOutcome,
    ROUTES,
)

__all__ = [
    "resupply_asg",
    "resupply_hypothesis_space",
    "conditions_to_context",
    "ResupplyLearner",
]

_ASG_TEXT = """
order -> "take" route
route -> "main"   { route(main). }
route -> "river"  { route(river). }
route -> "narrow" { route(narrow). }
"""

ORDER_PRODUCTION = 0


def resupply_asg() -> ASG:
    return parse_asg(_ASG_TEXT)


def resupply_hypothesis_space(max_body: int = 2) -> List[CandidateRule]:
    """Constraints over route choice and mission conditions."""
    pool: List[Literal] = []
    for route in ROUTES:
        pool.append(Literal(Atom("route", [Constant(route)], (2,)), True))
    for condition in (
        "high_threat_main",
        "high_threat_river",
        "high_threat_narrow",
        "storm",
        "night",
        "large_convoy",
    ):
        pool.append(Literal(Atom(condition), True))
    return constraint_space(pool, prod_ids=(ORDER_PRODUCTION,), max_body=max_body)


def conditions_to_context(conditions: MissionConditions) -> Context:
    lines = []
    for route in ROUTES:
        if conditions.threat[route] == "high":
            lines.append(f"high_threat_{route}.")
    if conditions.weather == "storm":
        lines.append("storm.")
    if conditions.time_of_day == "night":
        lines.append("night.")
    if conditions.convoy_size == "large":
        lines.append("large_convoy.")
    return Context.from_text("\n".join(lines))


class ResupplyLearner:
    """Accumulates mission experience and learns a route GPM.

    ``phase`` selects the paper's two policy times: ``"planning"``
    trains on speculative conditions, ``"execution"`` on the observed
    real-time values.  Ground-truth labels always come from execution
    (that is what the mission revealed), so planning-phase learning sees
    label noise proportional to the condition drift — exactly the
    paper's observation that planning data has "varying degrees of
    accuracy".
    """

    def __init__(self, phase: str = "execution", max_body: int = 2):
        if phase not in ("planning", "execution"):
            raise ValueError("phase must be 'planning' or 'execution'")
        self.phase = phase
        self.asg = resupply_asg()
        self.space = resupply_hypothesis_space(max_body)
        self.missions: List[MissionOutcome] = []
        self.learned: Optional[ASG] = None

    def observe(self, missions: Sequence[MissionOutcome]) -> None:
        self.missions.extend(missions)

    def _examples(self) -> Tuple[List[ContextExample], List[ContextExample]]:
        positive: List[ContextExample] = []
        negative: List[ContextExample] = []
        for mission in self.missions:
            conditions = (
                mission.planned if self.phase == "planning" else mission.executed
            )
            context = conditions_to_context(conditions).program
            for route in ROUTES:
                example = ContextExample(("take", route), context)
                if mission.route_ok[route]:
                    positive.append(example)
                else:
                    negative.append(example)
        return positive, negative

    def fit(self) -> "ResupplyLearner":
        positive, negative = self._examples()
        task = ASGLearningTask(self.asg, self.space, positive, negative)
        # planning data can be contradictory (condition drift); learn_auto
        # grows the violation budget automatically
        result = learn_auto(task, max_rules=8, fallback=False)
        self.learned = self.asg.with_rules(result.rules)
        return self

    def route_allowed(self, route: str, conditions: MissionConditions) -> bool:
        if self.learned is None:
            raise RuntimeError("learner not fitted")
        grammar = self.learned.with_context(
            conditions_to_context(conditions).program
        )
        return accepts(grammar, ("take", route))

    def accuracy(self, missions: Sequence[MissionOutcome]) -> float:
        """Route-viability prediction accuracy under executed conditions."""
        total = 0
        correct = 0
        for mission in missions:
            for route in ROUTES:
                total += 1
                predicted = self.route_allowed(route, mission.executed)
                if predicted == mission.route_ok[route]:
                    correct += 1
        return correct / total if total else 1.0
