"""The resupply mission domain.

Per the DAIS-ITA scenario (paper Section IV.B): a resupply convoy picks
one of a set of route options at some time of day under assumed or
predicted conditions.  Planning-phase conditions are *speculative* —
the execution phase observes the real values, which differ with some
probability (updated information, enemy disruption).

Ground truth (the doctrine to learn): a route is viable iff

* it is not under a high threat level,
* the river route is not used at night or in storms,
* the narrow route is not used when convoy size is large.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

__all__ = [
    "ROUTES",
    "THREATS",
    "WEATHER",
    "MissionConditions",
    "MissionOutcome",
    "ground_truth_route_ok",
    "perturb_conditions",
    "simulate_missions",
]

ROUTES = ("main", "river", "narrow")
THREATS = ("low", "medium", "high")
WEATHER = ("clear", "rain", "storm")
CONVOY_SIZES = ("small", "large")
TIMES = ("day", "night")


class MissionConditions(NamedTuple):
    """The conditions a route decision is made under."""

    threat: Dict[str, str]  # per-route threat level
    weather: str
    time_of_day: str
    convoy_size: str

    def features(self, route: str) -> Dict[str, object]:
        return {
            "route": route,
            "threat": self.threat[route],
            "weather": self.weather,
            "time_of_day": self.time_of_day,
            "convoy_size": self.convoy_size,
        }


def ground_truth_route_ok(route: str, conditions: MissionConditions) -> bool:
    if conditions.threat[route] == "high":
        return False
    if route == "river" and (
        conditions.time_of_day == "night" or conditions.weather == "storm"
    ):
        return False
    if route == "narrow" and conditions.convoy_size == "large":
        return False
    return True


def _random_conditions(rng: random.Random) -> MissionConditions:
    return MissionConditions(
        threat={route: rng.choice(THREATS) for route in ROUTES},
        weather=rng.choice(WEATHER),
        time_of_day=rng.choice(TIMES),
        convoy_size=rng.choice(CONVOY_SIZES),
    )


def perturb_conditions(
    conditions: MissionConditions, rng: random.Random, drift: float
) -> MissionConditions:
    """Execution-phase reality: each speculative value independently
    drifts with probability ``drift`` (weather fronts move, threat
    intelligence updates)."""

    def maybe(value, pool):
        return rng.choice(pool) if rng.random() < drift else value

    return MissionConditions(
        threat={r: maybe(t, THREATS) for r, t in conditions.threat.items()},
        weather=maybe(conditions.weather, WEATHER),
        time_of_day=conditions.time_of_day,  # time does not drift
        convoy_size=conditions.convoy_size,  # nor does the convoy
    )


class MissionOutcome(NamedTuple):
    """One completed mission: planned vs executed conditions and, per
    route, whether taking it would have succeeded (ground truth under
    the *executed* conditions — what the after-action review reveals)."""

    planned: MissionConditions
    executed: MissionConditions
    route_ok: Dict[str, bool]


def simulate_missions(
    n: int, seed: int = 0, drift: float = 0.25
) -> List[MissionOutcome]:
    """Run ``n`` missions; drift controls planning/execution divergence."""
    rng = random.Random(seed)
    missions: List[MissionOutcome] = []
    for __ in range(n):
        planned = _random_conditions(rng)
        executed = perturb_conditions(planned, rng, drift)
        route_ok = {
            route: ground_truth_route_ok(route, executed) for route in ROUTES
        }
        missions.append(MissionOutcome(planned, executed, route_ok))
    return missions
