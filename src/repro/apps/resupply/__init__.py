"""Logistical resupply (paper Section IV.B).

Convoy missions in an urban coalition environment: a route must be
chosen per mission under planning-phase (speculative) or
execution-phase (real-time) conditions.  The coalition "is able to
learn from previous experience": each completed mission contributes
labelled examples, and accuracy improves as missions accumulate.
"""

from repro.apps.resupply.domain import (
    MissionConditions,
    MissionOutcome,
    ROUTES,
    ground_truth_route_ok,
    simulate_missions,
)
from repro.apps.resupply.learner import (
    ResupplyLearner,
    resupply_asg,
    resupply_hypothesis_space,
    conditions_to_context,
)

__all__ = [
    "ROUTES",
    "MissionConditions",
    "MissionOutcome",
    "ground_truth_route_ok",
    "simulate_missions",
    "resupply_asg",
    "resupply_hypothesis_space",
    "conditions_to_context",
    "ResupplyLearner",
]
