"""Federated learning governance (paper Section IV.E).

Coalition members share model insights rather than raw data; the
receiving party needs policies deciding "how to incorporate those
insights together, e.g. by adapting those models, by combining those
models, or by training a new model".  This app simulates a small
federated linear-regression coalition and learns the governance policy
with the symbolic framework.
"""

from repro.apps.federated.domain import (
    InsightOffer,
    GOVERNANCE_ACTIONS,
    correct_action,
    sample_insight_offers,
)
from repro.apps.federated.governance import (
    GovernanceLearner,
    federated_asg,
    insight_to_context,
)
from repro.apps.federated.simulation import (
    FederatedSimulation,
    PartnerSpec,
)

__all__ = [
    "InsightOffer",
    "GOVERNANCE_ACTIONS",
    "correct_action",
    "sample_insight_offers",
    "federated_asg",
    "insight_to_context",
    "GovernanceLearner",
    "FederatedSimulation",
    "PartnerSpec",
]
