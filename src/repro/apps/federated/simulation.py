"""A small federated linear-regression coalition.

Exercises the Section IV.E pipeline end-to-end: partners hold private
linear data, share ridge-regression weight vectors ("insights"), and
the receiving party applies a governance policy to each update before
aggregation.  A poisoned or off-distribution update that slips past
governance measurably damages the global model, so the benchmark can
compare governance policies by final test error.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.apps.federated.domain import InsightOffer, correct_action

__all__ = ["PartnerSpec", "FederatedSimulation"]


class PartnerSpec(NamedTuple):
    """A coalition partner's data-generating configuration."""

    name: str
    trusted: bool
    same_distribution: bool
    poisoned: bool  # an untrusted partner may send corrupted weights
    n_samples: int = 60


def _ridge(X: np.ndarray, y: np.ndarray, lam: float = 1e-2) -> np.ndarray:
    d = X.shape[1]
    return np.linalg.solve(X.T @ X + lam * np.eye(d), X.T @ y)


class FederatedSimulation:
    """One receiving party plus a set of partners."""

    def __init__(
        self,
        partners: Sequence[PartnerSpec],
        dim: int = 6,
        noise: float = 0.1,
        shift: float = 3.0,
        seed: int = 0,
    ):
        self.partners = list(partners)
        self.dim = dim
        self.noise = noise
        self.shift = shift
        self.rng = np.random.default_rng(seed)
        self.true_weights = self.rng.normal(size=dim)
        # the local party's own data is scarce — the whole point of
        # federating is that partners' insights are worth governing in
        self.local_X, self.local_y = self._draw(8, shifted=False)
        self.local_weights = _ridge(self.local_X, self.local_y)
        self.test_X, self.test_y = self._draw(400, shifted=False)

    def _draw(self, n: int, shifted: bool) -> Tuple[np.ndarray, np.ndarray]:
        X = self.rng.normal(size=(n, self.dim))
        weights = self.true_weights.copy()
        if shifted:
            weights = weights + self.shift * np.ones(self.dim) / np.sqrt(self.dim)
        y = X @ weights + self.noise * self.rng.normal(size=n)
        return X, y

    def partner_update(self, spec: PartnerSpec) -> np.ndarray:
        X, y = self._draw(spec.n_samples, shifted=not spec.same_distribution)
        weights = _ridge(X, y)
        if spec.poisoned:
            weights = -4.0 * weights  # adversarial scaling
        return weights

    def offer_for(self, spec: PartnerSpec, update: np.ndarray) -> InsightOffer:
        divergence = float(np.linalg.norm(update - self.local_weights))
        return InsightOffer(
            partner_trusted=spec.trusted,
            same_distribution=spec.same_distribution,
            divergent=divergence > 2.0,
        )

    def run_round(self, decide) -> Dict[str, object]:
        """One aggregation round under a governance decision function.

        ``decide(offer) -> action`` chooses per update; actions follow
        the paper's taxonomy: combine (full weight), adapt (quarter
        weight), retrain (refit on own data pooled with a synthetic
        regeneration from the insight), reject (drop).
        Returns the resulting model, its test MSE, and the action tally.
        """
        contributions = [(self.local_weights, 1.0)]
        actions: Dict[str, int] = {}
        retrain_rows: List[Tuple[np.ndarray, np.ndarray]] = []
        for spec in self.partners:
            update = self.partner_update(spec)
            offer = self.offer_for(spec, update)
            action = decide(offer)
            actions[action] = actions.get(action, 0) + 1
            if action == "combine":
                contributions.append((update, 1.0))
            elif action == "adapt":
                contributions.append((update, 0.25))
            elif action == "retrain":
                # regenerate pseudo-data from the insight and refit jointly
                X = self.rng.normal(size=(40, self.dim))
                retrain_rows.append((X, X @ update))
            # reject: drop silently
        if retrain_rows:
            X = np.vstack([self.local_X] + [x for x, __ in retrain_rows])
            y = np.concatenate([self.local_y] + [y for __, y in retrain_rows])
            contributions[0] = (_ridge(X, y), 1.0)
        total = sum(w for __, w in contributions)
        model = sum(w * u for u, w in contributions) / total
        mse = float(np.mean((self.test_X @ model - self.test_y) ** 2))
        return {"model": model, "mse": mse, "actions": actions}

    def oracle_mse(self) -> float:
        """Test error of the ground-truth-governed aggregation."""
        return float(self.run_round(correct_action)["mse"])
