"""Learning the federated-governance policy as an ASG-based GPM."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg.annotated import ASG
from repro.asg.asg_parser import parse_asg
from repro.asg.semantics import accepts
from repro.core.contexts import Context
from repro.learning.decomposable import learn_auto
from repro.learning.mode_bias import CandidateRule, constraint_space
from repro.learning.tasks import ASGLearningTask, ContextExample
from repro.apps.federated.domain import (
    GOVERNANCE_ACTIONS,
    InsightOffer,
    correct_action,
)

__all__ = ["federated_asg", "insight_to_context", "GovernanceLearner"]

_ASG_TEXT = """
decision -> "govern" action
action -> "combine" { action(combine). }
action -> "adapt"   { action(adapt). }
action -> "retrain" { action(retrain). }
action -> "reject"  { action(reject). }
"""

GOVERN_PRODUCTION = 0


def federated_asg() -> ASG:
    return parse_asg(_ASG_TEXT)


def insight_to_context(offer: InsightOffer) -> Context:
    return Context.from_attributes(
        {
            "trusted": offer.partner_trusted,
            "same_distribution": offer.same_distribution,
            "divergent": offer.divergent,
        }
    )


def _hypothesis_space(max_body: int = 3) -> List[CandidateRule]:
    pool: List[Literal] = [
        Literal(Atom("action", [Constant(a)], (2,)), True) for a in GOVERNANCE_ACTIONS
    ]
    for name in ("trusted", "same_distribution", "divergent"):
        pool.append(Literal(Atom(name), True))
        pool.append(Literal(Atom(name), False))
    return constraint_space(pool, prod_ids=(GOVERN_PRODUCTION,), max_body=max_body)


class GovernanceLearner:
    """Learns which governance action is valid per insight context."""

    def __init__(self, max_body: int = 3):
        self.asg = federated_asg()
        self.space = _hypothesis_space(max_body)
        self.learned: Optional[ASG] = None

    def fit(self, offers: Sequence[InsightOffer]) -> "GovernanceLearner":
        positive: List[ContextExample] = []
        negative: List[ContextExample] = []
        for offer in offers:
            context = insight_to_context(offer).program
            right = correct_action(offer)
            for action in GOVERNANCE_ACTIONS:
                example = ContextExample(("govern", action), context)
                if action == right:
                    positive.append(example)
                else:
                    negative.append(example)
        task = ASGLearningTask(self.asg, self.space, positive, negative)
        result = learn_auto(task, max_rules=12)
        self.learned = self.asg.with_rules(result.rules)
        return self

    def decide(self, offer: InsightOffer) -> str:
        if self.learned is None:
            raise RuntimeError("learner not fitted")
        grammar = self.learned.with_context(insight_to_context(offer).program)
        valid = [
            action
            for action in GOVERNANCE_ACTIONS
            if accepts(grammar, ("govern", action))
        ]
        # a well-trained model leaves exactly one action; fall back to
        # the safe choice on ambiguity or vacuity
        return valid[0] if len(valid) == 1 else "reject"

    def accuracy(self, offers: Sequence[InsightOffer]) -> float:
        if not offers:
            return 1.0
        correct = sum(
            1 for offer in offers if self.decide(offer) == correct_action(offer)
        )
        return correct / len(offers)
