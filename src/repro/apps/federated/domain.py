"""Federated-governance decision domain.

For each received insight (a partner's model update) the receiving
party sees a small context — partner trust, whether the partner's data
distribution matches, how far the update diverges from the local model
— and must pick a governance action.

Ground-truth doctrine (the policy to learn):

* ``reject``  — untrusted partner with a divergent update (likely poisoned);
* ``adapt``   — untrusted but consistent update (usable at reduced weight);
* ``retrain`` — trusted partner whose data distribution differs
  (their insight describes a different regime: trigger joint retraining);
* ``combine`` — trusted, same-distribution updates are simply averaged in.
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence

__all__ = [
    "GOVERNANCE_ACTIONS",
    "InsightOffer",
    "correct_action",
    "sample_insight_offers",
]

GOVERNANCE_ACTIONS = ("combine", "adapt", "retrain", "reject")


class InsightOffer(NamedTuple):
    """The decision context for one received model update."""

    partner_trusted: bool
    same_distribution: bool
    divergent: bool

    def features(self) -> Dict[str, object]:
        return {
            "partner_trusted": self.partner_trusted,
            "same_distribution": self.same_distribution,
            "divergent": self.divergent,
        }


def correct_action(offer: InsightOffer) -> str:
    if not offer.partner_trusted:
        return "reject" if offer.divergent else "adapt"
    if not offer.same_distribution:
        return "retrain"
    return "combine"


def sample_insight_offers(n: int, seed: int = 0) -> List[InsightOffer]:
    rng = random.Random(seed)
    return [
        InsightOffer(
            partner_trusted=rng.random() < 0.5,
            same_distribution=rng.random() < 0.5,
            divergent=rng.random() < 0.5,
        )
        for __ in range(n)
    ]
