"""Learning helper-microservice selection policies.

The GPM's policy strings are ``route <helper>`` and ``refuse``; the
learnable semantics are constraints on which helper/refusal is valid
for the offer described by the context.  Because exactly one helper is
correct per accepted offer, the learner sees, for each training offer,
one positive example (the right string) and the rest as negatives.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg.annotated import ASG
from repro.asg.asg_parser import parse_asg
from repro.asg.semantics import accepts
from repro.core.contexts import Context
from repro.learning.decomposable import learn_auto
from repro.learning.mode_bias import CandidateRule, constraint_space
from repro.learning.tasks import ASGLearningTask, ContextExample
from repro.apps.datasharing.domain import (
    DataOffer,
    HELPERS,
    correct_helper,
    sharing_allowed,
)

__all__ = ["datasharing_asg", "offer_to_context", "HelperSelectionLearner"]

_ASG_TEXT = """
decision -> "route" helper
decision -> "refuse"
helper -> "basic_check"       { helper(basic_check). }
helper -> "deep_scan"         { helper(deep_scan). }
helper -> "provenance_verify" { helper(provenance_verify). }
"""

ROUTE_PRODUCTION = 0
REFUSE_PRODUCTION = 1


def datasharing_asg() -> ASG:
    return parse_asg(_ASG_TEXT)


def offer_to_context(offer: DataOffer) -> Context:
    return Context.from_attributes(
        {
            "untrusted": offer.partner_trust == "untrusted",
            "document": offer.data_type == "document",
            "low_quality": offer.quality == "low",
            "high_value": offer.value == "high",
        }
    )


def _hypothesis_space(max_body: int = 3) -> List[CandidateRule]:
    helper_literals = [
        Literal(Atom("helper", [Constant(helper)], (2,)), True) for helper in HELPERS
    ]
    context_literals: List[Literal] = []
    for name in ("untrusted", "document", "low_quality", "high_value"):
        context_literals.append(Literal(Atom(name), True))
        context_literals.append(Literal(Atom(name), False))
    route_space = constraint_space(
        helper_literals + context_literals,
        prod_ids=(ROUTE_PRODUCTION,),
        max_body=max_body,
    )
    refuse_space = constraint_space(
        context_literals, prod_ids=(REFUSE_PRODUCTION,), max_body=max_body
    )
    return route_space + refuse_space


class HelperSelectionLearner:
    """Learns which helper microservice (or refusal) fits each offer."""

    def __init__(self, max_body: int = 3):
        self.asg = datasharing_asg()
        self.space = _hypothesis_space(max_body)
        self.learned: Optional[ASG] = None

    @staticmethod
    def correct_string(offer: DataOffer) -> Tuple[str, ...]:
        if not sharing_allowed(offer):
            return ("refuse",)
        return ("route", correct_helper(offer))

    def fit(self, offers: Sequence[DataOffer]) -> "HelperSelectionLearner":
        positive: List[ContextExample] = []
        negative: List[ContextExample] = []
        all_strings = [("refuse",)] + [("route", helper) for helper in HELPERS]
        for offer in offers:
            context = offer_to_context(offer).program
            right = self.correct_string(offer)
            for string in all_strings:
                example = ContextExample(string, context)
                if string == right:
                    positive.append(example)
                else:
                    negative.append(example)
        task = ASGLearningTask(self.asg, self.space, positive, negative)
        result = learn_auto(task, max_rules=10)
        self.learned = self.asg.with_rules(result.rules)
        return self

    def decide(self, offer: DataOffer) -> Tuple[str, ...]:
        """The unique valid decision string for an offer (or the first if
        the learned model is still ambiguous)."""
        if self.learned is None:
            raise RuntimeError("learner not fitted")
        context = offer_to_context(offer).program
        grammar = self.learned.with_context(context)
        options = [("refuse",)] + [("route", helper) for helper in HELPERS]
        valid = [s for s in options if accepts(grammar, s)]
        return valid[0] if valid else ("refuse",)

    def accuracy(self, offers: Sequence[DataOffer]) -> float:
        if not offers:
            return 1.0
        correct = sum(
            1 for offer in offers if self.decide(offer) == self.correct_string(offer)
        )
        return correct / len(offers)
