"""The data-sharing domain.

A partner offers a data item; the receiving party must (a) decide
whether to use it and (b) route it through the right *helper
microservice* for evaluation.  Ground truth doctrine:

* data from untrusted partners always goes through ``deep_scan``;
* documents (regardless of partner) need ``provenance_verify``;
* everything else takes the cheap ``basic_check``;
* sharing is refused outright when the partner is untrusted *and* the
  data is low-quality (not worth the scan cost).
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Tuple

__all__ = [
    "HELPERS",
    "DATA_TYPES",
    "DataOffer",
    "correct_helper",
    "sharing_allowed",
    "sample_offers",
]

HELPERS = ("basic_check", "deep_scan", "provenance_verify")
DATA_TYPES = ("imagery", "signal", "document")
TRUST_LEVELS = ("trusted", "untrusted")
QUALITY_LEVELS = ("high", "low")
VALUE_LEVELS = ("high", "low")


class DataOffer(NamedTuple):
    """One data item offered by a coalition partner."""

    partner_trust: str
    data_type: str
    quality: str
    value: str

    def features(self) -> Dict[str, object]:
        return {
            "partner_trust": self.partner_trust,
            "data_type": self.data_type,
            "quality": self.quality,
            "value": self.value,
        }


def sharing_allowed(offer: DataOffer) -> bool:
    """Whether to accept the offer at all."""
    return not (offer.partner_trust == "untrusted" and offer.quality == "low")


def correct_helper(offer: DataOffer) -> str:
    """Which helper microservice evaluates the accepted offer."""
    if offer.data_type == "document":
        return "provenance_verify"
    if offer.partner_trust == "untrusted":
        return "deep_scan"
    return "basic_check"


def sample_offers(n: int, seed: int = 0) -> List[DataOffer]:
    rng = random.Random(seed)
    return [
        DataOffer(
            partner_trust=rng.choice(TRUST_LEVELS),
            data_type=rng.choice(DATA_TYPES),
            quality=rng.choice(QUALITY_LEVELS),
            value=rng.choice(VALUE_LEVELS),
        )
        for __ in range(n)
    ]
