"""Coalition data sharing (paper Section IV.D).

Data offered by partners varies in quality, trust, and value; sharing
decisions are evaluated with the help of *helper microservices* (after
Verma et al. [33]).  The symbolic learner learns "which microservice to
use for which context and data" — the research direction the paper
calls out explicitly.
"""

from repro.apps.datasharing.domain import (
    DataOffer,
    HELPERS,
    correct_helper,
    sample_offers,
    sharing_allowed,
)
from repro.apps.datasharing.learner import (
    HelperSelectionLearner,
    datasharing_asg,
    offer_to_context,
)

__all__ = [
    "DataOffer",
    "HELPERS",
    "correct_helper",
    "sharing_allowed",
    "sample_offers",
    "datasharing_asg",
    "offer_to_context",
    "HelperSelectionLearner",
]
