"""Autonomy-level taxonomies and transient restrictions (Section IV.A).

Implements the two specifications the paper cites:

* **ALFUS** (Autonomy Levels For Unmanned Systems): levels 0 (human
  remote control) through 10 (full autonomy), with the paper's
  highlighted Level 6 (directive-following with goal setting and
  decision approval);
* **SAE J3016** driving-automation levels 0–5, with conversion to the
  ALFUS scale.

Plus the two dynamic mechanisms the paper describes:

* *transient restrictions* — "in local situations authorities may
  enforce transient autonomy levels to aid the management of a given
  situation, such as maintenance works or emergency vehicle scenarios";
* *capability delegation* — "CAVs of lower LOA may be able to utilize
  capabilities or services from nearby CAVs of higher LOA".
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from repro.errors import ReproError

__all__ = [
    "ALFUS_LEVELS",
    "sae_to_alfus",
    "alfus_to_sae",
    "TransientRestriction",
    "effective_loa",
    "Vehicle",
    "find_delegate",
]

ALFUS_LEVELS: Dict[int, str] = {
    0: "human remote control",
    1: "remote control with vehicle state knowledge",
    2: "teleoperation with external data",
    3: "task delegation with continuous oversight",
    4: "human-delegated plans, vehicle executes",
    5: "mixed initiative, shared decision making",
    6: "directive-following: goal setting and decision approval",
    7: "self-directed within broad directives",
    8: "self-directed, human informed by exception",
    9: "near-full autonomy, strategic human input only",
    10: "full autonomy: only resulting output is communicated",
}

_SAE_TO_ALFUS = {0: 0, 1: 2, 2: 4, 3: 6, 4: 8, 5: 10}
_ALFUS_TO_SAE = {alfus: sae for sae, alfus in _SAE_TO_ALFUS.items()}


def sae_to_alfus(sae_level: int) -> int:
    """Map an SAE J3016 driving-automation level (0-5) to ALFUS (0-10)."""
    try:
        return _SAE_TO_ALFUS[sae_level]
    except KeyError:
        raise ReproError(f"SAE level must be 0..5, got {sae_level}") from None


def alfus_to_sae(alfus_level: int) -> int:
    """Map an ALFUS level to the nearest not-exceeding SAE level."""
    if not 0 <= alfus_level <= 10:
        raise ReproError(f"ALFUS level must be 0..10, got {alfus_level}")
    best = 0
    for sae, alfus in _SAE_TO_ALFUS.items():
        if alfus <= alfus_level:
            best = max(best, sae)
    return best


class TransientRestriction(NamedTuple):
    """A temporary LOA cap imposed by a local authority.

    ``active`` is a predicate over a context dict; inactive restrictions
    do not constrain anyone.  ``region`` of None applies everywhere.
    """

    cap: int
    reason: str
    region: Optional[str] = None
    active: Callable[[Dict], bool] = lambda context: True


def effective_loa(
    vehicle_loa: int,
    region: str,
    restrictions: Sequence[TransientRestriction],
    context: Optional[Dict] = None,
) -> int:
    """The LOA a vehicle may actually exercise here and now.

    The vehicle's intrinsic level, capped by every active restriction
    that applies to the region — "assuming a static LOA proposes a
    challenge for a CAV".
    """
    context = context or {}
    level = vehicle_loa
    for restriction in restrictions:
        if restriction.region is not None and restriction.region != region:
            continue
        if not restriction.active(context):
            continue
        level = min(level, restriction.cap)
    return level


class Vehicle(NamedTuple):
    """A CAV with an intrinsic autonomy level and a position (region)."""

    name: str
    loa: int
    region: str
    shareable: bool = True  # willing to offer services to the coalition


def find_delegate(
    required_loa: int,
    region: str,
    vehicles: Sequence[Vehicle],
    restrictions: Sequence[TransientRestriction] = (),
    context: Optional[Dict] = None,
) -> Optional[Vehicle]:
    """Find a nearby higher-LOA vehicle to perform a task on behalf of
    a lower-LOA requester.

    Candidates must be in the same region, shareable, and retain
    ``required_loa`` *after* transient restrictions.  The least-capable
    sufficient vehicle is chosen (preserving high-LOA capacity).
    """
    candidates = [
        vehicle
        for vehicle in vehicles
        if vehicle.region == region
        and vehicle.shareable
        and effective_loa(vehicle.loa, region, restrictions, context) >= required_loa
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda vehicle: (vehicle.loa, vehicle.name))
