"""Connected and Autonomous Vehicles (paper Section IV.A).

An ASG-based GPM that "states whether a particular request to execute a
driving task should be accepted or rejected, based on the current
environmental conditions and the LOA of the vehicle, region and driving
task" (after Cunnington et al. [25]).
"""

from repro.apps.cav.alfus import (
    ALFUS_LEVELS,
    TransientRestriction,
    Vehicle,
    alfus_to_sae,
    effective_loa,
    find_delegate,
    sae_to_alfus,
)
from repro.apps.cav.domain import (
    CavScenario,
    TASKS,
    TASK_LOA,
    WEATHER,
    ground_truth_accept,
    sample_scenarios,
)
from repro.apps.cav.gpm import (
    CavSymbolicLearner,
    cav_asg,
    cav_hypothesis_space,
    scenario_to_context,
)

__all__ = [
    "ALFUS_LEVELS",
    "TransientRestriction",
    "Vehicle",
    "sae_to_alfus",
    "alfus_to_sae",
    "effective_loa",
    "find_delegate",
    "CavScenario",
    "TASKS",
    "TASK_LOA",
    "WEATHER",
    "ground_truth_accept",
    "sample_scenarios",
    "cav_asg",
    "cav_hypothesis_space",
    "scenario_to_context",
    "CavSymbolicLearner",
]
