"""The CAV driving-task domain model.

Follows Section IV.A: vehicles, regions, and driving tasks each carry a
Level of Autonomy (we use a compact 0–5 scale in the spirit of SAE
J3016); transient regional restrictions and environmental conditions
modulate what is allowed.

Ground truth: a driving-task request is **accepted** iff

* the vehicle's LOA meets the task's required LOA,
* the region's (possibly transiently lowered) LOA cap meets it too, and
* the task is not *risky* while conditions are *severe*
  (snow/fog — the environmental-condition clause).
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Sequence, Tuple

__all__ = [
    "TASKS",
    "TASK_LOA",
    "RISKY_TASKS",
    "WEATHER",
    "SEVERE_WEATHER",
    "CavScenario",
    "ground_truth_accept",
    "sample_scenarios",
]

TASKS = ("lane_keep", "lane_change", "overtake", "park")

TASK_LOA: Dict[str, int] = {
    "lane_keep": 1,
    "lane_change": 2,
    "overtake": 3,
    "park": 2,
}

RISKY_TASKS = ("lane_change", "overtake")

WEATHER = ("clear", "rain", "snow", "fog")
SEVERE_WEATHER = ("snow", "fog")

MAX_LOA = 5


class CavScenario(NamedTuple):
    """One driving-task request plus its context."""

    task: str
    vehicle_loa: int
    region_loa: int
    weather: str
    time_of_day: str  # "day" | "night"

    def features(self) -> Dict[str, object]:
        """The flat attribute dict the shallow-ML baselines train on."""
        return {
            "task": self.task,
            "vehicle_loa": self.vehicle_loa,
            "region_loa": self.region_loa,
            "weather": self.weather,
            "time_of_day": self.time_of_day,
        }


def ground_truth_accept(scenario: CavScenario) -> bool:
    """The (hidden) policy the learners must recover."""
    required = TASK_LOA[scenario.task]
    if scenario.vehicle_loa < required:
        return False
    if scenario.region_loa < required:
        return False
    if scenario.task in RISKY_TASKS and scenario.weather in SEVERE_WEATHER:
        return False
    return True


def sample_scenarios(
    n: int, seed: int = 0
) -> List[Tuple[CavScenario, bool]]:
    """Sample labelled scenarios uniformly over the domain."""
    rng = random.Random(seed)
    out: List[Tuple[CavScenario, bool]] = []
    for __ in range(n):
        scenario = CavScenario(
            task=rng.choice(TASKS),
            vehicle_loa=rng.randint(0, MAX_LOA),
            region_loa=rng.randint(0, MAX_LOA),
            weather=rng.choice(WEATHER),
            time_of_day=rng.choice(("day", "night")),
        )
        out.append((scenario, ground_truth_accept(scenario)))
    return out
