"""The CAV ASG-based generative policy model and its symbolic learner.

The initial ASG (the PBMS handout) fixes the policy syntax and the
*derived-feature background knowledge* — how raw context (LOA numbers,
weather) maps to the abstract conditions constraints may mention.  The
learnable part is which constraints govern the ``accept`` production,
exactly the paper's split between known syntax and learned semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom, Literal
from repro.asg.annotated import ASG
from repro.asg.asg_parser import parse_asg
from repro.core.contexts import Context
from repro.learning.decomposable import learn_auto
from repro.learning.mode_bias import CandidateRule, constraint_space
from repro.learning.tasks import ASGLearningTask, ContextExample
from repro.apps.cav.domain import TASKS, TASK_LOA, CavScenario

__all__ = [
    "cav_asg",
    "cav_hypothesis_space",
    "scenario_to_context",
    "CavSymbolicLearner",
]

_ASG_TEXT = """
decision -> "accept" task {
    veh_insufficient :- task(T)@2, requires(T, L), vehicle_loa(V), V < L.
    reg_insufficient :- task(T)@2, requires(T, L), region_loa(V), V < L.
    risky :- task(T)@2, risky_task(T).
}
decision -> "reject" task
task -> "lane_keep"   { task(lane_keep). }
task -> "lane_change" { task(lane_change). }
task -> "overtake"    { task(overtake). }
task -> "park"        { task(park). }
"""

ACCEPT_PRODUCTION = 0


def cav_asg() -> ASG:
    """The initial CAV ASG (syntax + background feature rules)."""
    return parse_asg(_ASG_TEXT)


def cav_hypothesis_space(max_body: int = 2) -> List[CandidateRule]:
    """Constraints over the derived conditions, attachable to ``accept``."""
    pool = []
    for name in ("veh_insufficient", "reg_insufficient", "risky", "severe", "night"):
        pool.append(Literal(Atom(name), True))
        pool.append(Literal(Atom(name), False))
    return constraint_space(pool, prod_ids=(ACCEPT_PRODUCTION,), max_body=max_body)


def scenario_to_context(scenario: CavScenario) -> Context:
    """Encode a scenario's context as ASP facts (the request's task is
    carried by the policy string, not the context)."""
    lines = [
        f"vehicle_loa({scenario.vehicle_loa}).",
        f"region_loa({scenario.region_loa}).",
        f"weather({scenario.weather}).",
    ]
    if scenario.weather in ("snow", "fog"):
        lines.append("severe.")
    if scenario.time_of_day == "night":
        lines.append("night.")
    for task, loa in TASK_LOA.items():
        lines.append(f"requires({task}, {loa}).")
    lines.append("risky_task(lane_change). risky_task(overtake).")
    return Context.from_text("\n".join(lines))


class CavSymbolicLearner:
    """Train/predict wrapper giving the ASG-GPM a classifier interface,
    so experiment E5 can put it on the same learning curve as the
    shallow-ML baselines."""

    def __init__(self, max_body: int = 2, max_violations: int = 0):
        self.asg = cav_asg()
        self.space = cav_hypothesis_space(max_body)
        self.max_violations = max_violations
        self.learned: Optional[ASG] = None

    def fit(self, data: Sequence[Tuple[CavScenario, bool]]) -> "CavSymbolicLearner":
        positive: List[ContextExample] = []
        negative: List[ContextExample] = []
        for scenario, accepted in data:
            example = ContextExample(
                ("accept", scenario.task),
                scenario_to_context(scenario).program,
            )
            (positive if accepted else negative).append(example)
        task = ASGLearningTask(self.asg, self.space, positive, negative)
        budget = self.max_violations
        result = learn_auto(task, max_violations=budget)
        self.learned = self.asg.with_rules(result.rules)
        return self

    def predict_one(self, scenario: CavScenario) -> bool:
        if self.learned is None:
            raise RuntimeError("learner not fitted")
        grammar = self.learned.with_context(scenario_to_context(scenario).program)
        from repro.asg.semantics import accepts

        return accepts(grammar, ("accept", scenario.task))

    def predict(self, scenarios: Sequence[CavScenario]) -> List[bool]:
        return [self.predict_one(s) for s in scenarios]

    def learned_constraints(self) -> List[str]:
        if self.learned is None:
            return []
        out = []
        for prod_id, program in sorted(self.learned.annotations.items()):
            base = {repr(r) for r in self.asg.annotation(prod_id)}
            for rule in program:
                if repr(rule) not in base:
                    out.append(repr(rule))
        return sorted(out)
