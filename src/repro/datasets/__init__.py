"""Synthetic dataset generators.

Stand-ins for the paper's external data (the att/XACML conformance
logs), built from known ground truths so experiments can *measure*
learning quality, plus the noise/pathology injectors the Figure 3b
discussion calls for.
"""

from repro.datasets.noise import (
    filter_low_quality,
    mark_gaps_not_applicable,
    inconsistency_rate,
    inject_flips,
    inject_not_applicable,
)
from repro.datasets.xacml_conformance import (
    LogEntry,
    decision_for,
    default_ground_truth,
    default_schema,
    entry_to_example,
    per_user_ground_truth,
    request_to_context,
    sample_log,
    USER_ROLES,
)

__all__ = [
    "LogEntry",
    "default_schema",
    "default_ground_truth",
    "per_user_ground_truth",
    "sample_log",
    "decision_for",
    "request_to_context",
    "entry_to_example",
    "USER_ROLES",
    "inject_flips",
    "inject_not_applicable",
    "filter_low_quality",
    "mark_gaps_not_applicable",
    "inconsistency_rate",
]
