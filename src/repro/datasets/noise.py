"""Noise injection and the paper's dataset-filtering mitigation.

Section IV.C: "'Low quality' examples include inconsistent responses to
similar requests and requests associated with irrelevant responses
which do not reflect appropriate decisions of a policy (i.e.,
'not applicable' decision for XACML policies)."

:func:`inject_flips` and :func:`inject_not_applicable` create the two
kinds of low-quality examples; :func:`filter_low_quality` is the formal
filter the paper proposes: drop irrelevant responses, and resolve
inconsistent duplicates by majority (dropping exact ties).
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.datasets.xacml_conformance import LogEntry
from repro.policy.model import Decision

__all__ = [
    "inject_flips",
    "inject_not_applicable",
    "filter_low_quality",
    "inconsistency_rate",
]


def inject_flips(log: Sequence[LogEntry], rate: float, seed: int = 0) -> List[LogEntry]:
    """Flip permit<->deny on a fraction of entries (inconsistent responses)."""
    rng = random.Random(seed)
    out: List[LogEntry] = []
    for entry in log:
        decision = entry.decision
        if decision in (Decision.PERMIT, Decision.DENY) and rng.random() < rate:
            decision = Decision.DENY if decision is Decision.PERMIT else Decision.PERMIT
        out.append(LogEntry(entry.request, decision))
    return out


def inject_not_applicable(
    log: Sequence[LogEntry], rate: float, seed: int = 0
) -> List[LogEntry]:
    """Replace a fraction of responses with the irrelevant NotApplicable."""
    rng = random.Random(seed)
    out: List[LogEntry] = []
    for entry in log:
        decision = entry.decision
        if rng.random() < rate:
            decision = Decision.NOT_APPLICABLE
        out.append(LogEntry(entry.request, decision))
    return out


def mark_gaps_not_applicable(log: Sequence[LogEntry], policies) -> List[LogEntry]:
    """Relabel entries that no ground-truth policy actually matched.

    A real XACML PDP returns *NotApplicable* when no policy applies; the
    synthetic ground truth maps that to a deny-by-default.  This
    injector restores the realistic log: requests outside every
    policy's target carry the irrelevant NotApplicable response — the
    systematic version of the paper's "Policy 3" low-quality examples.
    """
    from repro.policy.evaluation import evaluate_policy_set

    out: List[LogEntry] = []
    for entry in log:
        raw = evaluate_policy_set(policies, entry.request, "permit-overrides")
        if raw in (Decision.NOT_APPLICABLE, Decision.INDETERMINATE):
            out.append(LogEntry(entry.request, Decision.NOT_APPLICABLE))
        else:
            out.append(entry)
    return out


def filter_low_quality(log: Sequence[LogEntry]) -> List[LogEntry]:
    """The paper's filtering mitigation.

    1. Drop entries with irrelevant responses (NotApplicable /
       Indeterminate are not decisions a specified policy produces).
    2. Group the rest by request; keep the majority decision per request
       (dropping the group entirely on an exact tie — irreconcilably
       inconsistent evidence).
    """
    by_request: Dict[tuple, List[LogEntry]] = defaultdict(list)
    for entry in log:
        if entry.decision in (Decision.PERMIT, Decision.DENY):
            by_request[entry.request.key()].append(entry)
    out: List[LogEntry] = []
    for entries in by_request.values():
        counts = Counter(entry.decision for entry in entries)
        ranked = counts.most_common()
        if len(ranked) > 1 and ranked[0][1] == ranked[1][1]:
            continue  # exact tie: drop the inconsistent group
        majority = ranked[0][0]
        out.extend(entry for entry in entries if entry.decision is majority)
    return out


def inconsistency_rate(log: Sequence[LogEntry]) -> float:
    """Fraction of entries whose request also appears with a different
    decision — a dataset-quality diagnostic."""
    decisions: Dict[tuple, set] = defaultdict(set)
    for entry in log:
        decisions[entry.request.key()].add(entry.decision)
    if not log:
        return 0.0
    inconsistent = sum(
        1 for entry in log if len(decisions[entry.request.key()]) > 1
    )
    return inconsistent / len(log)
