"""Synthetic stand-in for the att/XACML conformance request/response dataset.

The paper's Section IV.C case study learns XACML policies from "a public
dataset of requests and responses" (offline here).  This generator
produces the same *kind* of data with a known ground truth, so correct
and incorrect learning (Figure 3a/3b) can be measured rather than
eyeballed:

* a fixed attribute schema (roles, users, actions, resource types);
* a configurable ground-truth policy set;
* request/response logs sampled from the ground truth, optionally
  restricted to a sub-population (the overfitting inducer) or containing
  per-user grants rarer than their role (the unsafe-generalization
  inducer);
* conversion of log entries to ASP contexts / partial interpretations
  for the learner.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.asp.atoms import Atom
from repro.asp.parser import parse_atom
from repro.asp.rules import Program, fact
from repro.asp.terms import Constant
from repro.learning.tasks import PartialInterpretation
from repro.policy.evaluation import evaluate_policy_set
from repro.policy.model import (
    CategoricalDomain,
    Decision,
    DomainSchema,
    Effect,
    Request,
)
from repro.policy.xacml import Match, Policy, Target, XacmlRule

__all__ = [
    "default_schema",
    "default_ground_truth",
    "per_user_ground_truth",
    "LogEntry",
    "sample_log",
    "request_to_context",
    "entry_to_example",
    "decision_for",
]

ROLES = ("dba", "dev", "guest")
USERS = ("u1", "u2", "u3", "u4", "u5", "u6")
ACTIONS = ("read", "write")
RESOURCE_TYPES = ("db", "file")

# each user's role in the organization (fixed, known background knowledge)
USER_ROLES: Dict[str, str] = {
    "u1": "dba",
    "u2": "dba",
    "u3": "dev",
    "u4": "dev",
    "u5": "guest",
    "u6": "guest",
}


def default_schema() -> DomainSchema:
    """The attribute schema of the synthetic conformance suite."""
    return DomainSchema(
        {
            ("subject", "role"): CategoricalDomain(ROLES),
            ("subject", "id"): CategoricalDomain(USERS),
            ("action", "id"): CategoricalDomain(ACTIONS),
            ("resource", "type"): CategoricalDomain(RESOURCE_TYPES),
        }
    )


def default_ground_truth() -> List[Policy]:
    """The clean ground truth: role-based permits over a deny default.

    * DBAs may do anything on the db;
    * devs may read anything;
    * everything else is denied.
    """
    return [
        Policy(
            "gt_dba",
            [
                XacmlRule(
                    "r1",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("resource", "type", "eq", "db"),
                        ]
                    ),
                )
            ],
        ),
        Policy(
            "gt_dev_read",
            [
                XacmlRule(
                    "r1",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dev"),
                            Match("action", "id", "eq", "read"),
                        ]
                    ),
                )
            ],
        ),
    ]


def per_user_ground_truth(granted_users: Sequence[str] = ("u1",)) -> List[Policy]:
    """Ground truth for the unsafe-generalization study: only *specific*
    DBA users hold the write permission, not the role."""
    rules = [
        XacmlRule(
            f"r_{user}",
            Effect.PERMIT,
            Target(
                [
                    Match("subject", "id", "eq", user),
                    Match("action", "id", "eq", "write"),
                    Match("resource", "type", "eq", "db"),
                ]
            ),
        )
        for user in granted_users
    ]
    return [Policy("gt_user_grants", rules, combining="permit-overrides")]


def decision_for(policies: Sequence[Policy], request: Request) -> Decision:
    """Ground-truth decision: permit-overrides over the permits, else deny."""
    decision = evaluate_policy_set(policies, request, combining="permit-overrides")
    if decision in (Decision.NOT_APPLICABLE, Decision.INDETERMINATE):
        return Decision.DENY
    return decision


class LogEntry:
    """One request/response pair of the access log."""

    __slots__ = ("request", "decision")

    def __init__(self, request: Request, decision: Decision):
        self.request = request
        self.decision = decision

    def __repr__(self) -> str:
        return f"LogEntry({self.request!r} -> {self.decision.value})"


def _coherent_request(rng: random.Random, users: Sequence[str]) -> Request:
    """A request whose role attribute is consistent with the user's role."""
    user = rng.choice(list(users))
    return Request(
        {
            "subject": {"id": user, "role": USER_ROLES[user]},
            "action": {"id": rng.choice(ACTIONS)},
            "resource": {"type": rng.choice(RESOURCE_TYPES)},
        }
    )


def sample_log(
    policies: Sequence[Policy],
    n: int,
    seed: int = 0,
    users: Sequence[str] = USERS,
) -> List[LogEntry]:
    """Sample a request/response log from the ground truth.

    Restricting ``users`` to a narrow sub-population is the paper's
    overfitting inducer: the log only shows decisions for scenarios
    "similar to the ones in the example dataset".
    """
    rng = random.Random(seed)
    return [
        LogEntry(request, decision_for(policies, request))
        for request in (
            _coherent_request(rng, users) for __ in range(n)
        )
    ]


def request_to_context(request: Request) -> Program:
    """Encode a request as ASP context facts.

    ``subject.role=dba`` becomes ``role(dba).``, ``subject.id=u1``
    becomes ``user(u1).``, ``action.id`` becomes ``action(...)``,
    ``resource.type`` becomes ``rtype(...)``.
    """
    names = {
        ("subject", "role"): "role",
        ("subject", "id"): "user",
        ("action", "id"): "action",
        ("resource", "type"): "rtype",
    }
    program = Program()
    for category, attribute, value in sorted(request.items()):
        predicate = names.get((category, attribute))
        if predicate is None:
            predicate = f"{category}_{attribute}"
        program.add(fact(Atom(predicate, [Constant(str(value))])))
    return program


def entry_to_example(entry: LogEntry) -> PartialInterpretation:
    """Convert a log entry to an ILASP partial-interpretation example."""
    verdict = entry.decision.value
    others = {"permit", "deny", "not_applicable"} - {verdict}
    return PartialInterpretation(
        inclusions=[parse_atom(f"decision({verdict})")],
        exclusions=[parse_atom(f"decision({other})") for other in sorted(others)],
        context=request_to_context(entry.request),
    )
