"""The Figure 1 learning workflow.

    initial GPM (ASG)  ──┐
                         ├──>  ILASP-style learner ──> ASP hypothesis
    examples <s, C>   ───┘                                   │
                                                             v
                                              learned GPM (ASG : H)

:func:`learn_gpm` runs the full loop once; :func:`relearn` folds new
examples into an existing model (the PAdaP's adaptation step).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.learning.decomposable import learn_auto
from repro.learning.ilasp import LearnedHypothesis
from repro.learning.mode_bias import CandidateRule
from repro.learning.tasks import ASGLearningTask, ContextExample

__all__ = ["LabeledExample", "learn_gpm", "relearn"]


class LabeledExample:
    """A labelled policy observation: string + context + valid/invalid."""

    __slots__ = ("tokens", "context", "valid", "weight")

    def __init__(
        self,
        tokens: Sequence[str],
        context: Optional[Context] = None,
        valid: bool = True,
        weight: int = 1,
    ):
        self.tokens = tuple(tokens)
        self.context = context if context is not None else Context.empty()
        self.valid = valid
        self.weight = weight

    def to_context_example(self) -> ContextExample:
        return ContextExample(
            self.tokens, self.context.program, weight=self.weight
        )

    def __repr__(self) -> str:
        sign = "+" if self.valid else "-"
        return f"{sign}<{' '.join(self.tokens)}>"


def _split(
    examples: Sequence[LabeledExample],
) -> Tuple[List[ContextExample], List[ContextExample]]:
    positive = [e.to_context_example() for e in examples if e.valid]
    negative = [e.to_context_example() for e in examples if not e.valid]
    return positive, negative


def learn_gpm(
    model: GenerativePolicyModel,
    hypothesis_space: Sequence[CandidateRule],
    examples: Sequence[LabeledExample],
    max_violations: int = 0,
    max_rules: int = 4,
    max_cost: int = 12,
    budget=None,
) -> Tuple[GenerativePolicyModel, LearnedHypothesis]:
    """One pass of the Figure 1 workflow.

    The learner starts from the model's *initial* grammar (not the
    previously learned one), so stale rules are dropped rather than
    accumulated — re-learning with a grown example set subsumes the old
    hypothesis, exactly as in the paper's workflow where the learned ASG
    replaces the model.
    """
    positive, negative = _split(examples)
    task = ASGLearningTask(model.initial, hypothesis_space, positive, negative)
    result = learn_auto(
        task,
        max_violations=max_violations,
        max_rules=max_rules,
        auto_violations=False,
        max_cost=max_cost,
        budget=budget,
    )
    return model.with_hypothesis(result.candidates), result


def relearn(
    model: GenerativePolicyModel,
    hypothesis_space: Sequence[CandidateRule],
    old_examples: Sequence[LabeledExample],
    new_examples: Sequence[LabeledExample],
    **learn_kwargs,
) -> Tuple[GenerativePolicyModel, LearnedHypothesis]:
    """Adaptation: relearn over the accumulated example set."""
    return learn_gpm(
        model, hypothesis_space, list(old_examples) + list(new_examples), **learn_kwargs
    )
