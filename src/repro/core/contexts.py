"""Context representation.

A *context* in the paper is an ASP program of facts describing the
current situation (environmental conditions, resources, external
information).  This module gives contexts a friendly constructor from
attribute dictionaries and conversion to/from ASP programs, plus
composition (local context + PIP-acquired external context).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.asp.atoms import Atom
from repro.asp.parser import parse_program
from repro.asp.rules import Program, fact
from repro.asp.terms import Constant, Integer

__all__ = ["Context"]

Value = Union[str, int, bool]


def _term(value: Value):
    if isinstance(value, bool):
        return Constant("true" if value else "false")
    if isinstance(value, int):
        return Integer(value)
    return Constant(str(value))


class Context:
    """A named set of context facts.

    Construct from attribute pairs::

        Context.from_attributes({"weather": "rain", "hour": 14, "emergency": True})

    becomes the facts ``weather(rain). hour(14). emergency.`` —
    boolean ``True`` yields a 0-ary fact, ``False`` yields nothing.
    """

    __slots__ = ("name", "program")

    def __init__(self, program: Optional[Program] = None, name: str = ""):
        self.program = program if program is not None else Program()
        self.name = name

    @classmethod
    def from_attributes(cls, attributes: Mapping[str, Value], name: str = "") -> "Context":
        program = Program()
        for key, value in sorted(attributes.items()):
            if isinstance(value, bool):
                if value:
                    program.add(fact(Atom(key)))
            else:
                program.add(fact(Atom(key, [_term(value)])))
        return cls(program, name)

    @classmethod
    def from_text(cls, text: str, name: str = "") -> "Context":
        return cls(parse_program(text), name)

    @classmethod
    def empty(cls, name: str = "") -> "Context":
        return cls(Program(), name)

    def merged(self, other: "Context") -> "Context":
        """This context extended with another's facts (e.g. PIP input)."""
        merged_name = self.name or other.name
        return Context(self.program + other.program, merged_name)

    def facts(self) -> Tuple[Atom, ...]:
        return tuple(self.program.facts())

    def __len__(self) -> int:
        return len(self.program)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        inner = " ".join(f"{a!r}." for a in self.facts())
        return f"Context({label}{inner})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Context) and set(map(repr, self.program)) == set(
            map(repr, other.program)
        )

    def __hash__(self) -> int:
        return hash(frozenset(map(repr, self.program)))
