"""The paper's primary contribution, packaged: generative policy models.

* :class:`~repro.core.contexts.Context` — ASP fact sets describing situations.
* :class:`~repro.core.gpm.GenerativePolicyModel` — ASG + learned hypothesis.
* :mod:`repro.core.workflow` — the Figure 1 learn/adapt loop.
"""

from repro.core.contexts import Context
from repro.core.gpm import GenerativePolicyModel
from repro.core.workflow import LabeledExample, learn_gpm, relearn

__all__ = [
    "Context",
    "GenerativePolicyModel",
    "LabeledExample",
    "learn_gpm",
    "relearn",
]
