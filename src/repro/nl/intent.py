"""Controlled-English policy-intent parsing.

Recognized sentence shapes (case-insensitive; punctuation ignored):

* ``allow/permit <subject> to <action> [<condition clause>]``
* ``<subject> may/can <action> [<condition clause>]``
* ``deny/forbid/prohibit <subject> from <action> [<condition clause>]``
* ``<subject> must not/may not/cannot <action> [<condition clause>]``

Condition clauses: ``while/when/during/if <condition>`` (the rule
applies only under the condition) and ``unless <condition>`` (the rule
applies only *outside* the condition).
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.nl.vocabulary import Vocabulary

__all__ = ["Intent", "IntentParseError", "parse_intent", "parse_intents"]


class IntentParseError(ReproError):
    """Raised when a sentence cannot be interpreted against the vocabulary."""


class Intent(NamedTuple):
    """One parsed policy intent.

    ``permitted`` — whether the intent allows or forbids;
    ``condition`` — canonical condition name or None;
    ``condition_negated`` — True for ``unless`` clauses.
    """

    permitted: bool
    subject: str
    action: str
    condition: Optional[str] = None
    condition_negated: bool = False

    def describe(self) -> str:
        verb = "may" if self.permitted else "must not"
        suffix = ""
        if self.condition:
            word = "unless" if self.condition_negated else "while"
            suffix = f" {word} {self.condition}"
        return f"{self.subject} {verb} {self.action}{suffix}"


_DENY_MARKERS = (
    "must not",
    "may not",
    "cannot",
    "can not",
    "shall not",
    "is not allowed to",
    "are not allowed to",
)
_DENY_LEADS = ("deny", "forbid", "prohibit", "disallow", "never allow")
_PERMIT_LEADS = ("allow", "permit", "authorize", "let")
_PERMIT_MARKERS = (" may ", " can ", " is allowed to ", " are allowed to ")

_CONDITION_RE = re.compile(
    r"\b(while|when|during|whenever|if|unless|in case of)\b(?P<clause>.*)$",
    re.IGNORECASE,
)


def _normalize(sentence: str) -> str:
    text = sentence.strip().rstrip(".!").lower()
    return re.sub(r"\s+", " ", text)


def _split_condition(
    text: str, vocabulary: Vocabulary
) -> Tuple[str, Optional[str], bool]:
    match = _CONDITION_RE.search(text)
    if match is None:
        return text, None, False
    clause = match.group("clause")
    condition = vocabulary.find_condition(clause)
    if condition is None:
        raise IntentParseError(
            f"no known condition in clause {clause.strip()!r}"
        )
    negated = match.group(1).lower() == "unless"
    return text[: match.start()].strip(), condition, negated


def parse_intent(sentence: str, vocabulary: Vocabulary) -> Intent:
    """Parse one sentence into an :class:`Intent` (raises on failure)."""
    text = _normalize(sentence)
    if not text:
        raise IntentParseError("empty sentence")
    body, condition, negated = _split_condition(text, vocabulary)

    permitted: Optional[bool] = None
    for marker in _DENY_MARKERS:
        if marker in body:
            permitted = False
            break
    if permitted is None:
        for lead in _DENY_LEADS:
            if body.startswith(lead):
                permitted = False
                break
    if permitted is None:
        for lead in _PERMIT_LEADS:
            if body.startswith(lead):
                permitted = True
                break
    if permitted is None:
        padded = f" {body} "
        if any(marker in padded for marker in _PERMIT_MARKERS):
            permitted = True
    if permitted is None:
        raise IntentParseError(
            f"cannot tell whether {sentence.strip()!r} permits or forbids"
        )

    subject = vocabulary.find_subject(body)
    if subject is None:
        raise IntentParseError(f"no known subject in {sentence.strip()!r}")
    action = vocabulary.find_action(body)
    if action is None:
        raise IntentParseError(f"no known action in {sentence.strip()!r}")
    return Intent(permitted, subject, action, condition, negated)


def parse_intents(
    sentences: Sequence[str], vocabulary: Vocabulary
) -> List[Intent]:
    """Parse a batch of sentences; failures carry the sentence context."""
    intents = []
    for sentence in sentences:
        intents.append(parse_intent(sentence, vocabulary))
    return intents
