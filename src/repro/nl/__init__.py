"""Natural language to grammar-based policies (paper Section III.B).

"Policies are initially defined by end users or organizations in
natural language ... Automatically or semi-automatically transforming
intents and constraints into grammars that capture the space of
admissible policies, would facilitate the interaction of end users with
the policy-based management system."

This package implements the semi-automatic path: a controlled-English
intent parser (:mod:`repro.nl.intent`) over a domain vocabulary
(:mod:`repro.nl.vocabulary`), and a synthesizer that turns parsed
intents into an initial ASG plus a matching hypothesis space
(:mod:`repro.nl.grammar_gen`).
"""

from repro.nl.grammar_gen import GrammarSynthesizer, SynthesizedModel
from repro.nl.intent import Intent, IntentParseError, parse_intent, parse_intents
from repro.nl.vocabulary import Vocabulary

__all__ = [
    "Vocabulary",
    "Intent",
    "IntentParseError",
    "parse_intent",
    "parse_intents",
    "GrammarSynthesizer",
    "SynthesizedModel",
]
