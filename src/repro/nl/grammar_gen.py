"""Synthesis: parsed intents -> initial ASG + hypothesis space.

The synthesizer builds exactly what the PBMS hands an AMS (paper
Section III.A): a grammar over ``allow <subject> <action>`` policy
strings with attribute annotations; semantic constraints compiled from
the *forbidding* intents; and a hypothesis space over the same
vocabulary so the learner can refine the model from examples later.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence

from repro.asp.atoms import Atom, Literal
from repro.asp.rules import NormalRule
from repro.asp.terms import Constant
from repro.asg.annotated import ASG
from repro.asg.asg_parser import parse_asg
from repro.learning.mode_bias import CandidateRule, constraint_space
from repro.nl.intent import Intent
from repro.nl.vocabulary import Vocabulary

__all__ = ["SynthesizedModel", "GrammarSynthesizer"]

_POLICY_PRODUCTION = 0


class SynthesizedModel(NamedTuple):
    """The synthesizer's output bundle."""

    asg: ASG
    hypothesis_space: List[CandidateRule]
    compiled_constraints: List[NormalRule]
    grammar_text: str


class GrammarSynthesizer:
    """Turn a vocabulary plus intents into a generative policy model."""

    def __init__(self, vocabulary: Vocabulary, max_body: int = 3):
        self.vocabulary = vocabulary
        self.max_body = max_body

    # -- grammar text -------------------------------------------------------

    def grammar_text(self) -> str:
        lines = ["policy -> \"allow\" subject action"]
        for subject in self.vocabulary.subject_names():
            lines.append(f'subject -> "{subject}" {{ is({subject}). }}')
        for action in self.vocabulary.action_names():
            lines.append(f'action -> "{action}" {{ is({action}). }}')
        return "\n".join(lines)

    # -- constraints from forbidding intents ------------------------------------

    def compile_intent(self, intent: Intent) -> Optional[NormalRule]:
        """A forbidding intent becomes an integrity constraint on the
        policy production; permitting intents compile to nothing (the
        grammar permits by default) but *scope* the model."""
        if intent.permitted:
            return None
        body: List[Literal] = [
            Literal(Atom("is", [Constant(intent.subject)], (2,)), True),
            Literal(Atom("is", [Constant(intent.action)], (3,)), True),
        ]
        if intent.condition is not None:
            body.append(
                Literal(Atom(intent.condition), not intent.condition_negated)
            )
        return NormalRule(None, body)

    # -- hypothesis space ---------------------------------------------------------

    def hypothesis_space(self) -> List[CandidateRule]:
        pool: List[Literal] = []
        for subject in self.vocabulary.subject_names():
            pool.append(Literal(Atom("is", [Constant(subject)], (2,)), True))
        for action in self.vocabulary.action_names():
            pool.append(Literal(Atom("is", [Constant(action)], (3,)), True))
        for condition in self.vocabulary.condition_names():
            pool.append(Literal(Atom(condition), True))
            pool.append(Literal(Atom(condition), False))
        return constraint_space(
            pool, prod_ids=(_POLICY_PRODUCTION,), max_body=self.max_body
        )

    # -- the bundle -------------------------------------------------------------

    def synthesize(self, intents: Sequence[Intent]) -> SynthesizedModel:
        text = self.grammar_text()
        asg = parse_asg(text)
        constraints = []
        for intent in intents:
            compiled = self.compile_intent(intent)
            if compiled is not None:
                constraints.append(compiled)
        asg = asg.with_rules(
            [(rule, _POLICY_PRODUCTION) for rule in constraints]
        )
        return SynthesizedModel(
            asg=asg,
            hypothesis_space=self.hypothesis_space(),
            compiled_constraints=constraints,
            grammar_text=text,
        )
