"""Domain vocabulary for the controlled-English intent parser.

A :class:`Vocabulary` names the subjects, actions and contextual
conditions of a domain and their surface synonyms, so intent parsing is
a deterministic lookup rather than open-ended NLP — the
"semi-automatic" point on the paper's spectrum.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["Vocabulary"]


class Vocabulary:
    """Canonical terms plus synonyms for one policy domain.

    Each mapping goes ``canonical -> [synonym phrases]``; the canonical
    term itself is always recognized.  Phrases are matched longest-first
    and case-insensitively.
    """

    def __init__(
        self,
        subjects: Mapping[str, Sequence[str]],
        actions: Mapping[str, Sequence[str]],
        conditions: Mapping[str, Sequence[str]] = (),
    ):
        self.subjects = {k: list(v) for k, v in dict(subjects).items()}
        self.actions = {k: list(v) for k, v in dict(actions).items()}
        self.conditions = {k: list(v) for k, v in dict(conditions or {}).items()}
        self._subject_index = self._build_index(self.subjects)
        self._action_index = self._build_index(self.actions)
        self._condition_index = self._build_index(self.conditions)

    @staticmethod
    def _build_index(mapping: Mapping[str, Sequence[str]]) -> List[Tuple[str, str]]:
        """(phrase, canonical) pairs, longest phrase first.

        Simple plural variants (``-s``, ``-es``) of each phrase are
        recognized automatically, so vocabularies only list genuinely
        irregular synonyms.
        """
        index: List[Tuple[str, str]] = []
        for canonical, synonyms in mapping.items():
            phrases = {canonical.replace("_", " ")} | {s.lower() for s in synonyms}
            expanded = set(phrases)
            for phrase in phrases:
                expanded.add(phrase + "s")
                expanded.add(phrase + "es")
            for phrase in expanded:
                index.append((phrase.lower(), canonical))
        index.sort(key=lambda pair: -len(pair[0]))
        return index

    @staticmethod
    def _find(index: List[Tuple[str, str]], text: str) -> Optional[Tuple[str, str]]:
        """Find the longest phrase occurring in ``text`` (word-bounded);
        return (phrase, canonical) or None."""
        import re

        lowered = text.lower()
        for phrase, canonical in index:
            if re.search(rf"\b{re.escape(phrase)}\b", lowered):
                return phrase, canonical
        return None

    def find_subject(self, text: str) -> Optional[str]:
        found = self._find(self._subject_index, text)
        return found[1] if found else None

    def find_action(self, text: str) -> Optional[str]:
        found = self._find(self._action_index, text)
        return found[1] if found else None

    def find_condition(self, text: str) -> Optional[str]:
        found = self._find(self._condition_index, text)
        return found[1] if found else None

    def subject_names(self) -> List[str]:
        return sorted(self.subjects)

    def action_names(self) -> List[str]:
        return sorted(self.actions)

    def condition_names(self) -> List[str]:
        return sorted(self.conditions)
