"""Telemetry: structured tracing, metrics, and profiling for AGENP.

The observability counterpart to :mod:`repro.runtime`'s governance: where
budgets *bound* the engine's hot paths, telemetry *measures* them.  A
:class:`Tracer` installed with :func:`tracer_scope` records parent-linked
timed spans from every instrumented layer — grounder, solver, Earley
parser, ASG membership, ILASP learner, PDP, coalition fabric — plus
typed counters; exporters persist the spans and
:func:`~repro.telemetry.exporters.summarize` folds them into the
per-operation report that benchmarks and the
``python -m repro.telemetry.report`` CLI print.

With no tracer installed every instrumentation point is no-op cheap
(one context-variable read), so the tier-1 suite and ungoverned callers
pay nothing.
"""

from repro.telemetry.exporters import (
    InMemoryCollector,
    JsonlExporter,
    format_summary,
    read_jsonl,
    summarize,
)
from repro.telemetry.tracer import (
    Metrics,
    NULL_SPAN,
    Span,
    Tracer,
    current_tracer,
    incr,
    observe,
    span,
    tracer_scope,
)

__all__ = [
    "InMemoryCollector",
    "JsonlExporter",
    "Metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_tracer",
    "format_summary",
    "incr",
    "observe",
    "read_jsonl",
    "span",
    "summarize",
    "tracer_scope",
]
