"""Structured tracing and hot-path metrics for the AGENP loop.

The paper's closed loop needs "a history of the decisions that have been
made ... and the effects they have had on the state of the system"; the
ILASP line of work likewise reports per-run search statistics as a
first-class output.  This module is the low-level substrate for both: a
zero-dependency tracer producing monotonic-clock timed, parent-linked
span records plus typed counters and value observations aggregated per
span and per tracer.

Design constraints (mirroring :mod:`repro.runtime.budget`):

* **Ambient installation.**  A tracer is installed for a dynamic extent
  with :func:`tracer_scope`; instrumented primitives call the
  module-level :func:`span` / :func:`incr` / :func:`observe` helpers,
  which consult the ambient tracer.  One scope therefore traces an
  arbitrarily deep call tree (PDP -> interpreter -> ASG membership ->
  grounder -> solver) with no signature changes.
* **No-op cheap.**  With no tracer installed, :func:`span` returns the
  shared :data:`NULL_SPAN` singleton (no allocation) and
  :func:`incr` / :func:`observe` return after one context-variable read.
  Hot inner loops (solver propagation, Earley chart processing) never
  call into telemetry per iteration anyway — they keep plain integer
  counters and record them once at operation end.
* **Deterministic ids.**  Span and trace ids come from per-tracer
  counters, not randomness, so two identical runs produce identical
  traces (the same property PR 1 gave message and record ids).
"""

from __future__ import annotations

import contextlib
import itertools
import time
from contextvars import ContextVar
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Metrics",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "current_tracer",
    "tracer_scope",
    "span",
    "incr",
    "observe",
]


class Metrics:
    """Typed counters and value observations.

    ``incr`` accumulates named integer counters; ``observe`` records a
    numeric value into a running (count, total, min, max) aggregate —
    enough for rates and gauges without storing every sample.
    """

    __slots__ = ("counters", "observations")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        # name -> [count, total, min, max]
        self.observations: Dict[str, List[float]] = {}

    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        agg = self.observations.get(name)
        if agg is None:
            self.observations[name] = [1, value, value, value]
        else:
            agg[0] += 1
            agg[1] += value
            if value < agg[2]:
                agg[2] = value
            if value > agg[3]:
                agg[3] = value

    def merge_from(self, other: "Metrics") -> None:
        for name, n in other.counters.items():
            self.incr(name, n)
        for name, (count, total, low, high) in other.observations.items():
            agg = self.observations.get(name)
            if agg is None:
                self.observations[name] = [count, total, low, high]
            else:
                agg[0] += count
                agg[1] += total
                agg[2] = min(agg[2], low)
                agg[3] = max(agg[3], high)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "observations": {
                name: {"count": c, "total": t, "min": lo, "max": hi}
                for name, (c, t, lo, hi) in self.observations.items()
            },
        }


class Span:
    """One timed operation: name, attributes, counters, parent link.

    Spans are created by :meth:`Tracer.span` and finished by the
    context manager; ``duration`` is monotonic-clock elapsed seconds and
    ``ts`` a wall-clock start timestamp for cross-process correlation.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "metrics",
        "ts",
        "duration",
        "status",
        "error",
        "_t0",
    )

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.metrics = Metrics()
        self.ts: float = 0.0
        self.duration: float = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self._t0: float = 0.0

    # The Span API doubles as the NullSpan API; keep it tiny.

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def incr(self, name: str, n: int = 1) -> None:
        self.metrics.incr(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def as_record(self) -> Dict[str, Any]:
        """A JSON-serialisable flat record of this finished span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.ts,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
            "counters": dict(self.metrics.counters),
            "observations": self.metrics.as_dict()["observations"],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r} trace={self.trace_id} id={self.span_id} "
            f"parent={self.parent_id} {self.duration * 1e3:.3f}ms {self.status})"
        )


class _NullSpan:
    """Shared do-nothing span returned when no tracer is installed.

    Also usable directly as a context manager, so instrumentation can be
    written unconditionally::

        with span("asp.solve") as sp:
            ...
            sp.incr("solver.models", len(models))
    """

    __slots__ = ()

    trace_id: Optional[int] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    duration = 0.0

    def set(self, **attrs: Any) -> None:
        pass

    def incr(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self._span.status = "error"
            self._span.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects finished spans and tracer-wide metric aggregates.

    ``exporters`` is a sequence of objects with an
    ``export(record: dict)`` method (see :mod:`repro.telemetry.exporters`);
    every finished span is handed to each exporter and also kept in
    ``self.spans`` (the in-memory record used by tests and
    :func:`~repro.telemetry.exporters.summarize`).

    Spans nest: :meth:`span` links the new span to the innermost open
    one and roots start fresh traces.  Counters recorded on a span via
    the module-level :func:`incr` / :func:`observe` also aggregate into
    ``self.metrics`` (tracer-wide totals) and bubble into every open
    ancestor span, so a root span's counters summarise its whole tree.
    """

    def __init__(
        self,
        exporters: Optional[List[Any]] = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.exporters: List[Any] = list(exporters) if exporters else []
        self.spans: List[Dict[str, Any]] = []
        self.metrics = Metrics()
        self._clock = clock
        self._wall_clock = wall_clock
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        parent = self._stack[-1] if self._stack else None
        trace_id = parent.trace_id if parent is not None else next(self._trace_ids)
        parent_id = parent.span_id if parent is not None else None
        record = Span(name, trace_id, next(self._span_ids), parent_id, attrs)
        return _SpanHandle(self, record)

    def _push(self, span: Span) -> None:
        span.ts = self._wall_clock()
        span._t0 = self._clock()
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.duration = self._clock() - span._t0
        # tolerate exceptions unwinding through several instrumented frames
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        # bubble counters to the parent so root spans summarise their tree
        if self._stack:
            self._stack[-1].metrics.merge_from(span.metrics)
        record = span.as_record()
        self.spans.append(record)
        for exporter in self.exporters:
            exporter.export(record)

    # -- ambient metric recording -------------------------------------------

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def incr(self, name: str, n: int = 1) -> None:
        self.metrics.incr(name, n)
        if self._stack:
            self._stack[-1].metrics.incr(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        if self._stack:
            self._stack[-1].metrics.observe(name, value)

    def close(self) -> None:
        """Close every exporter that supports it."""
        for exporter in self.exporters:
            close = getattr(exporter, "close", None)
            if close is not None:
                close()


_AMBIENT: ContextVar[Optional[Tracer]] = ContextVar("repro_ambient_tracer", default=None)


def current_tracer() -> Optional[Tracer]:
    """The innermost ambient tracer, or None outside any scope."""
    return _AMBIENT.get()


@contextlib.contextmanager
def tracer_scope(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Install ``tracer`` as the ambient tracer for the dynamic extent.

    ``tracer_scope(None)`` masks any outer scope (useful to exempt a
    subcomputation from tracing).
    """
    token = _AMBIENT.set(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.reset(token)


def span(name: str, **attrs: Any):
    """Open a span on the ambient tracer (shared no-op outside a scope)."""
    tracer = _AMBIENT.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def incr(name: str, n: int = 1) -> None:
    """Increment a counter on the ambient tracer (no-op outside a scope)."""
    tracer = _AMBIENT.get()
    if tracer is not None:
        tracer.incr(name, n)


def observe(name: str, value: float) -> None:
    """Record a value observation on the ambient tracer (no-op outside)."""
    tracer = _AMBIENT.get()
    if tracer is not None:
        tracer.observe(name, value)
