"""Span exporters and trace summarisation.

Three consumers of finished-span records (the dicts produced by
:meth:`repro.telemetry.tracer.Span.as_record`):

* :class:`InMemoryCollector` — keeps records in a list; the test and
  notebook workhorse.
* :class:`JsonlExporter` — appends one JSON object per line to a file;
  benchmarks write ``BENCH_*.jsonl`` artifacts through it so the perf
  trajectory survives the process.
* :func:`summarize` / :func:`format_summary` — fold a span list into a
  per-operation report (count, p50/p95/total latency) plus counter
  totals, the same shape ILASP prints as its per-run search statistics.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence

__all__ = [
    "InMemoryCollector",
    "JsonlExporter",
    "read_jsonl",
    "summarize",
    "format_summary",
]


class InMemoryCollector:
    """Collects span records in memory (tests, interactive inspection)."""

    def __init__(self) -> None:
        self.spans: List[Dict[str, Any]] = []

    def export(self, record: Dict[str, Any]) -> None:
        self.spans.append(record)

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)


class JsonlExporter:
    """Writes each span record as one JSON line.

    Accepts a path (opened lazily, truncated) or an open file object.
    Usable as a context manager; ``close`` is idempotent and never
    closes a stream it did not open.
    """

    def __init__(self, path_or_file: Any):
        if hasattr(path_or_file, "write"):
            self._file: Optional[IO[str]] = path_or_file
            self._owns = False
            self._path = None
        else:
            self._file = None
            self._owns = True
            self._path = str(path_or_file)

    def export(self, record: Dict[str, Any]) -> None:
        if self._file is None:
            self._file = open(self._path, "w", encoding="utf-8")
        self._file.write(json.dumps(record, sort_keys=True, default=str))
        self._file.write("\n")

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._owns:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        self.close()
        return False


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load span records back from a :class:`JsonlExporter` file."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


def summarize(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold span records into a per-operation latency + counter report.

    Returns ``{"operations": {name: {count, errors, total, p50, p95,
    max}}, "counters": {name: total}, "observations": {...}}`` with all
    latencies in seconds.
    """
    by_name: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    counters: Dict[str, int] = {}
    observations: Dict[str, Dict[str, float]] = {}
    child_counted = 0
    for record in spans:
        name = record.get("name", "?")
        by_name.setdefault(name, []).append(float(record.get("duration", 0.0)))
        if record.get("status") == "error":
            errors[name] = errors.get(name, 0) + 1
        # Root spans already aggregate their subtree's counters; only
        # fold in roots so one event is not counted once per ancestor.
        if record.get("parent_id") is None:
            for cname, value in (record.get("counters") or {}).items():
                counters[cname] = counters.get(cname, 0) + int(value)
            for oname, agg in (record.get("observations") or {}).items():
                existing = observations.get(oname)
                if existing is None:
                    observations[oname] = dict(agg)
                else:
                    existing["count"] += agg["count"]
                    existing["total"] += agg["total"]
                    existing["min"] = min(existing["min"], agg["min"])
                    existing["max"] = max(existing["max"], agg["max"])
        else:
            child_counted += 1
    operations: Dict[str, Dict[str, float]] = {}
    for name, durations in sorted(by_name.items()):
        durations.sort()
        operations[name] = {
            "count": len(durations),
            "errors": errors.get(name, 0),
            "total": sum(durations),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "max": durations[-1],
        }
    return {
        "operations": operations,
        "counters": dict(sorted(counters.items())),
        "observations": dict(sorted(observations.items())),
    }


def format_summary(summary: Dict[str, Any], title: str = "telemetry summary") -> str:
    """Render a :func:`summarize` result as an aligned text table."""
    lines = [title, ""]
    operations = summary.get("operations", {})
    if operations:
        lines.append(
            f"{'operation':<28} {'count':>7} {'errors':>6} "
            f"{'p50 ms':>9} {'p95 ms':>9} {'max ms':>9} {'total s':>9}"
        )
        for name, row in operations.items():
            lines.append(
                f"{name:<28} {row['count']:>7} {row['errors']:>6} "
                f"{row['p50'] * 1e3:>9.3f} {row['p95'] * 1e3:>9.3f} "
                f"{row['max'] * 1e3:>9.3f} {row['total']:>9.3f}"
            )
    else:
        lines.append("(no spans)")
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<40} {'total':>12}")
        for name, value in counters.items():
            lines.append(f"{name:<40} {value:>12}")
    observations = summary.get("observations", {})
    if observations:
        lines.append("")
        lines.append(f"{'observation':<32} {'count':>7} {'mean':>12} {'min':>12} {'max':>12}")
        for name, agg in observations.items():
            mean = agg["total"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"{name:<32} {agg['count']:>7} {mean:>12.4f} "
                f"{agg['min']:>12.4f} {agg['max']:>12.4f}"
            )
    return "\n".join(lines)
