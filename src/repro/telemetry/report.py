"""Trace-report CLI: ``python -m repro.telemetry.report trace.jsonl ...``

Loads one or more JSONL trace files written by
:class:`~repro.telemetry.exporters.JsonlExporter` and prints the
:func:`~repro.telemetry.exporters.summarize` table — per-operation
p50/p95 latency plus counter totals.  With ``--json`` the raw summary
dict is printed instead (for CI artifact post-processing).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.telemetry.exporters import format_summary, read_jsonl, summarize

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarise JSONL trace files (per-operation latency, counters).",
    )
    parser.add_argument("paths", nargs="+", help="JSONL trace files to summarise")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON instead of a table"
    )
    args = parser.parse_args(argv)

    spans = []
    for path in args.paths:
        try:
            spans.extend(read_jsonl(path))
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
    summary = summarize(spans)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        title = f"telemetry summary — {len(spans)} spans from {len(args.paths)} file(s)"
        print(format_summary(summary, title=title))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
