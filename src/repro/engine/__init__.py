"""The high-throughput serving engine (caching + batching front door).

:class:`PolicyEngine` wraps parse → ground → solve, ASG membership, and
PDP decisions behind fingerprint-keyed LRU caches with generation-based
invalidation and batched decision serving.  See
:mod:`repro.engine.engine` for the serving semantics,
:mod:`repro.engine.fingerprint` for the content-addressing scheme, and
:mod:`repro.engine.caches` for admission rules.
"""

from repro.engine.caches import (
    CacheStats,
    GroundCache,
    LRUCache,
    MembershipCache,
    ParseCache,
    SolveCache,
    admissible,
)
from repro.engine.engine import EngineStats, PolicyEngine
from repro.engine.fingerprint import (
    combine,
    fingerprint_asg,
    fingerprint_program,
    fingerprint_rule,
    fingerprint_rules,
    fingerprint_text,
    fingerprint_tokens,
)

__all__ = [
    "PolicyEngine",
    "EngineStats",
    "CacheStats",
    "LRUCache",
    "ParseCache",
    "GroundCache",
    "SolveCache",
    "MembershipCache",
    "admissible",
    "combine",
    "fingerprint_asg",
    "fingerprint_program",
    "fingerprint_rule",
    "fingerprint_rules",
    "fingerprint_text",
    "fingerprint_tokens",
]
