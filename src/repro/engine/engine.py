"""The serving engine: cached, batched policy evaluation.

:class:`PolicyEngine` is the one front door for high-throughput policy
serving.  It wraps the substrate entry points that the rest of the
framework exposes piecemeal (``parse`` → ``ground`` → ``solve``, ASG
membership, PDP decisions) behind content-addressed caches with
generation-based invalidation:

* **Solve path** — ``engine.solve_text(text)`` / ``engine.solve(program)``
  consult a parse cache, a :class:`~repro.engine.caches.GroundCache`
  (program fingerprint → ground program) and a
  :class:`~repro.engine.caches.SolveCache` (fingerprint + solver options
  → answer sets).  Results are byte-identical to the uncached path: the
  cache key covers every knob that can change the answer, and cached
  models are returned in their original order.
* **Membership path** — ``engine.accepts(asg, tokens)`` memoizes ASG
  membership verdicts per (grammar fingerprint, token string, options).
* **Decision path** — ``engine.decide(request)`` serves PDP decisions
  from a decision cache keyed by (policy generation, context generation,
  context fingerprint, request); ``engine.decide_many(requests)`` groups
  duplicate requests so each distinct decision is computed once, with an
  optional ``workers=N`` process-pool fan-out for cold batches.
* **Invalidation** — PAdaP policy updates bump
  ``PolicyRepository.generation`` and context changes bump
  ``ContextRepository.generation``; the engine folds both counters into
  its decision keys and purges the decision cache when either moves, so
  a stale entry can never be served.
* **Admission** — results computed under an exhausted budget and
  degraded (fallback) decisions are never cached; see
  :func:`repro.engine.caches.admissible`.

Every cache reports ``cache.<name>.{hits,misses,evictions}`` counters
through the ambient :mod:`repro.telemetry` tracer, and ``engine.*``
spans wrap the serving operations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.asp.grounder import GroundProgram, ground_program
from repro.asp.parser import parse_program
from repro.asp.rules import Program
from repro.asp.solver import AnswerSetSolver, SolveResult, solve
from repro.asg.semantics import accepts as _asg_accepts
from repro.agenp.monitoring import DecisionRecord, MonitoringLog
from repro.agenp.pdp import PolicyDecisionPoint, evaluate_compiled
from repro.agenp.repositories import ContextRepository, PolicyRepository, StoredPolicy
from repro.core.contexts import Context
from repro.engine.caches import (
    GroundCache,
    LRUCache,
    MembershipCache,
    ParseCache,
    SolveCache,
)
from repro.engine.fingerprint import (
    combine,
    fingerprint_asg,
    fingerprint_program,
    fingerprint_text,
    fingerprint_tokens,
)
from repro.policy.model import Decision, Request
from repro.policy.xacml import Policy
from repro.runtime.budget import Budget
from repro.telemetry import span as _tele_span

__all__ = ["PolicyEngine", "EngineStats"]

_DEFAULT_MAX_STEPS = 50_000_000
_DEFAULT_MAX_ATOMS = 2_000_000


class EngineStats:
    """A point-in-time snapshot of every cache's counters."""

    __slots__ = ("caches", "decisions", "batches")

    def __init__(self, caches: Dict[str, Dict[str, float]], decisions: int, batches: int):
        self.caches = caches
        self.decisions = decisions
        self.batches = batches

    def as_dict(self) -> Dict[str, Any]:
        return {
            "caches": self.caches,
            "decisions": self.decisions,
            "batches": self.batches,
        }

    def __repr__(self) -> str:
        inner = " ".join(
            f"{name}[h={c['hits']} m={c['misses']}]" for name, c in self.caches.items()
        )
        return f"EngineStats({inner} decisions={self.decisions} batches={self.batches})"


def _decide_group_worker(
    payload: Tuple[List[Tuple[StoredPolicy, Policy]], Any, Decision, List[Request]],
) -> List[Tuple[Decision, str]]:
    """Process-pool worker: resolve a chunk of requests against one
    compiled policy set.  Module-level so it pickles by reference."""
    compiled, strategy, default_decision, requests = payload
    return [
        evaluate_compiled(compiled, request, strategy, default_decision)
        for request in requests
    ]


class PolicyEngine:
    """High-throughput serving façade over the AGENP substrate.

    Construction takes the same collaborators as
    :class:`~repro.agenp.pdp.PolicyDecisionPoint` (or an existing PDP via
    ``pdp=``) plus cache-size knobs.  A repository/interpreter pair is
    only required for the decision path; ``solve*``/``accepts`` work on
    a bare engine::

        engine = PolicyEngine()                      # solve/membership caching
        engine = PolicyEngine(repository, interp)    # + PDP decision serving

    Setting any ``*_cache_size`` to 0 disables that cache (used by the
    differential tests and the cold legs of benchmark E15).
    """

    def __init__(
        self,
        repository: Optional[PolicyRepository] = None,
        interpreter=None,
        *,
        pdp: Optional[PolicyDecisionPoint] = None,
        contexts: Optional[ContextRepository] = None,
        log: Optional[MonitoringLog] = None,
        parse_cache_size: int = 512,
        ground_cache_size: int = 256,
        solve_cache_size: int = 1024,
        membership_cache_size: int = 2048,
        decision_cache_size: int = 4096,
        workers: Optional[int] = None,
        **pdp_kwargs: Any,
    ):
        if pdp is not None:
            self.pdp: Optional[PolicyDecisionPoint] = pdp
        elif repository is not None and interpreter is not None:
            self.pdp = PolicyDecisionPoint(
                repository, interpreter, log=log, **pdp_kwargs
            )
        else:
            self.pdp = None
        self.contexts = contexts
        self.workers = workers
        self.parse_cache = ParseCache(parse_cache_size)
        self.ground_cache = GroundCache(ground_cache_size)
        self.solve_cache = SolveCache(solve_cache_size)
        self.membership_cache = MembershipCache(membership_cache_size)
        self.decision_cache: LRUCache = LRUCache(decision_cache_size, name="decision")
        self._decisions_served = 0
        self._batches_served = 0
        # generations the decision cache was built against
        self._seen_generations: Optional[Tuple[int, int]] = None
        # id-keyed memo for ASG fingerprints (grammars are large; the
        # strong reference keeps the id stable, mirroring PCP.preflight)
        self._asg_fps: Dict[int, Tuple[object, str]] = {}

    # -- solve path ---------------------------------------------------------

    def parse(self, text: str) -> Program:
        """Parse ASP source text through the parse cache."""
        key = fingerprint_text(text)
        cached = self.parse_cache.get(key)
        if cached is not None:
            return cached
        program = parse_program(text)
        self.parse_cache.put(key, program)
        return program

    def ground(
        self,
        program: Program,
        max_atoms: int = _DEFAULT_MAX_ATOMS,
        budget: Optional[Budget] = None,
    ) -> GroundProgram:
        """Ground ``program`` through the ground cache."""
        key = (fingerprint_program(program), max_atoms)
        cached = self.ground_cache.get(key)
        if cached is not None:
            return cached
        ground = ground_program(program, max_atoms=max_atoms, budget=budget)
        self.ground_cache.put(key, ground, budget=budget)
        return ground

    def solve(
        self,
        program: Program,
        max_models: Optional[int] = None,
        budget: Optional[Budget] = None,
        max_steps: int = _DEFAULT_MAX_STEPS,
        use_fast_path: bool = True,
    ) -> SolveResult:
        """Ground and solve ``program`` through both engine caches.

        Identical in signature and results to
        :func:`repro.asp.solver.solve`; a warm hit skips parsing,
        grounding, and solving entirely.
        """
        fp = fingerprint_program(program)
        options = (max_models, max_steps, use_fast_path)
        key = (fp, options)
        with _tele_span("engine.solve", fingerprint=fp[:12]) as sp:
            cached = self.solve_cache.get_result(key)
            if cached is not None:
                sp.set(cache="hit")
                return cached
            sp.set(cache="miss")
            ground = self.ground_cache.get((fp, _DEFAULT_MAX_ATOMS))
            if ground is None:
                ground = ground_program(program, budget=budget)
                self.ground_cache.put((fp, _DEFAULT_MAX_ATOMS), ground, budget=budget)
            solver = AnswerSetSolver(
                ground, max_steps=max_steps, budget=budget, use_fast_path=use_fast_path
            )
            result = solver.solve(max_models=max_models)
            self.solve_cache.put_result(key, result, budget=budget)
            return result

    def solve_text(
        self,
        text: str,
        max_models: Optional[int] = None,
        budget: Optional[Budget] = None,
        max_steps: int = _DEFAULT_MAX_STEPS,
        use_fast_path: bool = True,
    ) -> SolveResult:
        """Parse, ground, and solve source text through every cache."""
        return self.solve(
            self.parse(text),
            max_models=max_models,
            budget=budget,
            max_steps=max_steps,
            use_fast_path=use_fast_path,
        )

    # -- membership path ----------------------------------------------------

    def _asg_fingerprint(self, asg) -> str:
        cached = self._asg_fps.get(id(asg))
        if cached is not None and cached[0] is asg:
            return cached[1]
        fp = fingerprint_asg(asg)
        self._asg_fps[id(asg)] = (asg, fp)
        return fp

    def accepts(
        self,
        asg,
        tokens: Sequence[str],
        max_trees: int = 256,
        budget: Optional[Budget] = None,
        use_fast_path: bool = True,
    ) -> bool:
        """ASG membership (``tokens in L(G)``) through the membership cache."""
        key = (
            self._asg_fingerprint(asg),
            (fingerprint_tokens(tokens), max_trees, use_fast_path),
        )
        cached = self.membership_cache.get(key)
        if cached is not None:
            return cached
        verdict = _asg_accepts(
            asg,
            tuple(tokens),
            max_trees=max_trees,
            budget=budget,
            use_fast_path=use_fast_path,
        )
        self.membership_cache.put(key, verdict, budget=budget)
        return verdict

    # -- decision path ------------------------------------------------------

    def _require_pdp(self) -> PolicyDecisionPoint:
        if self.pdp is None:
            raise ValueError(
                "this PolicyEngine has no decision path: construct it with a "
                "policy repository and interpreter (or pdp=...)"
            )
        return self.pdp

    def _generations(self) -> Tuple[int, int]:
        policy_gen = (
            self.pdp.repository.generation
            if self.pdp is not None
            and hasattr(self.pdp.repository, "generation")
            else -1
        )
        context_gen = (
            self.contexts.generation
            if self.contexts is not None
            else -1
        )
        return (policy_gen, context_gen)

    def _check_invalidation(self) -> Tuple[int, int]:
        """Purge the decision cache if either repository moved."""
        generations = self._generations()
        if self._seen_generations is None:
            self._seen_generations = generations
        elif generations != self._seen_generations:
            self.decision_cache.clear()
            self._seen_generations = generations
        return generations

    def _context_fingerprint(self, context: Context) -> str:
        # order-insensitive: contexts compare by rule *set* (Context.__eq__)
        return combine(sorted(repr(rule) for rule in context.program))

    def decide(
        self, request: Request, context: Optional[Context] = None
    ) -> DecisionRecord:
        """One cached PDP decision.

        Cache hits skip policy compilation and rule matching but still
        append a fresh :class:`DecisionRecord` to the monitoring log —
        the AGENP feedback loop sees every served decision either way.
        Degraded (fallback) decisions are never admitted to the cache.
        """
        pdp = self._require_pdp()
        context = context if context is not None else (
            self.contexts.current() if self.contexts is not None else Context.empty()
        )
        generations = self._check_invalidation()
        key = (
            self._context_fingerprint(context),
            (generations, request.key()),
        )
        with _tele_span("engine.decide") as sp:
            self._decisions_served += 1
            cached = self.decision_cache.get(key)
            if cached is not None:
                decision, policy_text = cached
                sp.set(cache="hit", decision=decision.value)
                record = DecisionRecord(
                    request, decision, policy_text, context, trace_id=sp.trace_id
                )
                return pdp.log.append(record)
            sp.set(cache="miss")
            record = pdp.decide(request, context)
            if not record.degraded:
                self.decision_cache.put(key, (record.decision, record.policy_text))
            return record

    def decide_many(
        self,
        requests: Iterable[Request],
        context: Optional[Context] = None,
        workers: Optional[int] = None,
    ) -> List[DecisionRecord]:
        """Batched decisions: each distinct request is resolved once.

        Requests are grouped by content key; the unique cold group is
        resolved against one compiled policy set — serially, or fanned
        out to a process pool when ``workers`` (or the engine default)
        is > 1 and the batch is large enough to amortize pool startup.
        Every input request still yields its own monitoring record, in
        input order.
        """
        pdp = self._require_pdp()
        context = context if context is not None else (
            self.contexts.current() if self.contexts is not None else Context.empty()
        )
        requests = list(requests)
        workers = workers if workers is not None else self.workers
        generations = self._check_invalidation()
        context_fp = self._context_fingerprint(context)

        with _tele_span("engine.decide_many", batch=len(requests)) as sp:
            self._batches_served += 1
            # group duplicates; preserve first-seen order of unique keys
            order: List[tuple] = []
            by_key: Dict[tuple, List[int]] = {}
            exemplar: Dict[tuple, Request] = {}
            for index, request in enumerate(requests):
                key = request.key()
                if key not in by_key:
                    by_key[key] = []
                    exemplar[key] = request
                    order.append(key)
                by_key[key].append(index)
            sp.set(unique=len(order))

            # split unique requests into cache hits and the cold group
            outcomes: Dict[tuple, Tuple[Decision, str]] = {}
            cold: List[tuple] = []
            for key in order:
                cache_key = (context_fp, (generations, key))
                cached = self.decision_cache.get(cache_key)
                if cached is not None:
                    outcomes[key] = cached
                else:
                    cold.append(key)
            sp.incr("engine.batch_cold", len(cold))

            if cold:
                compiled = pdp.compiled()
                cold_requests = [exemplar[key] for key in cold]
                resolved = self._resolve_cold(
                    compiled, cold_requests, workers, pdp
                )
                for key, outcome in zip(cold, resolved):
                    outcomes[key] = outcome
                    self.decision_cache.put(
                        (context_fp, (generations, key)), outcome
                    )

            # one monitoring record per input request, in input order
            records: List[DecisionRecord] = [None] * len(requests)  # type: ignore[list-item]
            for key in order:
                decision, policy_text = outcomes[key]
                for index in by_key[key]:
                    record = DecisionRecord(
                        requests[index],
                        decision,
                        policy_text,
                        context,
                        trace_id=sp.trace_id,
                    )
                    records[index] = pdp.log.append(record)
            self._decisions_served += len(requests)
            return records

    def _resolve_cold(
        self,
        compiled: List[Tuple[StoredPolicy, Policy]],
        cold_requests: List[Request],
        workers: Optional[int],
        pdp: PolicyDecisionPoint,
    ) -> List[Tuple[Decision, str]]:
        """Resolve the unique cold requests, fanning out when profitable."""
        if workers and workers > 1 and len(cold_requests) >= 2 * workers:
            try:
                return self._resolve_pool(compiled, cold_requests, workers, pdp)
            except Exception:
                # unpicklable strategy/policy or pool failure: serve serially
                pass
        return [
            evaluate_compiled(
                compiled, request, pdp.strategy, pdp.default_decision
            )
            for request in cold_requests
        ]

    @staticmethod
    def _resolve_pool(
        compiled: List[Tuple[StoredPolicy, Policy]],
        cold_requests: List[Request],
        workers: int,
        pdp: PolicyDecisionPoint,
    ) -> List[Tuple[Decision, str]]:
        import concurrent.futures

        chunks: List[List[Request]] = [[] for _ in range(workers)]
        for index, request in enumerate(cold_requests):
            chunks[index % workers].append(request)
        payloads = [
            (compiled, pdp.strategy, pdp.default_decision, chunk)
            for chunk in chunks
            if chunk
        ]
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            chunk_results = list(pool.map(_decide_group_worker, payloads))
        # interleave back to input order (round-robin inverse)
        results: List[Tuple[Decision, str]] = [None] * len(cold_requests)  # type: ignore[list-item]
        non_empty = [chunk for chunk in chunks if chunk]
        position = [0] * len(non_empty)
        for index in range(len(cold_requests)):
            chunk_index = index % workers
            # map chunk_index into non_empty ordering
            live_index = sum(1 for c in chunks[:chunk_index] if c)
            results[index] = chunk_results[live_index][position[live_index]]
            position[live_index] += 1
        return results

    # -- maintenance --------------------------------------------------------

    def invalidate(self) -> None:
        """Manually purge every cache (content caches included)."""
        for cache in (
            self.parse_cache,
            self.ground_cache,
            self.solve_cache,
            self.membership_cache,
            self.decision_cache,
        ):
            cache.clear()
        self._seen_generations = None
        self._asg_fps.clear()

    def stats(self) -> EngineStats:
        """Hit/miss/eviction counters for every cache."""
        return EngineStats(
            {
                cache.name: cache.stats.as_dict()
                for cache in (
                    self.parse_cache,
                    self.ground_cache,
                    self.solve_cache,
                    self.membership_cache,
                    self.decision_cache,
                )
            },
            self._decisions_served,
            self._batches_served,
        )
