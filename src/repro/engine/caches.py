"""Fingerprint-keyed LRU caches for the serving engine.

One generic :class:`LRUCache` (ordered-dict based, O(1) get/put, typed
hit/miss/eviction counters) backs four concrete caches:

* :class:`ParseCache` — source text fingerprint → parsed ``Program``;
* :class:`GroundCache` — program fingerprint → ``GroundProgram``;
* :class:`SolveCache` — (program fingerprint, solver options) →
  ``SolveResult`` snapshot;
* :class:`MembershipCache` — (ASG fingerprint, tokens, options) → the
  membership verdict for an ASG policy string.

Admission is *budget-aware*: a result computed while the governing
:class:`~repro.runtime.budget.Budget` (explicit or ambient) is already
exhausted or cancelled is never admitted — a later uncached call could
legitimately produce more (a resource error instead of a truncated
search), so such results are not safe to replay.  Callers additionally
refuse to admit explicitly degraded results (e.g. fallback PDP
decisions) — see :class:`~repro.engine.engine.PolicyEngine`.

Counters flow into the ambient telemetry tracer (when installed) under
``cache.<name>.{hits,misses,evictions}``, so serving benchmarks and the
``repro.telemetry.report`` CLI show cache behaviour next to solver
counters without extra wiring.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.asp.grounder import GroundProgram
from repro.asp.solver import SolveResult, SolveStats
from repro.runtime.budget import Budget, current_budget
from repro.telemetry import incr as _tele_incr

__all__ = [
    "CacheStats",
    "LRUCache",
    "ParseCache",
    "GroundCache",
    "SolveCache",
    "MembershipCache",
    "admissible",
]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    __slots__ = ("hits", "misses", "evictions", "rejected")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected = 0  # admissions refused (budget-exhausted results)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits} misses={self.misses} "
            f"evictions={self.evictions} rejected={self.rejected})"
        )


def admissible(budget: Optional[Budget] = None) -> bool:
    """Whether a just-computed result may be cached.

    False when the governing budget (explicit, else ambient) is already
    exhausted or cancelled: the computation completed, but only just —
    replaying its result would mask the resource pressure a fresh call
    would surface, and a degraded/partial variant must never be served
    as the canonical answer.
    """
    active = budget if budget is not None else current_budget()
    return active is None or not active.exhausted


class LRUCache(Generic[K, V]):
    """A bounded least-recently-used mapping with telemetry counters.

    ``max_entries <= 0`` disables the cache entirely (every lookup
    misses, nothing is stored) — the switch the engine's ``*_cache_size=0``
    knobs and the differential tests use.
    """

    def __init__(self, max_entries: int, name: str = "lru"):
        self.max_entries = max_entries
        self.name = name
        self.stats = CacheStats()
        self._entries: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the cached value (refreshing recency) or ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            _tele_incr(f"cache.{self.name}.misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        _tele_incr(f"cache.{self.name}.hits")
        return entry

    def put(self, key: K, value: V, budget: Optional[Budget] = None) -> bool:
        """Admit ``value`` unless disabled or the budget disallows it.

        Returns True iff the value was stored.
        """
        if self.max_entries <= 0:
            return False
        if not admissible(budget):
            self.stats.rejected += 1
            _tele_incr(f"cache.{self.name}.rejected")
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            _tele_incr(f"cache.{self.name}.evictions")
        return True

    def clear(self) -> int:
        """Drop every entry; return how many were evicted."""
        dropped = len(self._entries)
        if dropped:
            self._entries.clear()
            self.stats.evictions += dropped
            _tele_incr(f"cache.{self.name}.evictions", dropped)
        return dropped


class ParseCache(LRUCache[str, Any]):
    """Source-text fingerprint → parsed ``Program``."""

    def __init__(self, max_entries: int = 512):
        super().__init__(max_entries, name="parse")


class GroundCache(LRUCache[Tuple[str, int], GroundProgram]):
    """(program fingerprint, max_atoms) → :class:`GroundProgram`.

    Ground programs are shared, not copied: the solver treats them as
    read-only inputs, and every :class:`AnswerSetSolver` builds its own
    internal tables.
    """

    def __init__(self, max_entries: int = 256):
        super().__init__(max_entries, name="ground")


class _SolveEntry:
    """An immutable snapshot of a finished solve."""

    __slots__ = ("models", "stats")

    def __init__(self, result: SolveResult):
        self.models = tuple(result)
        self.stats: SolveStats = result.stats


class SolveCache(LRUCache[Tuple[str, Any], _SolveEntry]):
    """(program fingerprint, solver-option key) → solve snapshot.

    The option key includes every knob that can change the answer
    (``max_models``, ``max_steps``, ``use_fast_path``), so a truncated
    ``max_models=1`` result can never serve an exhaustive query.

    ``get_result`` rebuilds a fresh :class:`SolveResult` per hit — the
    models tuple is shared (answer sets are frozensets), the list shell
    is new, so caller-side mutation cannot corrupt the cache.
    """

    def __init__(self, max_entries: int = 1024):
        super().__init__(max_entries, name="solve")

    def get_result(self, key: Tuple[str, Any]) -> Optional[SolveResult]:
        entry = self.get(key)
        if entry is None:
            return None
        return SolveResult(entry.models, entry.stats)

    def put_result(
        self,
        key: Tuple[str, Any],
        result: SolveResult,
        budget: Optional[Budget] = None,
    ) -> bool:
        return self.put(key, _SolveEntry(result), budget=budget)


class MembershipCache(LRUCache[Tuple[str, Any], bool]):
    """(ASG fingerprint, tokens, options) → ASG membership verdict."""

    def __init__(self, max_entries: int = 2048):
        super().__init__(max_entries, name="membership")
