"""Content-addressed fingerprints for programs, grammars, and contexts.

The serving layer (:mod:`repro.engine`) keys its caches by *content*,
not identity: two structurally identical programs — whether parsed from
the same text twice or rebuilt rule-by-rule — must map to the same cache
entry, and any structural difference (a different term type, a changed
annotation, reordered rules) must map to a different one.

Fingerprints are hex digests of a canonical typed serialization:

* every term/atom/rule node contributes an unambiguous type tag plus its
  fields, so ``Constant("1")`` and ``Integer(1)`` (same ``repr``) hash
  differently;
* rule *order* is included — the solver's branching heuristics are
  order-sensitive, and the cache contract is byte-identical results, so
  two reorderings are simply distinct keys;
* per-rule digests are memoized (rules are immutable value objects), so
  re-fingerprinting a program that shares rules with previous ones —
  the common case in the AGENP loop, where contexts and hypotheses are
  recombined — costs one table lookup per rule.

The digest algorithm is BLAKE2b (stdlib, fast, keyed off nothing), cut
to 128 bits: collision probability is negligible for cache sizing.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Iterable, Optional, Tuple

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.rules import ChoiceRule, NormalRule, Program, Rule, WeakConstraint
from repro.asp.terms import ArithTerm, Constant, Function, Integer, Term, Variable

__all__ = [
    "fingerprint_program",
    "fingerprint_rule",
    "fingerprint_rules",
    "fingerprint_asg",
    "fingerprint_text",
    "fingerprint_tokens",
    "combine",
]

_DIGEST_SIZE = 16  # bytes; 128-bit digests rendered as 32 hex chars


def _new_hasher() -> "hashlib.blake2b":
    return hashlib.blake2b(digest_size=_DIGEST_SIZE)


def _feed_term(h, term: Term) -> None:
    if isinstance(term, Constant):
        h.update(b"c")
        h.update(term.name.encode("utf-8"))
        h.update(b";")
    elif isinstance(term, Integer):
        h.update(b"i")
        h.update(str(term.value).encode("ascii"))
        h.update(b";")
    elif isinstance(term, Variable):
        h.update(b"v")
        h.update(term.name.encode("utf-8"))
        h.update(b";")
    elif isinstance(term, Function):
        h.update(b"f")
        h.update(term.functor.encode("utf-8"))
        h.update(b":%d;" % len(term.args))
        for arg in term.args:
            _feed_term(h, arg)
    elif isinstance(term, ArithTerm):
        h.update(b"a")
        h.update(term.op.encode("ascii"))
        h.update(b";")
        _feed_term(h, term.left)
        _feed_term(h, term.right)
    else:  # pragma: no cover - future term types must be added explicitly
        raise TypeError(f"cannot fingerprint term {term!r}")


def _feed_atom(h, atom: Atom) -> None:
    h.update(b"A")
    h.update(atom.predicate.encode("utf-8"))
    annotation = atom.annotation
    if annotation is None:
        h.update(b":_")
    else:
        h.update(b":" + ",".join(str(i) for i in annotation).encode("ascii"))
    h.update(b":%d;" % len(atom.args))
    for arg in atom.args:
        _feed_term(h, arg)


def _feed_body(h, body) -> None:
    h.update(b"B%d;" % len(body))
    for elem in body:
        if isinstance(elem, Literal):
            h.update(b"L+" if elem.positive else b"L-")
            _feed_atom(h, elem.atom)
        elif isinstance(elem, Comparison):
            h.update(b"C")
            h.update(elem.op.encode("ascii"))
            h.update(b";")
            _feed_term(h, elem.left)
            _feed_term(h, elem.right)
        else:  # pragma: no cover
            raise TypeError(f"cannot fingerprint body element {elem!r}")


def _rule_digest(rule: Rule) -> bytes:
    h = _new_hasher()
    if isinstance(rule, NormalRule):
        h.update(b"R")
        if rule.head is None:
            h.update(b"_")
        else:
            _feed_atom(h, rule.head)
        _feed_body(h, rule.body)
    elif isinstance(rule, ChoiceRule):
        h.update(b"K")
        h.update(
            b"%s:%s;"
            % (
                str(rule.lower).encode("ascii"),
                str(rule.upper).encode("ascii"),
            )
        )
        h.update(b"E%d;" % len(rule.elements))
        for atom in rule.elements:
            _feed_atom(h, atom)
        _feed_body(h, rule.body)
    elif isinstance(rule, WeakConstraint):
        h.update(b"W%d;" % rule.priority)
        _feed_term(h, rule.weight)
        _feed_body(h, rule.body)
    else:  # pragma: no cover
        raise TypeError(f"cannot fingerprint rule {rule!r}")
    return h.digest()


# Rules are immutable, hashable value objects; equality ignores spans,
# exactly the identity the digest captures.  A bounded memo turns the
# common re-fingerprint (same context/hypothesis rules recombined into
# new programs) into one dict hit per rule.
_memoized_rule_digest = lru_cache(maxsize=65_536)(_rule_digest)


def fingerprint_rule(rule: Rule) -> str:
    """Stable hex fingerprint of one rule (spans excluded)."""
    return _memoized_rule_digest(rule).hex()


def fingerprint_rules(rules: Iterable[Rule]) -> str:
    """Stable, order-sensitive hex fingerprint of a rule sequence."""
    h = _new_hasher()
    count = 0
    for rule in rules:
        h.update(_memoized_rule_digest(rule))
        count += 1
    h.update(b"#%d" % count)
    return h.hexdigest()


def fingerprint_program(program: Program) -> str:
    """Stable hex fingerprint of a :class:`Program` (see module docs)."""
    return fingerprint_rules(program.rules)


def fingerprint_asg(asg) -> str:
    """Stable hex fingerprint of an ASG: its CFG plus every annotation.

    Productions contribute ``(prod_id, lhs, rhs)`` in registration order
    (ids are positional, so order is identity); annotation programs
    contribute their rule digests keyed by production id.
    """
    h = _new_hasher()
    cfg = asg.cfg
    h.update(b"G")
    h.update(cfg.start.encode("utf-8"))
    h.update(b";")
    for prod in cfg.productions:
        h.update(b"P%d:" % prod.prod_id)
        h.update(prod.lhs.encode("utf-8"))
        for sym in prod.rhs:
            h.update(b"|")
            h.update(sym.encode("utf-8"))
            h.update(b"t" if sym in cfg.terminals else b"n")
        h.update(b";")
    for prod_id in sorted(asg.annotations):
        h.update(b"@%d:" % prod_id)
        h.update(fingerprint_rules(asg.annotations[prod_id].rules).encode("ascii"))
    return h.hexdigest()


def fingerprint_text(text: str) -> str:
    """Hex fingerprint of raw source text (the parse-cache key)."""
    h = _new_hasher()
    h.update(b"T")
    h.update(text.encode("utf-8"))
    return h.hexdigest()


def fingerprint_tokens(tokens: Iterable[str]) -> str:
    """Hex fingerprint of a policy token string."""
    h = _new_hasher()
    h.update(b"S")
    for token in tokens:
        h.update(token.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def combine(*parts: object) -> str:
    """Combine fingerprints and plain values into one composite key."""
    h = _new_hasher()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return h.hexdigest()
