"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError`, so
callers can catch one base class at framework boundaries (e.g. the AGENP
components catch ``ReproError`` when validating externally shared
policies).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ASPError(ReproError):
    """Base class for errors raised by the ASP subsystem."""


class ASPSyntaxError(ASPError):
    """Raised when ASP source text cannot be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class UnsafeRuleError(ASPError):
    """Raised when a rule contains a variable not bound by a positive body literal."""


class GroundingError(ASPError):
    """Raised when grounding fails (e.g. arithmetic on non-integers)."""


class SolverError(ASPError):
    """Raised when solving fails or resource limits are exceeded."""


class GrammarError(ReproError):
    """Base class for CFG/ASG errors."""


class GrammarSyntaxError(GrammarError):
    """Raised when grammar source text cannot be parsed."""


class AmbiguityLimitError(GrammarError):
    """Raised when a parse forest exceeds the configured tree limit."""


class LearningError(ReproError):
    """Base class for inductive-learning errors."""


class UnsatisfiableTaskError(LearningError):
    """Raised when a learning task has no inductive solution in its hypothesis space."""


class PolicyError(ReproError):
    """Base class for policy-layer errors."""


class PolicyValidationError(PolicyError):
    """Raised when a policy fails structural validation."""


class AgenpError(ReproError):
    """Base class for AGENP framework errors."""
