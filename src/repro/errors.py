"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError`, so
callers can catch one base class at framework boundaries (e.g. the AGENP
components catch ``ReproError`` when validating externally shared
policies).
"""

from __future__ import annotations

from typing import Optional


class Span:
    """A source location: 1-based ``(line, col)`` .. ``(end_line, end_col)``.

    Spans originate in the tokenizers and are threaded onto parsed nodes
    (rules, atoms, comparisons) so that errors and lint diagnostics can
    point at real source text.  ``end_line``/``end_col`` default to the
    start position, giving a zero-width caret span.
    """

    __slots__ = ("line", "col", "end_line", "end_col")

    def __init__(
        self,
        line: int,
        col: int,
        end_line: Optional[int] = None,
        end_col: Optional[int] = None,
    ):
        self.line = line
        self.col = col
        self.end_line = end_line if end_line is not None else line
        self.end_col = end_col if end_col is not None else col

    def as_dict(self) -> dict:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "end_col": self.end_col,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            data["line"], data["col"], data.get("end_line"), data.get("end_col")
        )

    def __repr__(self) -> str:
        return f"Span({self.line}:{self.col}..{self.end_line}:{self.end_col})"

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Span) and (
            (self.line, self.col, self.end_line, self.end_col)
            == (other.line, other.col, other.end_line, other.end_col)
        )

    def __hash__(self) -> int:
        return hash((self.line, self.col, self.end_line, self.end_col))


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ResourceError(ReproError):
    """Base class for resource-governance errors (budgets, deadlines,
    cooperative cancellation).  Raised by any subsystem running under a
    :class:`repro.runtime.Budget`."""


class BudgetExceededError(ResourceError):
    """Raised when a step budget is exhausted mid-computation."""

    def __init__(
        self,
        message: str = "step budget exceeded",
        steps_used: int = 0,
        max_steps: int = 0,
    ):
        self.steps_used = steps_used
        self.max_steps = max_steps
        if max_steps:
            message = f"{message} ({steps_used} steps used, limit {max_steps})"
        super().__init__(message)


class SolveTimeoutError(ResourceError):
    """Raised when a wall-clock deadline passes mid-computation."""

    def __init__(
        self,
        message: str = "wall-clock deadline exceeded",
        elapsed: float = 0.0,
        limit: float = 0.0,
    ):
        self.elapsed = elapsed
        self.limit = limit
        if limit:
            message = f"{message} ({elapsed:.3f}s elapsed, limit {limit:.3f}s)"
        super().__init__(message)


class OperationCancelledError(ResourceError):
    """Raised when a budget was cooperatively cancelled from outside."""


class ASPError(ReproError):
    """Base class for errors raised by the ASP subsystem."""


class ASPSyntaxError(ASPError):
    """Raised when ASP source text cannot be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class UnsafeRuleError(ASPError):
    """Raised when a rule contains a variable not bound by a positive body literal.

    ``span`` (when available) is the source location of the offending
    rule, threaded from the parser; ``variables`` names the variables
    that could not be bound.
    """

    def __init__(
        self,
        message: str,
        span: Optional[Span] = None,
        variables: tuple = (),
    ):
        self.span = span
        self.variables = tuple(variables)
        if span is not None:
            message = f"{message} (at line {span.line}, column {span.col})"
        super().__init__(message)


class GroundingError(ASPError):
    """Raised when grounding fails (e.g. arithmetic on non-integers)."""

    def __init__(self, message: str, span: Optional[Span] = None):
        self.span = span
        if span is not None:
            message = f"{message} (at line {span.line}, column {span.col})"
        super().__init__(message)


class SolverError(ASPError):
    """Raised when solving fails or resource limits are exceeded."""


class GrammarError(ReproError):
    """Base class for CFG/ASG errors."""


class GrammarSyntaxError(GrammarError):
    """Raised when grammar source text cannot be parsed."""


class AmbiguityLimitError(GrammarError):
    """Raised when a parse forest exceeds the configured tree limit."""


class LearningError(ReproError):
    """Base class for inductive-learning errors."""


class UnsatisfiableTaskError(LearningError):
    """Raised when a learning task has no inductive solution in its hypothesis space."""


class PolicyError(ReproError):
    """Base class for policy-layer errors."""


class PolicyValidationError(PolicyError):
    """Raised when a policy fails structural validation."""


class AgenpError(ReproError):
    """Base class for AGENP framework errors."""
