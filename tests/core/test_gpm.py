"""Unit tests for GenerativePolicyModel and the Figure 1 workflow."""

import pytest

from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg import parse_asg
from repro.core import Context, GenerativePolicyModel, LabeledExample, learn_gpm, relearn
from repro.learning import constraint_space

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def space():
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    pool += [Literal(Atom("emergency"), s) for s in (True, False)]
    return constraint_space(pool, prod_ids=(0,), max_body=2)


@pytest.fixture
def model():
    return GenerativePolicyModel(parse_asg(GRAMMAR))


class TestModelBasics:
    def test_initial_model_accepts_everything_syntactic(self, model):
        assert model.valid(("allow", "alice", "write"))
        assert not model.valid(("allow", "alice"))

    def test_generate_enumerates_language(self, model):
        assert len(model.generate()) == 4

    def test_with_hypothesis_bumps_version(self, model):
        updated = model.with_hypothesis([])
        assert updated.version == model.version + 1

    def test_explain_validity_gives_witness(self, model):
        witness = model.explain_validity(("allow", "bob", "read"))
        assert witness is not None
        tree, answer_set = witness
        assert tree.yield_string() == ("allow", "bob", "read")


class TestLearningWorkflow:
    def test_learn_gpm_applies_examples(self, model):
        examples = [
            LabeledExample(("allow", "alice", "read")),
            LabeledExample(("allow", "bob", "write")),
            LabeledExample(("allow", "alice", "write"), valid=False),
        ]
        learned, result = learn_gpm(model, space(), examples)
        assert result.violations == 0
        assert learned.valid(("allow", "alice", "read"))
        assert not learned.valid(("allow", "alice", "write"))
        assert learned.version == 1

    def test_context_dependent_learning(self, model):
        emergency = Context.from_text("emergency.", name="emergency")
        calm = Context.empty("calm")
        examples = [
            LabeledExample(("allow", "bob", "write"), emergency),
            LabeledExample(("allow", "bob", "write"), calm, valid=False),
            LabeledExample(("allow", "alice", "read"), calm),
        ]
        learned, __ = learn_gpm(model, space(), examples)
        assert learned.valid(("allow", "bob", "write"), emergency)
        assert not learned.valid(("allow", "bob", "write"), calm)

    def test_generation_respects_learned_rules(self, model):
        examples = [
            LabeledExample(("allow", "alice", "read")),
            LabeledExample(("allow", "bob", "read")),
            LabeledExample(("allow", "alice", "write"), valid=False),
            LabeledExample(("allow", "bob", "write"), valid=False),
        ]
        learned, __ = learn_gpm(model, space(), examples)
        generated = learned.generate()
        assert ("allow", "alice", "read") in generated
        assert ("allow", "alice", "write") not in generated

    def test_relearn_folds_in_new_examples(self, model):
        old = [LabeledExample(("allow", "alice", "read"))]
        learned, __ = learn_gpm(model, space(), old)
        new = [LabeledExample(("allow", "bob", "write"), valid=False)]
        relearned, __ = relearn(learned, space(), old, new)
        assert relearned.version == learned.version + 1
        assert relearned.valid(("allow", "alice", "read"))
        assert not relearned.valid(("allow", "bob", "write"))
