"""Unit tests for Context."""

from repro.core import Context


class TestConstruction:
    def test_from_attributes(self):
        ctx = Context.from_attributes({"weather": "rain", "hour": 14})
        facts = {repr(a) for a in ctx.facts()}
        assert facts == {"weather(rain)", "hour(14)"}

    def test_boolean_true_becomes_nullary_fact(self):
        ctx = Context.from_attributes({"emergency": True})
        assert {repr(a) for a in ctx.facts()} == {"emergency"}

    def test_boolean_false_omitted(self):
        ctx = Context.from_attributes({"emergency": False})
        assert ctx.facts() == ()

    def test_from_text(self):
        ctx = Context.from_text("a. b(1).", name="test")
        assert len(ctx) == 2
        assert ctx.name == "test"

    def test_empty(self):
        assert len(Context.empty()) == 0


class TestMerging:
    def test_merge_combines_facts(self):
        a = Context.from_attributes({"x": 1}, name="local")
        b = Context.from_attributes({"y": 2})
        merged = a.merged(b)
        assert len(merged) == 2
        assert merged.name == "local"

    def test_merge_keeps_other_name_when_unnamed(self):
        a = Context.empty()
        b = Context.from_attributes({"y": 2}, name="ext")
        assert a.merged(b).name == "ext"


class TestEquality:
    def test_equal_by_fact_set(self):
        a = Context.from_text("a. b.")
        b = Context.from_text("b. a.")
        assert a == b
        assert hash(a) == hash(b)

    def test_different_facts_unequal(self):
        assert Context.from_text("a.") != Context.from_text("b.")
