"""Unit tests for PReP and PAdaP in isolation (not through the AMS)."""

import pytest

from repro.agenp import (
    PolicyCheckingPoint,
    PolicyRefinementPoint,
    PolicyAdaptationPoint,
    PolicyRepository,
    RepresentationsRepository,
    StoredPolicy,
)
from repro.agenp.monitoring import DecisionRecord, MonitoringLog
from repro.core import Context, LabeledExample
from repro.policy import Decision, Request


@pytest.fixture
def repositories():
    return RepresentationsRepository(), PolicyRepository()


class TestPReP:
    def test_bootstrap_stores_model_v0(self, specification, repositories):
        representations, policies = repositories
        prep = PolicyRefinementPoint(specification, representations, policies)
        model = prep.bootstrap()
        assert model.version == 0
        assert len(representations) == 1

    def test_generate_installs_policies(self, specification, repositories):
        representations, policies = repositories
        prep = PolicyRefinementPoint(specification, representations, policies)
        installed, rejections = prep.generate(Context.empty("ctx"))
        assert len(installed) == 4
        assert rejections == []
        assert len(policies) == 4

    def test_generate_replaces_old_set(self, specification, repositories):
        representations, policies = repositories
        prep = PolicyRefinementPoint(specification, representations, policies)
        policies.add(StoredPolicy(("stale",)))
        prep.generate(Context.empty("ctx"))
        assert all(p.tokens != ("stale",) for p in policies)

    def test_current_model_bootstraps_lazily(self, specification, repositories):
        representations, policies = repositories
        prep = PolicyRefinementPoint(specification, representations, policies)
        assert prep.current_model().version == 0

    def test_pcp_filter_applied(self, specification, interpreter, repositories):
        representations, policies = repositories
        pcp = PolicyCheckingPoint(interpreter=interpreter)
        pcp.record_violation(
            LabeledExample(("allow", "alice", "write"), Context.empty("ctx"), valid=False)
        )
        prep = PolicyRefinementPoint(
            specification, representations, policies, pcp=pcp
        )
        installed, rejections = prep.generate(Context.empty("ctx"))
        assert len(rejections) == 1
        assert all(p.text != "allow alice write" for p in installed)


class TestPAdaP:
    def _prep_and_padap(self, specification, pcp=None):
        representations = RepresentationsRepository()
        policies = PolicyRepository()
        prep = PolicyRefinementPoint(specification, representations, policies)
        prep.bootstrap()
        padap = PolicyAdaptationPoint(
            specification.hypothesis_space, representations, pcp=pcp
        )
        return prep, padap, representations

    def test_adapt_stores_new_version(self, specification):
        __, padap, representations = self._prep_and_padap(specification)
        padap.add_example(
            LabeledExample(("allow", "bob", "write"), valid=False)
        )
        model, result = padap.adapt()
        assert model.version == 1
        assert result is not None
        assert len(representations) == 2

    def test_ingest_feedback_creates_examples(self, specification):
        __, padap, __r = self._prep_and_padap(specification)
        log = MonitoringLog()
        record = log.append(
            DecisionRecord(
                Request({"subject": {"id": "bob"}}),
                Decision.PERMIT,
                "allow bob write",
                Context.empty(),
            )
        )
        log.mark_outcome(record.record_id, ok=False)
        added = padap.ingest_feedback(log)
        assert added == 1
        assert len(padap.examples) == 1
        assert not padap.examples[0].valid

    def test_ingest_skips_unreviewed_and_duplicates(self, specification):
        __, padap, __r = self._prep_and_padap(specification)
        log = MonitoringLog()
        unreviewed = log.append(
            DecisionRecord(
                Request({"subject": {"id": "a"}}),
                Decision.PERMIT,
                "allow alice read",
                Context.empty(),
            )
        )
        reviewed = log.append(
            DecisionRecord(
                Request({"subject": {"id": "a"}}),
                Decision.PERMIT,
                "allow alice read",
                Context.empty(),
            )
        )
        log.mark_outcome(reviewed.record_id, ok=True)
        assert padap.ingest_feedback(log) == 1
        # re-ingesting the same log adds nothing
        assert padap.ingest_feedback(log) == 0

    def test_needs_adaptation_mirrors_violations(self, specification):
        __, padap, __r = self._prep_and_padap(specification)
        log = MonitoringLog()
        record = log.append(
            DecisionRecord(
                Request({"subject": {"id": "a"}}),
                Decision.PERMIT,
                "allow alice read",
                Context.empty(),
            )
        )
        assert not padap.needs_adaptation(log)
        log.mark_outcome(record.record_id, ok=False)
        assert padap.needs_adaptation(log)

    def test_negative_examples_registered_with_pcp(self, specification, interpreter):
        pcp = PolicyCheckingPoint(interpreter=interpreter)
        __, padap, __r = self._prep_and_padap(specification, pcp=pcp)
        padap.add_example(LabeledExample(("allow", "bob", "read"), valid=False))
        assert len(pcp._known_violations) == 1

    def test_contradictory_feedback_survives_via_budget(self, specification):
        __, padap, representations = self._prep_and_padap(specification)
        same = ("allow", "alice", "read")
        padap.add_example(LabeledExample(same, valid=True))
        padap.add_example(LabeledExample(same, valid=False))
        model, result = padap.adapt()
        # the learner found *some* model rather than crashing
        assert model.version >= 0
