"""Shared fixtures for AGENP tests: a small access-control AMS."""

import pytest

from repro.agenp import AutonomousManagedSystem, FieldInterpreter, PolicySpecification
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.core import Context
from repro.learning import constraint_space
from repro.policy import CategoricalDomain, DomainSchema

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def hypothesis_space():
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    pool += [Literal(Atom("emergency"), s) for s in (True, False)]
    return constraint_space(pool, prod_ids=(0,), max_body=3)


@pytest.fixture
def specification():
    return PolicySpecification(
        GRAMMAR,
        goals=["no damaging writes"],
        hypothesis_space=hypothesis_space(),
    )


@pytest.fixture
def interpreter():
    return FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})


@pytest.fixture
def schema():
    return DomainSchema(
        {
            ("subject", "id"): CategoricalDomain(["alice", "bob"]),
            ("action", "id"): CategoricalDomain(["read", "write"]),
        }
    )


@pytest.fixture
def ams(specification, interpreter, schema):
    system = AutonomousManagedSystem("ams1", specification, interpreter, schema)
    system.bootstrap(Context.from_attributes({}, name="normal"))
    return system
