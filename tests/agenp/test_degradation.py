"""Graceful degradation: PDP fallback under resource exhaustion.

The interpreter here really solves ASP (as a solver-backed / ASG-backed
interpreter would), so these tests exercise the full chain: the PDP's
per-decision ``budget_scope`` → ambient budget → grounder/solver ticks →
typed :class:`ResourceError` → breaker + fallback decision + degradation
record in the monitoring log.
"""

import pytest

from repro.agenp.interpreters import FieldInterpreter
from repro.agenp.monitoring import MonitoringLog
from repro.agenp.pdp import PolicyDecisionPoint
from repro.agenp.repositories import PolicyRepository, StoredPolicy
from repro.asp import solve_text
from repro.core.contexts import Context
from repro.errors import BudgetExceededError
from repro.policy.model import Decision, Request
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.budget import Budget

# enumerating every subset of 14 atoms: cheap to ground, far more solver
# steps than the small budgets below allow
HARD_PROGRAM = " ".join("{ a%d }." % i for i in range(14))


class SolverBackedInterpreter:
    """Interprets policies only after an ASP validity check (solver-backed).

    ``hard`` switches the validity check between a trivial program and
    one whose solve cost exceeds any small step budget.
    """

    def __init__(self):
        self.inner = FieldInterpreter({1: ("subject", "id")})
        self.hard = True

    def __call__(self, tokens):
        solve_text(HARD_PROGRAM if self.hard else "a.")
        return self.inner(tokens)


def make_pdp(budget_steps=2_000, threshold=3):
    repo = PolicyRepository()
    repo.add(StoredPolicy(("allow", "alice"), "normal", 1, source="local"))
    log = MonitoringLog()
    interpreter = SolverBackedInterpreter()
    pdp = PolicyDecisionPoint(
        repo,
        interpreter,
        log,
        budget_factory=lambda: Budget(max_steps=budget_steps),
        breaker=CircuitBreaker(failure_threshold=threshold),
    )
    return pdp, repo, log, interpreter


REQUEST = Request({"subject": {"id": "alice"}})
CONTEXT = Context.from_attributes({}, name="normal")


def test_hard_instance_exhausts_small_budget_directly():
    # sanity for the fixture: the instance really does blow the budget
    from repro.runtime.budget import budget_scope

    with budget_scope(Budget(max_steps=2_000)):
        with pytest.raises(BudgetExceededError) as err:
            solve_text(HARD_PROGRAM)
    assert err.value.steps_used > 0


def test_pdp_degrades_instead_of_raising():
    pdp, __, log, __i = make_pdp()
    record = pdp.decide(REQUEST, CONTEXT)
    # fallback decision, not an exception
    assert record.decision is Decision.DENY
    assert record.degraded
    assert "resource exhausted" in record.note
    # and the degradation is visible to the adaptation loop
    assert log.degradations() == [record]


def test_padap_sees_degradations_as_adaptation_trigger():
    from repro.agenp.padap import PolicyAdaptationPoint
    from repro.agenp.repositories import RepresentationsRepository

    pdp, __, log, __i = make_pdp()
    pdp.decide(REQUEST, CONTEXT)
    padap = PolicyAdaptationPoint([], RepresentationsRepository())
    assert padap.needs_adaptation(log)


def test_breaker_opens_after_repeated_exhaustion():
    pdp, __, log, interpreter = make_pdp(threshold=3)
    for __n in range(3):
        pdp.decide(REQUEST, CONTEXT)
    assert pdp.breaker.state == CircuitBreaker.OPEN
    # circuit open: the expensive path is skipped entirely — even an
    # easy instance is answered from the fallback until recovery
    interpreter.hard = False
    record = pdp.decide(REQUEST, CONTEXT)
    assert record.degraded
    assert "circuit open" in record.note
    assert len(log.degradations()) == 4


def test_last_known_good_policies_serve_fallback():
    pdp, repo, __, interpreter = make_pdp()
    # a healthy decision first: compiles and caches the good policy set
    interpreter.hard = False
    healthy = pdp.decide(REQUEST, CONTEXT)
    assert healthy.decision is Decision.PERMIT
    assert not healthy.degraded
    # repository changes force a recompile; the solver now stalls
    repo.add(StoredPolicy(("deny", "bob"), "normal", 1, source="local"))
    interpreter.hard = True
    record = pdp.decide(REQUEST, CONTEXT)
    assert record.degraded
    assert "last-known-good" in record.note
    # served from the previously compiled policies, not the deny-default
    assert record.decision is Decision.PERMIT


def test_successful_decision_resets_breaker():
    pdp, __, __l, interpreter = make_pdp(threshold=3)
    pdp.decide(REQUEST, CONTEXT)  # one failure
    interpreter.hard = False
    record = pdp.decide(REQUEST, CONTEXT)
    assert not record.degraded
    assert pdp.breaker.state == CircuitBreaker.CLOSED
    assert pdp.breaker.total_failures == 1
