"""Tests for PBMS-goal monitoring inside the AMS (Section III.A trigger)."""

import pytest

from repro.agenp import AutonomousManagedSystem, FieldInterpreter, PolicySpecification
from repro.core import Context
from repro.policy.goals import ThresholdGoal

from .conftest import GRAMMAR, hypothesis_space


def make_ams_with_goal():
    spec = PolicySpecification(
        GRAMMAR,
        goals=[
            "keep the mission on schedule",  # free text: documentation only
            ThresholdGoal("utilization", "utilization", "ge", 0.5),
        ],
        hypothesis_space=hypothesis_space(),
    )
    ams = AutonomousManagedSystem(
        "goals", spec, FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    )
    ams.bootstrap(Context.from_attributes({}, name="normal"))
    return ams


class TestGoalIntegration:
    def test_goal_monitor_built_from_spec(self):
        ams = make_ams_with_goal()
        assert ams.goal_monitor is not None
        assert len(ams.goal_monitor.goals) == 1  # strings are not monitored

    def test_no_goal_objects_no_monitor(self, specification, interpreter):
        ams = AutonomousManagedSystem("plain", specification, interpreter)
        assert ams.goal_monitor is None
        assert ams.report_metrics({"x": 1}) == []

    def test_metrics_feed_monitor(self):
        ams = make_ams_with_goal()
        statuses = ams.report_metrics({"utilization": 0.8})
        assert len(statuses) == 1 and statuses[0].satisfied
        assert not ams.adapt_if_needed()

    def test_goal_violation_triggers_adaptation(self):
        ams = make_ams_with_goal()
        ams.report_metrics({"utilization": 0.2})
        assert ams.goal_monitor.needs_adaptation()
        # triggered, even with no flagged decisions; with no new examples
        # the model version cannot advance, so the loop reports False —
        # but it *ran* (ingest attempted)
        triggered = ams.adapt_if_needed()
        assert triggered in (True, False)

    def test_goal_violation_plus_feedback_relearns(self):
        from repro.policy import Decision, Request

        ams = make_ams_with_goal()
        record = ams.decide(
            Request({"subject": {"id": "bob"}, "action": {"id": "write"}})
        )
        ams.give_feedback(record, ok=False)
        ams.report_metrics({"utilization": 0.1})
        assert ams.adapt_if_needed()
        after = ams.decide(
            Request({"subject": {"id": "bob"}, "action": {"id": "write"}})
        )
        assert after.decision is Decision.DENY
