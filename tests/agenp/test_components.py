"""Unit tests for individual AGENP components."""

import pytest

from repro.agenp import (
    CASWiki,
    FieldInterpreter,
    MonitoringLog,
    PolicyBasedManagementSystem,
    PolicyInformationPoint,
    PolicyRepository,
    RepresentationsRepository,
    ContextRepository,
    StoredPolicy,
)
from repro.agenp.monitoring import DecisionRecord
from repro.agenp.pep import ManagedResource, PolicyEnforcementPoint
from repro.core import Context, GenerativePolicyModel
from repro.errors import AgenpError
from repro.policy import Decision, Effect, Request


class TestRepositories:
    def test_policy_repo_replace(self):
        repo = PolicyRepository()
        repo.replace([StoredPolicy(("a",)), StoredPolicy(("b",))])
        assert len(repo) == 2
        repo.replace([StoredPolicy(("c",))])
        assert [p.text for p in repo] == ["c"]

    def test_policy_repo_dedup_on_add(self):
        repo = PolicyRepository()
        repo.add(StoredPolicy(("a",)))
        repo.add(StoredPolicy(("a",)))
        assert len(repo) == 1

    def test_policy_repo_by_source(self):
        repo = PolicyRepository()
        repo.add(StoredPolicy(("a",), source="local"))
        repo.add(StoredPolicy(("b",), source="shared:x"))
        assert [p.text for p in repo.by_source("local")] == ["a"]

    def test_representations_versioning(self):
        from repro.asg import parse_asg

        repo = RepresentationsRepository()
        with pytest.raises(AgenpError):
            repo.latest()
        model = GenerativePolicyModel(parse_asg('s -> "x"'))
        repo.store(model)
        repo.store(model.with_hypothesis([]))
        assert repo.latest().version == 1
        assert len(repo.history()) == 2

    def test_context_repo_requires_names(self):
        repo = ContextRepository()
        with pytest.raises(AgenpError):
            repo.store(Context.empty())
        repo.store(Context.from_attributes({"x": 1}, name="day"))
        repo.set_current("day")
        assert repo.current().name == "day"

    def test_context_repo_unknown_name(self):
        repo = ContextRepository()
        with pytest.raises(AgenpError):
            repo.set_current("nope")
        assert repo.current().name == "default"


class TestMonitoring:
    def _record(self):
        request = Request({"subject": {"id": "alice"}})
        return DecisionRecord(request, Decision.PERMIT, "allow alice read", Context.empty())

    def test_feedback_cycle(self):
        log = MonitoringLog()
        record = log.append(self._record())
        assert log.unreviewed() == [record]
        log.mark_outcome(record.record_id, ok=False)
        assert log.violations() == [record]
        assert log.confirmations() == []

    def test_unknown_record_id(self):
        log = MonitoringLog()
        with pytest.raises(KeyError):
            log.mark_outcome(424242, ok=True)


class TestPEP:
    def test_permit_performs_action(self):
        pep = PolicyEnforcementPoint(ManagedResource("robot"))
        request = Request({"subject": {"id": "a"}})
        record = DecisionRecord(request, Decision.PERMIT, "p", Context.empty())
        result = pep.enforce(record, "advance")
        assert result.executed
        assert pep.resource.performed == ["advance"]
        assert record.enforced

    def test_deny_blocks_action(self):
        pep = PolicyEnforcementPoint()
        request = Request({"subject": {"id": "a"}})
        record = DecisionRecord(request, Decision.DENY, "p", Context.empty())
        result = pep.enforce(record, "advance")
        assert not result.executed
        assert pep.resource.blocked == ["advance"]


class TestPIP:
    def test_acquire_merges_providers(self):
        pip = PolicyInformationPoint()
        pip.register("weather", lambda: Context.from_attributes({"weather": "rain"}))
        pip.register("threat", lambda: Context.from_attributes({"threat": "low"}))
        merged = pip.acquire(Context.from_attributes({"local": 1}, name="base"))
        assert len(merged) == 3

    def test_provider_failure_isolated(self):
        pip = PolicyInformationPoint()

        def broken():
            raise ConnectionError("link down")

        pip.register("sat", broken)
        pip.register("ok", lambda: Context.from_attributes({"x": 1}))
        merged = pip.acquire()
        assert len(merged) == 1
        assert pip.failures and pip.failures[0][0] == "sat"


class TestInterpreter:
    def test_allow_maps_to_permit(self):
        interp = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
        policy = interp(("allow", "alice", "read"))
        assert policy.rules[0].effect is Effect.PERMIT
        assert len(policy.rules[0].target.matches) == 2

    def test_other_effect_token_maps_to_deny(self):
        interp = FieldInterpreter({1: ("subject", "id")})
        policy = interp(("deny", "alice"))
        assert policy.rules[0].effect is Effect.DENY

    def test_wildcard_skips_match(self):
        interp = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
        policy = interp(("allow", "any", "read"))
        assert len(policy.rules[0].target.matches) == 1

    def test_short_string_rejected(self):
        interp = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
        with pytest.raises(AgenpError):
            interp(("allow",))


class TestPBMS:
    def test_publish_and_fetch(self):
        from repro.agenp import PolicySpecification

        pbms = PolicyBasedManagementSystem()
        spec = PolicySpecification('s -> "x"')
        pbms.publish("cav", spec)
        assert pbms.specification("cav") is spec
        with pytest.raises(AgenpError):
            pbms.specification("nope")

    def test_global_constraints_refine_initial_asg(self):
        from repro.agenp import PolicySpecification
        from repro.asg import accepts

        spec = PolicySpecification(
            's -> "go"\ns -> "stop"',
            global_constraints=":- not allowed. allowed :- stop_ok.",
        )
        asg = spec.initial_asg()
        # neither string valid: the global constraint requires stop_ok,
        # which no production provides
        assert not accepts(asg, ("go",))


class TestCASWiki:
    def test_contribute_and_retrieve(self):
        wiki = CASWiki()
        wiki.contribute("a1", ("allow", "x"), "ctx")
        wiki.contribute("a2", ("deny", "x"), "other")
        assert len(wiki.retrieve()) == 2
        assert len(wiki.retrieve(context_name="ctx")) == 1
        assert len(wiki.retrieve(exclude_agent="a1")) == 1

    def test_trust_updates_on_rating(self):
        wiki = CASWiki(initial_trust=0.5, trust_alpha=0.5)
        contribution = wiki.contribute("a1", ("allow", "x"))
        assert wiki.trust("a1") == 0.5
        wiki.rate(contribution, useful=True)
        assert wiki.trust("a1") == 0.75
        wiki.rate(contribution, useful=False)
        assert wiki.trust("a1") == 0.375

    def test_min_trust_filters(self):
        wiki = CASWiki(initial_trust=0.5)
        contribution = wiki.contribute("sketchy", ("allow", "x"))
        wiki.rate(contribution, useful=False)
        assert wiki.retrieve(min_trust=0.5) == []

    def test_rate_unknown_contribution(self):
        from repro.agenp.caswiki import Contribution

        wiki = CASWiki()
        rogue = Contribution("x", StoredPolicy(("a",)), "")
        with pytest.raises(AgenpError):
            wiki.rate(rogue, True)
