"""Integration tests: the full Figure 2 closed loop."""

import pytest

from repro.agenp import AutonomousManagedSystem, CASWiki
from repro.core import Context, LabeledExample
from repro.policy import Decision, Request


def request(subject, action):
    return Request({"subject": {"id": subject}, "action": {"id": action}})


class TestBootstrap:
    def test_bootstrap_generates_full_language(self, ams):
        assert len(ams.policy_repository) == 4

    def test_model_stored_in_representations(self, ams):
        assert ams.model().version == 0


class TestDecisionLoop:
    def test_permit_when_policy_exists(self, ams):
        record = ams.decide(request("alice", "read"))
        assert record.decision is Decision.PERMIT
        assert record.policy_text == "allow alice read"

    def test_default_deny_when_no_policy(self, ams):
        record = ams.decide(Request({"subject": {"id": "carol"}, "action": {"id": "read"}}))
        assert record.decision is Decision.DENY
        assert ams.pdp.coverage_gap(record)

    def test_enforcement_runs_action(self, ams):
        result = ams.decide_and_enforce(request("bob", "read"), "read-file")
        assert result.executed
        assert ams.pep.resource.performed == ["read-file"]


class TestAdaptationLoop:
    def test_bad_outcome_triggers_adaptation(self, ams):
        record = ams.decide(request("bob", "write"))
        assert record.decision is Decision.PERMIT
        ams.give_feedback(record, ok=False)
        assert ams.adapt_if_needed()
        assert ams.model().version == 1
        after = ams.decide(request("bob", "write"))
        assert after.decision is Decision.DENY

    def test_good_outcomes_do_not_trigger(self, ams):
        record = ams.decide(request("alice", "read"))
        ams.give_feedback(record, ok=True)
        assert not ams.adapt_if_needed()
        assert ams.model().version == 0

    def test_positive_feedback_protects_policies(self, ams):
        # confirm alice/read and bob/read as good, bob/write as bad:
        # adaptation must keep the good ones valid
        for subject, action in (("alice", "read"), ("bob", "read")):
            record = ams.decide(request(subject, action))
            ams.give_feedback(record, ok=True)
        bad = ams.decide(request("bob", "write"))
        ams.give_feedback(bad, ok=False)
        assert ams.adapt_if_needed()
        assert ams.decide(request("alice", "read")).decision is Decision.PERMIT
        assert ams.decide(request("bob", "read")).decision is Decision.PERMIT
        assert ams.decide(request("bob", "write")).decision is Decision.DENY

    def test_direct_examples_feed_learning(self, ams):
        ams.add_example(LabeledExample(("allow", "alice", "write"), valid=False))
        ams.padap.adapt()
        ams.refresh_policies()
        assert ams.decide(request("alice", "write")).decision is Decision.DENY


class TestContextSwitch:
    def test_context_change_regenerates(self, ams, specification):
        record = ams.decide(request("bob", "write"))
        ams.give_feedback(record, ok=False)
        ams.adapt_if_needed()
        assert ams.decide(request("bob", "write")).decision is Decision.DENY
        # bob/write was fine during an emergency: teach that, switch context
        emergency = Context.from_attributes({"emergency": True}, name="emergency")
        ams.add_example(LabeledExample(("allow", "bob", "write"), emergency, valid=True))
        ams.padap.adapt()
        ams.set_context(emergency)
        ams.refresh_policies()
        assert ams.decide(request("bob", "write")).decision is Decision.PERMIT


class TestSharing:
    def test_share_and_import(self, ams, specification, interpreter, schema):
        wiki = CASWiki()
        ams.share(wiki)
        assert len(wiki) == len(ams.policy_repository)

        other = AutonomousManagedSystem("ams2", specification, interpreter, schema)
        other.bootstrap(Context.from_attributes({}, name="normal"))
        # make ams2 stricter: it has learned alice must not write
        other.add_example(LabeledExample(("allow", "alice", "write"), valid=False))
        other.padap.adapt()
        other.refresh_policies()
        adopted, rejected = other.import_shared(wiki, min_trust=0.0)
        adopted_texts = {p.text for p in adopted}
        # the shared alice-write policy violates ams2's local model
        assert "allow alice write" not in adopted_texts
        assert any(o.policy.text == "allow alice write" for o in rejected)

    def test_ratings_move_trust(self, ams, specification, interpreter, schema):
        wiki = CASWiki()
        ams.share(wiki)
        other = AutonomousManagedSystem("ams2", specification, interpreter, schema)
        other.bootstrap(Context.from_attributes({}, name="normal"))
        other.import_shared(wiki, min_trust=0.0)
        assert wiki.trust("ams1") > 0.5  # all adoptions succeeded
