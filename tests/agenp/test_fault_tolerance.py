"""Fault injection and the reliable share protocol.

These tests drive :mod:`repro.agenp.coalition` with a lightweight stub
AMS (no grammar, no solver) so protocol behaviour — dedup, retransmit,
crash/restart, convergence — can be exercised over many fault plans
quickly.
"""

import pytest

from repro.agenp.coalition import (
    Coalition,
    CoalitionNetwork,
    CoalitionParty,
    FaultPlan,
)
from repro.errors import AgenpError


class _StubContext:
    name = "normal"


class _StubModel:
    version = 1


class _StubRepository:
    """Holds StoredPolicy-alikes; only ``by_source`` and ``add`` are used."""

    def __init__(self, local_policies):
        self._local = list(local_policies)
        self.added = []

    def by_source(self, source):
        return list(self._local) if source == "local" else []

    def add(self, policy):
        self.added.append(policy)


class _StubPolicy:
    def __init__(self, tokens):
        self.tokens = tuple(tokens)


class _StubOutcome:
    accepted = True


class _StubPCP:
    def check_policy(self, candidate, model, context):
        return _StubOutcome()


class StubAMS:
    """The minimal surface CoalitionParty touches."""

    def __init__(self, name, policies=("allow", "read")):
        self.name = name
        self.policy_repository = _StubRepository(
            [_StubPolicy(policies)] if policies else []
        )
        self.pcp = _StubPCP()

    def current_context(self):
        return _StubContext()

    def model(self):
        return _StubModel()


def build_coalition(fault_plan=None, parties=3, reliable=True, n_policies=2):
    network = CoalitionNetwork(fault_plan=fault_plan)
    members = []
    for i in range(parties):
        ams = StubAMS(f"p{i}", policies=None)
        ams.policy_repository = _StubRepository(
            [_StubPolicy(("rule", f"p{i}", str(j))) for j in range(n_policies)]
        )
        members.append(CoalitionParty(ams, network, reliable=reliable))
    return Coalition(members), network


# -- fault plan determinism ---------------------------------------------------


def test_fault_plan_is_deterministic():
    def stats(seed):
        plan = FaultPlan(seed=seed, drop_rate=0.4, duplicate_rate=0.2, delay_rate=0.2)
        coalition, network = build_coalition(fault_plan=plan)
        coalition.run(6)
        return (network.sent, network.dropped, network.duplicated, network.delayed)

    assert stats(11) == stats(11)
    # different seed, different fault sequence (overwhelmingly likely)
    assert stats(11) != stats(12)


def test_fault_plan_validates_rates():
    with pytest.raises(AgenpError):
        FaultPlan(drop_rate=1.0)
    with pytest.raises(AgenpError):
        FaultPlan(max_delay=0)


def test_crash_windows_take_party_down():
    plan = FaultPlan(crash_windows={"p1": [(2, 4)]})
    coalition, network = build_coalition(fault_plan=plan)
    p1 = coalition.parties[1]
    coalition.round()  # tick 1: up
    assert p1.live
    coalition.round()  # tick 2: window opens
    assert not p1.live
    coalition.round()  # tick 3: still down
    assert not p1.live
    coalition.round()  # tick 4: window closed (half-open interval)
    assert p1.live


# -- duplicate suppression ----------------------------------------------------


def test_duplicates_never_double_adopt():
    plan = FaultPlan(seed=3, duplicate_rate=0.9)
    coalition, network = build_coalition(fault_plan=plan)
    coalition.run_until_converged(max_rounds=10)
    assert network.duplicated > 0
    for party in coalition.parties:
        repo = party.ams.policy_repository
        keys = [tuple(p.tokens) for p in repo.added]
        assert len(keys) == len(set(keys)), "a duplicated share was adopted twice"
        # 2 policies from each of 2 peers
        assert len(keys) == 4


def test_retransmits_never_double_adopt():
    plan = FaultPlan(seed=9, drop_rate=0.5)
    coalition, network = build_coalition(fault_plan=plan)
    coalition.run_until_converged(max_rounds=40)
    assert sum(p.retransmissions for p in coalition.parties) > 0
    for party in coalition.parties:
        keys = [tuple(p.tokens) for p in party.ams.policy_repository.added]
        assert len(keys) == len(set(keys))


# -- reliability ablation ------------------------------------------------------


def test_reliable_converges_where_fire_and_forget_fails():
    plan_args = dict(seed=21, drop_rate=0.3, duplicate_rate=0.15, reorder_rate=0.15)
    reliable, __ = build_coalition(FaultPlan(**plan_args), reliable=True)
    lossy, __n = build_coalition(FaultPlan(**plan_args), reliable=False)
    assert reliable.run_until_converged(max_rounds=40) is not None
    assert lossy.run_until_converged(max_rounds=40) is None


def test_faultless_network_converges_in_one_round():
    coalition, __ = build_coalition()
    assert coalition.run_until_converged(max_rounds=5) == 1


# -- crash and restart --------------------------------------------------------


def test_restarted_party_still_receives_everything():
    plan = FaultPlan(crash_windows={"p2": [(1, 4)]})
    coalition, __ = build_coalition(fault_plan=plan)
    # convergence is defined over *live* parties, so drive rounds through
    # the crash window first; retransmits then repair the restarted party
    coalition.run(4)
    rounds = coalition.run_until_converged(max_rounds=40)
    assert rounds is not None
    p2 = coalition.parties[2]
    assert len(p2.ams.policy_repository.added) == 4  # nothing lost to the crash


def test_manual_crash_and_restart():
    coalition, network = build_coalition()
    party = coalition.parties[0]
    party.crash()
    assert not party.live
    assert network.is_down("p0")
    coalition.round()
    party.restart()
    assert party.live
    assert coalition.run_until_converged(max_rounds=20) is not None


# -- seeded property-style sweep ----------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_share_protocol_converges_for_every_fault_plan(seed):
    """Property: for any (seeded) plan in this family, the reliable
    protocol converges and every party ends with the full policy set."""
    plan = FaultPlan(
        seed=seed,
        drop_rate=0.25,
        duplicate_rate=0.2,
        reorder_rate=0.2,
        delay_rate=0.2,
        max_delay=2,
    )
    coalition, network = build_coalition(fault_plan=plan)
    rounds = coalition.run_until_converged(max_rounds=60)
    assert rounds is not None, f"seed {seed} did not converge"
    assert coalition.converged()
    for party in coalition.parties:
        assert len(party.ams.policy_repository.added) == 4
