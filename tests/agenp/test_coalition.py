"""Tests for the multi-party coalition layer (Section III.B)."""

import pytest

from repro.agenp import AutonomousManagedSystem
from repro.agenp.coalition import Coalition, CoalitionNetwork, CoalitionParty
from repro.core import Context, LabeledExample
from repro.errors import AgenpError


@pytest.fixture
def make_ams(specification, interpreter, schema):
    def factory(name):
        ams = AutonomousManagedSystem(name, specification, interpreter, schema)
        ams.bootstrap(Context.from_attributes({}, name="normal"))
        return ams

    return factory


class TestNetwork:
    def test_send_and_drain(self):
        net = CoalitionNetwork()
        net.register("a")
        net.register("b")
        assert net.send("a", "b", "share", {"x": 1})
        messages = net.drain("b")
        assert len(messages) == 1
        assert messages[0].sender == "a"
        assert net.drain("b") == []

    def test_unknown_recipient_rejected(self):
        net = CoalitionNetwork()
        net.register("a")
        with pytest.raises(AgenpError):
            net.send("a", "ghost", "share", {})

    def test_broadcast_excludes_sender(self):
        net = CoalitionNetwork()
        for name in ("a", "b", "c"):
            net.register(name)
        assert net.broadcast("a", "share", {}) == 2
        assert net.drain("a") == []

    def test_lossy_fabric_drops_messages(self):
        net = CoalitionNetwork(loss_rate=0.5, seed=1)
        net.register("a")
        net.register("b")
        delivered = sum(net.send("a", "b", "share", {}) for __ in range(200))
        assert 60 <= delivered <= 140
        assert net.dropped == 200 - delivered

    def test_invalid_loss_rate(self):
        with pytest.raises(AgenpError):
            CoalitionNetwork(loss_rate=1.0)


class TestSharingProtocol:
    def test_policies_propagate(self, make_ams):
        net = CoalitionNetwork()
        alpha = CoalitionParty(make_ams("alpha"), net)
        bravo = CoalitionParty(make_ams("bravo"), net)
        coalition = Coalition([alpha, bravo])
        results = coalition.round()
        # both bootstrapped the same grammar: everything shared validates
        assert results["bravo"][0] > 0
        assert any(p.source == "shared:alpha" for p in bravo.adopted)

    def test_invalid_shared_policies_rejected(self, make_ams):
        net = CoalitionNetwork()
        alpha = CoalitionParty(make_ams("alpha"), net)
        bravo_ams = make_ams("bravo")
        # bravo has learned that alice must not write
        bravo_ams.add_example(
            LabeledExample(("allow", "alice", "write"), valid=False)
        )
        bravo_ams.padap.adapt()
        bravo_ams.refresh_policies()
        bravo = CoalitionParty(bravo_ams, net)
        coalition = Coalition([alpha, bravo])
        results = coalition.round()
        adopted, rejected = results["bravo"]
        assert rejected >= 1  # alpha's alice-write policy fails bravo's PCP

    def test_trust_reflects_usefulness(self, make_ams):
        net = CoalitionNetwork()
        alpha = CoalitionParty(make_ams("alpha"), net)
        bravo_ams = make_ams("bravo")
        bravo_ams.add_example(
            LabeledExample(("allow", "alice", "write"), valid=False)
        )
        bravo_ams.padap.adapt()
        bravo_ams.refresh_policies()
        bravo = CoalitionParty(bravo_ams, net)
        Coalition([alpha, bravo]).round()
        # bravo rejected some of alpha's policies -> trust moved off 0.5
        assert bravo.trust_in("alpha") != 0.5
        # alpha heard the ratings back
        assert "bravo" in alpha.trust

    def test_low_trust_sender_ignored(self, make_ams):
        net = CoalitionNetwork()
        alpha = CoalitionParty(make_ams("alpha"), net)
        bravo = CoalitionParty(make_ams("bravo"), net)
        bravo.trust["alpha"] = 0.0
        coalition = Coalition([alpha, bravo])
        results = coalition.round(min_trust=0.25)
        assert results["bravo"][0] == 0  # nothing adopted from alpha

    def test_lossy_network_slows_propagation(self, make_ams):
        reliable = CoalitionNetwork(loss_rate=0.0)
        lossy = CoalitionNetwork(loss_rate=0.8, seed=3)
        adopted = {}
        for label, net in (("reliable", reliable), ("lossy", lossy)):
            a = CoalitionParty(make_ams(f"a_{label}"), net)
            b = CoalitionParty(make_ams(f"b_{label}"), net)
            results = Coalition([a, b]).round()
            adopted[label] = results[f"b_{label}"][0]
        assert adopted["lossy"] <= adopted["reliable"]

    def test_duplicate_party_names_rejected(self, make_ams):
        net = CoalitionNetwork()
        a1 = CoalitionParty(make_ams("same"), net)
        with pytest.raises(AgenpError):
            Coalition([a1, a1])
