"""Unit tests for the shallow-ML baselines."""

import numpy as np
import pytest

from repro.baselines import (
    BernoulliNaiveBayes,
    DecisionTreeClassifier,
    KNNClassifier,
    LogisticRegression,
    OneHotEncoder,
)

CLASSIFIERS = [
    DecisionTreeClassifier,
    BernoulliNaiveBayes,
    LogisticRegression,
    KNNClassifier,
]


def xor_free_dataset(n=200, seed=0):
    """A linearly-separable one-hot dataset: label = feature 0."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, 5)).astype(float)
    y = X[:, 0].astype(int)
    return X, y


def conjunction_dataset(n=300, seed=1):
    """label = f0 AND f1 (needs a non-linear-in-one-feature split)."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 2, size=(n, 4)).astype(float)
    y = ((X[:, 0] > 0.5) & (X[:, 1] > 0.5)).astype(int)
    return X, y


class TestEncoder:
    def test_one_hot_shape(self):
        encoder = OneHotEncoder()
        rows = [{"color": "red", "n": 1}, {"color": "blue", "n": 2}]
        matrix = encoder.fit_transform(rows)
        assert matrix.shape == (2, 4)
        assert matrix.sum() == 4  # one hot per (feature, row)

    def test_unknown_value_is_all_zero(self):
        encoder = OneHotEncoder()
        encoder.fit([{"color": "red"}])
        matrix = encoder.transform([{"color": "green"}])
        assert matrix.sum() == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            OneHotEncoder().transform([{"a": 1}])

    def test_feature_names_align(self):
        encoder = OneHotEncoder()
        encoder.fit([{"a": "x", "b": "y"}])
        assert len(encoder.feature_names()) == encoder.n_features


class TestAllClassifiers:
    @pytest.mark.parametrize("cls", CLASSIFIERS)
    def test_fits_separable_data(self, cls):
        X, y = xor_free_dataset()
        model = cls().fit(X[:150], y[:150])
        accuracy = (model.predict(X[150:]) == y[150:]).mean()
        assert accuracy >= 0.95

    @pytest.mark.parametrize("cls", CLASSIFIERS)
    def test_predict_before_fit_raises(self, cls):
        with pytest.raises(RuntimeError):
            cls().predict(np.zeros((1, 3)))

    @pytest.mark.parametrize("cls", CLASSIFIERS)
    def test_predict_shape(self, cls):
        X, y = xor_free_dataset(50)
        model = cls().fit(X, y)
        assert model.predict(X).shape == (50,)

    @pytest.mark.parametrize("cls", [DecisionTreeClassifier, KNNClassifier])
    def test_conjunction_learnable_by_nonlinear(self, cls):
        X, y = conjunction_dataset()
        model = cls().fit(X[:200], y[:200])
        accuracy = (model.predict(X[200:]) == y[200:]).mean()
        assert accuracy >= 0.9

    @pytest.mark.parametrize("cls", CLASSIFIERS)
    def test_single_class_training(self, cls):
        X = np.ones((10, 3))
        y = np.zeros(10, dtype=int)
        model = cls().fit(X, y)
        assert (model.predict(X) == 0).all()


class TestDecisionTree:
    def test_max_depth_zero_is_majority(self):
        X, y = xor_free_dataset()
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        assert tree.depth() == 0
        assert len(set(tree.predict(X))) == 1

    def test_depth_grows_with_conjunction(self):
        X, y = conjunction_dataset()
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth() >= 2


class TestLogisticRegression:
    def test_probabilities_in_unit_interval(self):
        X, y = xor_free_dataset()
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_extreme_logits_stable(self):
        model = LogisticRegression().fit(np.eye(2) * 100, np.array([1, 0]))
        assert np.isfinite(model.predict_proba(np.eye(2) * 100)).all()


class TestNaiveBayes:
    def test_log_proba_shape(self):
        X, y = xor_free_dataset(30)
        model = BernoulliNaiveBayes().fit(X, y)
        assert model.predict_log_proba(X).shape == (30, 2)

    def test_smoothing_handles_unseen(self):
        X = np.array([[1.0, 0.0]])
        y = np.array([1])
        model = BernoulliNaiveBayes().fit(X, y)
        assert np.isfinite(model.predict_log_proba(np.array([[0.0, 1.0]]))).all()
