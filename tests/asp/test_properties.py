"""Property-based tests for the ASP engine (hypothesis).

These check the defining invariants of the answer-set semantics on
randomly generated propositional programs:

* every answer set is a classical model of the program;
* every answer set is *stable* (equals the least model of its reduct);
* answer sets are pairwise incomparable only w.r.t. the same reduct —
  we check the standard minimality property: no answer set is a proper
  subset of another answer set of the same *reduct-free* (negation-free)
  program;
* adding a constraint never adds answer sets (anti-monotonicity).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp import parse_program, solve_text
from repro.asp.atoms import Atom, Literal
from repro.asp.rules import NormalRule, Program
from repro.asp.solver import solve

ATOMS = ["a", "b", "c", "d"]


@st.composite
def propositional_rules(draw):
    head = draw(st.sampled_from(ATOMS + [None]))
    n_body = draw(st.integers(min_value=0, max_value=3))
    body = []
    used = set()
    for _ in range(n_body):
        name = draw(st.sampled_from(ATOMS))
        if name in used:
            continue
        used.add(name)
        positive = draw(st.booleans())
        body.append(Literal(Atom(name), positive))
    if head is None and not body:
        head = draw(st.sampled_from(ATOMS))
    return NormalRule(Atom(head) if head else None, body)


@st.composite
def propositional_programs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return Program([draw(propositional_rules()) for _ in range(n)])


def is_classical_model(program, model):
    for rule in program:
        body_true = all(
            (lit.atom in model) == lit.positive for lit in rule.body
        )
        if body_true:
            if rule.head is None or rule.head not in model:
                return False
    return True


def least_model_of_reduct(program, model):
    reduct = []
    for rule in program:
        if rule.head is None:
            continue
        ok = True
        positive = []
        for lit in rule.body:
            if lit.positive:
                positive.append(lit.atom)
            elif lit.atom in model:
                ok = False
                break
        if ok:
            reduct.append((rule.head, positive))
    least = set()
    changed = True
    while changed:
        changed = False
        for head, body in reduct:
            if head not in least and all(b in least for b in body):
                least.add(head)
                changed = True
    return least


class TestAnswerSetInvariants:
    @given(propositional_programs())
    @settings(max_examples=150, deadline=None)
    def test_answer_sets_are_classical_models(self, program):
        for model in solve(program):
            assert is_classical_model(program, set(model))

    @given(propositional_programs())
    @settings(max_examples=150, deadline=None)
    def test_answer_sets_are_stable(self, program):
        for model in solve(program):
            assert least_model_of_reduct(program, set(model)) == set(model)

    @given(propositional_programs())
    @settings(max_examples=100, deadline=None)
    def test_answer_sets_are_distinct(self, program):
        models = solve(program)
        assert len(models) == len(set(models))

    @given(propositional_programs(), st.sampled_from(ATOMS))
    @settings(max_examples=100, deadline=None)
    def test_adding_constraint_is_antimonotone(self, program, banned):
        before = set(solve(program))
        constrained = Program(list(program) + [NormalRule(None, [Literal(Atom(banned))])])
        after = set(solve(constrained))
        assert after <= before
        for model in after:
            assert Atom(banned) not in model

    @given(propositional_programs())
    @settings(max_examples=100, deadline=None)
    def test_adding_fact_keeps_satisfiability_of_definite_part(self, program):
        # A program consisting only of definite rules always has exactly
        # one answer set; adding negation is what creates 0 or many.
        definite = Program(
            [
                NormalRule(r.head, [l for l in r.body if l.positive])
                for r in program
                if r.head is not None
            ]
        )
        assert len(solve(definite)) == 1


class TestParserSolverAgreement:
    @given(propositional_programs())
    @settings(max_examples=100, deadline=None)
    def test_repr_roundtrip_preserves_answer_sets(self, program):
        text = "\n".join(repr(rule) for rule in program)
        direct = {frozenset(str(a) for a in m) for m in solve(program)}
        reparsed = {frozenset(str(a) for a in m) for m in solve_text(text)}
        assert direct == reparsed
