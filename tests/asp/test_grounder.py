"""Unit tests for the grounder."""

import pytest

from repro.asp.grounder import ground_program, match_atom
from repro.asp.parser import parse_atom, parse_program
from repro.errors import GroundingError, UnsafeRuleError


def ground(text: str):
    return ground_program(parse_program(text))


class TestPossibleAtoms:
    def test_facts_are_possible(self):
        result = ground("p(a). p(b).")
        assert parse_atom("p(a)") in result.atoms
        assert parse_atom("p(b)") in result.atoms

    def test_derived_atoms_are_possible(self):
        result = ground("p(a). q(X) :- p(X).")
        assert parse_atom("q(a)") in result.atoms

    def test_negation_ignored_for_possibility(self):
        result = ground("p(a). q(X) :- p(X), not r(X).")
        assert parse_atom("q(a)") in result.atoms

    def test_choice_elements_are_possible(self):
        result = ground("d(1). { pick(X) } :- d(X).")
        assert parse_atom("pick(1)") in result.atoms

    def test_transitive_closure(self):
        result = ground(
            "edge(1, 2). edge(2, 3)."
            "path(X, Y) :- edge(X, Y)."
            "path(X, Z) :- path(X, Y), edge(Y, Z)."
        )
        assert parse_atom("path(1, 3)") in result.atoms


class TestInstantiation:
    def test_rule_instances_per_binding(self):
        result = ground("p(1). p(2). q(X) :- p(X).")
        non_facts = [r for r in result.normal_rules if r.body]
        assert len(non_facts) == 2

    def test_failed_comparison_drops_instance(self):
        result = ground("p(1). p(5). q(X) :- p(X), X < 3.")
        heads = {r.head for r in result.normal_rules if r.head is not None}
        assert parse_atom("q(1)") in heads
        assert parse_atom("q(5)") not in heads

    def test_impossible_negative_literal_dropped(self):
        result = ground("p(a). q(X) :- p(X), not never(X).")
        rule = next(r for r in result.normal_rules if r.head == parse_atom("q(a)"))
        assert len(rule.body) == 1  # the `not never(a)` literal was dropped

    def test_possible_negative_literal_kept(self):
        result = ground("p(a). r(a). q(X) :- p(X), not r(X).")
        rule = next(r for r in result.normal_rules if r.head == parse_atom("q(a)"))
        assert len(rule.body) == 2

    def test_arithmetic_evaluated_in_head(self):
        result = ground("p(1). q(Y) :- p(X), Y = X + 1.")
        assert parse_atom("q(2)") in result.atoms

    def test_constraints_instantiated(self):
        result = ground("p(1). p(2). :- p(X), X > 1.")
        constraints = [r for r in result.normal_rules if r.is_constraint]
        assert len(constraints) == 1

    def test_annotations_respected_in_matching(self):
        result = ground("a@1. b :- a@1. c :- a@2.")
        heads = {r.head for r in result.normal_rules}
        assert parse_atom("b") in heads
        assert parse_atom("c") not in heads

    def test_duplicate_instances_deduplicated(self):
        result = ground("p(a). q :- p(a). q :- p(a).")
        with_body = [r for r in result.normal_rules if r.body]
        assert len(with_body) == 1


class TestSafety:
    def test_unsafe_fact_rejected(self):
        with pytest.raises(UnsafeRuleError):
            ground("p(X).")

    def test_unsafe_negative_only_rejected(self):
        with pytest.raises(UnsafeRuleError):
            ground("p :- not q(X).")

    def test_assignment_makes_variable_safe(self):
        result = ground("p(1). q(Y) :- p(X), Y = X * 2.")
        assert parse_atom("q(2)") in result.atoms

    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(UnsafeRuleError):
            ground("q(Y) :- p(X). p(1).")

    def test_atom_bomb_guard(self):
        text = (
            "n(1..9). p(A, B, C) :- n(A), n(B), n(C)."
        )
        with pytest.raises(GroundingError):
            ground_program(parse_program(text), max_atoms=100)


class TestMatching:
    def test_match_binds_variables(self):
        theta = match_atom(parse_atom("p(X, a)"), parse_atom("p(1, a)"), {})
        assert theta == {"X": parse_atom("p(1)").args[0]}

    def test_match_respects_existing_bindings(self):
        pattern = parse_atom("p(X, X)")
        assert match_atom(pattern, parse_atom("p(1, 1)"), {}) is not None
        assert match_atom(pattern, parse_atom("p(1, 2)"), {}) is None

    def test_match_fails_on_predicate_mismatch(self):
        assert match_atom(parse_atom("p(X)"), parse_atom("q(1)"), {}) is None

    def test_match_fails_on_annotation_mismatch(self):
        assert match_atom(parse_atom("p(X)@1"), parse_atom("p(1)@2"), {}) is None

    def test_match_nested_function(self):
        theta = match_atom(parse_atom("p(f(X))"), parse_atom("p(f(q))"), {})
        assert theta is not None
        assert repr(theta["X"]) == "q"
