"""Resource-governed solving: budgets through the ASP pipeline."""

import pytest

from repro.asp import solve_text
from repro.asp.grounder import ground_program
from repro.asp.parser import parse_program
from repro.asp.solver import AnswerSetSolver, solve
from repro.errors import BudgetExceededError, SolveTimeoutError
from repro.runtime.budget import Budget, budget_scope

# every subset of 14 atoms: trivial to ground, 2^14 answer sets to
# enumerate — a hard instance for any small step budget
HARD = " ".join("{ a%d }." % i for i in range(14))


class TestExplicitBudget:
    def test_budget_exhausts_mid_solve_with_steps_attached(self):
        with pytest.raises(BudgetExceededError) as err:
            solve_text(HARD, budget=Budget(max_steps=2_000))
        assert err.value.steps_used >= 2_000
        assert err.value.max_steps == 2_000

    def test_generous_budget_solves_and_reports_usage(self):
        budget = Budget(max_steps=50_000_000)
        models = solve_text("a :- not b. b :- not a.", budget=budget)
        assert len(models) == 2
        assert budget.steps_used > 0

    def test_budget_bounds_grounding_too(self):
        text = (
            "num(1). num(2). num(3). num(4). num(5). num(6). num(7). num(8)."
            "pair(X, Y) :- num(X), num(Y)."
            "quad(A, B, C, D) :- pair(A, B), pair(C, D)."
        )
        with pytest.raises(BudgetExceededError):
            ground_program(parse_program(text), budget=Budget(max_steps=500))

    def test_wall_clock_deadline_raises_timeout(self):
        ticking = iter(range(100_000))

        def clock():
            # each consultation advances "time" one second
            return float(next(ticking))

        budget = Budget(wall_clock=0.5, clock=clock)
        with pytest.raises(SolveTimeoutError):
            solve_text(HARD, budget=budget)


class TestAmbientBudget:
    def test_scope_bounds_nested_solve(self):
        with budget_scope(Budget(max_steps=2_000)):
            with pytest.raises(BudgetExceededError):
                solve_text(HARD)

    def test_explicit_budget_wins_over_ambient(self):
        with budget_scope(Budget(max_steps=1)):
            # the explicit (generous) budget is used, not the ambient one
            models = solve_text("a.", budget=Budget(max_steps=100_000))
        assert len(models) == 1

    def test_no_budget_solves_unbounded(self):
        assert len(solve_text("{ a } . { b }.")) == 4


class TestSolverStepLimit:
    def test_max_steps_exhaustion_is_typed(self):
        ground = ground_program(parse_program(HARD))
        solver = AnswerSetSolver(ground, max_steps=1_000)
        with pytest.raises(BudgetExceededError) as err:
            solver.solve()
        assert err.value.steps_used >= 1_000
        assert err.value.max_steps == 1_000
        assert solver.steps_used >= 1_000

    def test_default_step_limit_is_runaway_guard(self):
        ground = ground_program(parse_program("a."))
        solver = AnswerSetSolver(ground)
        assert solver._max_steps == 50_000_000
