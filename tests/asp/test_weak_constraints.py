"""Unit tests for weak constraints and optimal solving."""

import pytest

from repro.asp import (
    WeakConstraint,
    parse_program,
    parse_rule,
    solve,
    solve_optimal,
)
from repro.asp.grounder import ground_program
from repro.asp.solver import cost_of


class TestParsing:
    def test_weak_constraint_with_weight(self):
        rule = parse_rule(":~ a. [3]")
        assert isinstance(rule, WeakConstraint)
        assert repr(rule.weight) == "3"
        assert rule.priority == 0

    def test_weight_and_priority(self):
        rule = parse_rule(":~ a, not b. [2@5]")
        assert rule.priority == 5
        assert len(rule.body) == 2

    def test_variable_weight(self):
        rule = parse_rule(":~ cost(X). [X]")
        assert repr(rule.weight) == "X"

    def test_repr_roundtrip(self):
        rule = parse_rule(":~ a, b. [4@2]")
        assert parse_rule(repr(rule)) == rule


class TestGrounding:
    def test_instances_per_binding(self):
        program = parse_program("p(1). p(2). :~ p(X). [X]")
        ground = ground_program(program)
        assert len(ground.weak_constraints) == 2
        weights = sorted(repr(w.weight) for w in ground.weak_constraints)
        assert weights == ["1", "2"]

    def test_weak_constraints_do_not_affect_answer_sets(self):
        with_weak = solve(parse_program("{ a }. :~ a. [10]"))
        without = solve(parse_program("{ a }."))
        assert {frozenset(map(str, m)) for m in with_weak} == {
            frozenset(map(str, m)) for m in without
        }

    def test_duplicate_instances_deduplicated(self):
        program = parse_program("a. :~ a. [1] :~ a. [1]")
        ground = ground_program(program)
        assert len(ground.weak_constraints) == 1


class TestOptimization:
    def test_minimal_cost_model_selected(self):
        models, cost = solve_optimal(
            parse_program("1 { a ; b } 1. :~ a. [3] :~ b. [1]")
        )
        assert len(models) == 1
        assert {str(atom) for atom in models[0]} == {"b"}
        assert cost == ((0, 1),)

    def test_weighted_route_choice(self):
        models, cost = solve_optimal(
            parse_program(
                "1 { route(main) ; route(river) } 1."
                "risk(main, 5). risk(river, 2)."
                ":~ route(R), risk(R, W). [W]"
            )
        )
        assert any(str(a) == "route(river)" for a in models[0])
        assert cost == ((0, 2),)

    def test_priority_levels_are_lexicographic(self):
        # avoiding `a` (priority 2) matters more than any priority-1 cost
        models, cost = solve_optimal(
            parse_program("{ a ; b }. :~ a. [1@2] :~ not b. [5@1]")
        )
        assert len(models) == 1
        assert {str(atom) for atom in models[0]} == {"b"}
        assert cost == ((2, 0), (1, 0))

    def test_ties_return_all_optima(self):
        models, cost = solve_optimal(
            parse_program("1 { a ; b } 1. :~ a. [2] :~ b. [2]")
        )
        assert len(models) == 2
        assert cost == ((0, 2),)

    def test_no_weak_constraints_all_optimal(self):
        models, cost = solve_optimal(parse_program("{ a }."))
        assert len(models) == 2
        assert cost == ()

    def test_unsatisfiable_program(self):
        models, cost = solve_optimal(parse_program("a. :- a."))
        assert models == [] and cost == ()

    def test_cost_of_direct(self):
        program = parse_program("a. b. :~ a. [1@1] :~ not c. [2@1]")
        ground = ground_program(program)
        (model,) = solve(program)
        assert cost_of(ground, model) == ((1, 3),)
