"""Unit tests for the ASP parser."""

import pytest

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.parser import parse_atom, parse_program, parse_rule, parse_term
from repro.asp.rules import ChoiceRule, NormalRule
from repro.asp.terms import ArithTerm, Constant, Function, Integer, Variable
from repro.errors import ASPSyntaxError


class TestTerms:
    def test_integer(self):
        assert parse_term("42") == Integer(42)

    def test_negative_integer(self):
        assert parse_term("-7") == Integer(-7)

    def test_constant(self):
        assert parse_term("alice") == Constant("alice")

    def test_string_constant(self):
        assert parse_term('"hello world"') == Constant('"hello world"')

    def test_variable(self):
        assert parse_term("Subject") == Variable("Subject")

    def test_function(self):
        assert parse_term("f(X, a)") == Function("f", [Variable("X"), Constant("a")])

    def test_nested_function(self):
        assert parse_term("f(g(1))") == Function("f", [Function("g", [Integer(1)])])

    def test_tuple(self):
        term = parse_term("(a, b)")
        assert isinstance(term, Function)
        assert term.functor == ""
        assert term.args == (Constant("a"), Constant("b"))

    def test_parenthesized_single_term_unwraps(self):
        assert parse_term("(a)") == Constant("a")

    def test_arithmetic_precedence(self):
        term = parse_term("1 + 2 * 3")
        assert isinstance(term, ArithTerm)
        assert term.op == "+"
        assert term.evaluate() == Integer(7)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ASPSyntaxError):
            parse_term("a b")


class TestAtoms:
    def test_propositional_atom(self):
        assert parse_atom("rain") == Atom("rain")

    def test_atom_with_args(self):
        assert parse_atom("p(X, 1)") == Atom("p", [Variable("X"), Integer(1)])

    def test_annotated_atom(self):
        atom = parse_atom("a(1)@2")
        assert atom.annotation == (2,)
        assert atom.args == (Integer(1),)

    def test_trace_annotation(self):
        atom = parse_atom("a@(1, 2, 3)")
        assert atom.annotation == (1, 2, 3)

    def test_annotation_part_of_identity(self):
        assert parse_atom("a@2") != parse_atom("a@3")
        assert parse_atom("a@2") != parse_atom("a")

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ASPSyntaxError):
            parse_atom("Pred(x)")


class TestRules:
    def test_fact(self):
        rule = parse_rule("p(a).")
        assert isinstance(rule, NormalRule)
        assert rule.is_fact
        assert rule.head == Atom("p", [Constant("a")])

    def test_normal_rule(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        assert rule.head == Atom("p", [Variable("X")])
        assert rule.body[0] == Literal(Atom("q", [Variable("X")]), True)
        assert rule.body[1] == Literal(Atom("r", [Variable("X")]), False)

    def test_constraint(self):
        rule = parse_rule(":- a, b.")
        assert rule.is_constraint
        assert len(rule.body) == 2

    def test_comparison_in_body(self):
        rule = parse_rule("p(X) :- q(X), X < 3.")
        comp = rule.body[1]
        assert isinstance(comp, Comparison)
        assert comp.op == "<"

    def test_assignment_comparison(self):
        rule = parse_rule("p(Y) :- q(X), Y = X + 1.")
        comp = rule.body[1]
        assert isinstance(comp, Comparison)
        assert comp.op == "=="

    def test_neq_comparison(self):
        rule = parse_rule(":- p(X), p(Y), X != Y.")
        assert rule.body[2].op == "!="

    def test_choice_rule_with_bounds(self):
        rule = parse_rule("1 { a ; b ; c } 2 :- d.")
        assert isinstance(rule, ChoiceRule)
        assert rule.lower == 1
        assert rule.upper == 2
        assert len(rule.elements) == 3
        assert len(rule.body) == 1

    def test_choice_rule_unbounded(self):
        rule = parse_rule("{ a ; b }.")
        assert rule.lower is None and rule.upper is None

    def test_missing_dot_rejected(self):
        with pytest.raises(ASPSyntaxError):
            parse_rule("p(a)")


class TestPrograms:
    def test_multi_rule_program(self):
        program = parse_program("a. b :- a. :- c.")
        assert len(program) == 3

    def test_comments_ignored(self):
        program = parse_program("a. % this is a comment\nb.")
        assert len(program) == 2

    def test_interval_fact_expansion(self):
        program = parse_program("p(1..3).")
        heads = {rule.head for rule in program}
        assert heads == {Atom("p", [Integer(i)]) for i in (1, 2, 3)}

    def test_interval_in_multi_arg_fact(self):
        program = parse_program("edge(1..2, 7).")
        assert len(program) == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_anonymous_variables_are_fresh(self):
        rule = parse_rule("p :- q(_, _).")
        body_atom = rule.body[0].atom
        assert body_atom.args[0] != body_atom.args[1]

    def test_syntax_error_has_location(self):
        with pytest.raises(ASPSyntaxError) as err:
            parse_program("a.\n?b.")
        assert err.value.line == 2

    def test_roundtrip_through_repr(self):
        source = "p(X) :- q(X), not r(X), X < 3."
        rule = parse_rule(source)
        assert parse_rule(repr(rule)) == rule
