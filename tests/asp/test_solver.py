"""Unit tests for the answer-set solver.

Each expected result below is the textbook answer-set semantics; several
cases (even loops, odd loops, self-support) are the classic examples
that distinguish answer sets from classical or supported models.
"""

import pytest

from repro.asp import solve_text
from repro.asp.parser import parse_atom


def answer_sets(text):
    """Solve and normalize to a sorted list of sorted atom-name lists."""
    return sorted(sorted(str(a) for a in m) for m in solve_text(text))


class TestDefiniteProgram:
    def test_facts_only(self):
        assert answer_sets("a. b.") == [["a", "b"]]

    def test_chaining(self):
        assert answer_sets("a. b :- a. c :- b.") == [["a", "b", "c"]]

    def test_empty_program_has_empty_answer_set(self):
        assert answer_sets("") == [[]]

    def test_transitive_closure(self):
        models = answer_sets(
            "edge(1, 2). edge(2, 3). path(X, Y) :- edge(X, Y)."
            "path(X, Z) :- path(X, Y), edge(Y, Z)."
        )
        assert len(models) == 1
        assert "path(1, 3)" in models[0]


class TestNegation:
    def test_even_loop_two_answer_sets(self):
        assert answer_sets("a :- not b. b :- not a.") == [["a"], ["b"]]

    def test_odd_loop_no_answer_set(self):
        assert answer_sets("a :- not a.") == []

    def test_stratified_negation(self):
        assert answer_sets("a. c :- not b.") == [["a", "c"]]

    def test_negation_blocked_by_fact(self):
        assert answer_sets("b. c :- not b.") == [["b"]]


class TestStability:
    def test_self_support_rejected(self):
        # {a} is a supported model of `a :- a.` but not stable.
        assert answer_sets("a :- a.") == [[]]

    def test_mutual_support_rejected(self):
        assert answer_sets("a :- b. b :- a.") == [[]]

    def test_unfounded_loop_under_negation(self):
        # a :- not b.  b :- a.  — {a, b} would need a, but a requires not b.
        assert answer_sets("a :- not b. b :- a.") == []

    def test_loop_with_external_support_accepted(self):
        models = answer_sets("a :- b. b :- a. b :- c. c.")
        assert models == [["a", "b", "c"]]


class TestConstraints:
    def test_constraint_eliminates_model(self):
        assert answer_sets("a :- not b. b :- not a. :- a.") == [["b"]]

    def test_unconditional_constraint_violation(self):
        assert answer_sets("a. :- a.") == []

    def test_constraint_on_pair(self):
        models = answer_sets("{ a ; b }. :- a, b.")
        assert models == [[], ["a"], ["b"]]


class TestChoiceRules:
    def test_free_choice_powerset(self):
        assert answer_sets("{ a ; b }.") == [[], ["a"], ["a", "b"], ["b"]]

    def test_lower_bound(self):
        assert answer_sets("1 { a ; b }.") == [["a"], ["a", "b"], ["b"]]

    def test_exact_cardinality(self):
        assert answer_sets("1 { a ; b } 1.") == [["a"], ["b"]]

    def test_conditional_choice(self):
        models = answer_sets("{ a } :- c.")
        assert models == [[]]
        models = answer_sets("c. { a } :- c.")
        assert models == [["a", "c"], ["c"]]

    def test_choice_with_variables(self):
        models = answer_sets("d(1..2). 1 { p(X) } 1 :- d(X).")
        # each d(X) triggers its own singleton choice with bounds 1..1
        assert models == [["d(1)", "d(2)", "p(1)", "p(2)"]]

    def test_choice_upper_bound_counts_external_support(self):
        # `a` is forced by a fact; the bound counts it.
        assert answer_sets("a. { a ; b } 1.") == [["a"]]


class TestAnnotatedAtoms:
    def test_annotated_atoms_distinct(self):
        models = answer_sets("a@1. b :- a@2.")
        assert models == [["a@1"]]

    def test_annotated_inference(self):
        models = answer_sets("a@(1, 2). b@1 :- a@(1, 2).")
        assert models == [["a@(1, 2)", "b@1"]]


class TestMaxModels:
    def test_max_models_limits_enumeration(self):
        models = solve_text("{ a ; b ; c }.", max_models=3)
        assert len(models) == 3

    def test_all_models_by_default(self):
        assert len(solve_text("{ a ; b ; c }.")) == 8


class TestAuxiliaryProjection:
    def test_choice_aux_atoms_hidden(self):
        for model in solve_text("{ a }."):
            assert all(not str(atom).startswith("__") for atom in model)


class TestLargerPrograms:
    def test_graph_coloring(self):
        text = (
            "node(1..3). edge(1, 2). edge(2, 3). edge(1, 3)."
            "color(r). color(g). color(b)."
            "1 { assign(N, C) : color(C) } 1 :- node(N)."
        )
        # conditional elements unsupported: expand manually
        text = (
            "node(1..3). edge(1, 2). edge(2, 3). edge(1, 3)."
            "1 { assign(N, r) ; assign(N, g) ; assign(N, b) } 1 :- node(N)."
            ":- edge(X, Y), assign(X, C), assign(Y, C)."
        )
        models = solve_text(text)
        assert len(models) == 6  # 3! proper colorings of a triangle

    def test_hamiltonian_style_reachability(self):
        text = (
            "node(1..3). edge(1, 2). edge(2, 3). edge(3, 1)."
            "reach(1). reach(Y) :- reach(X), edge(X, Y)."
            ":- node(N), not reach(N)."
        )
        models = solve_text(text)
        assert len(models) == 1
