"""Source spans on parsed rules/atoms, and the lint <-> grounder safety
differential: for every safety edge case, ``lint_program`` must report
ASP001 exactly when grounding raises :class:`UnsafeRuleError`, and both
must name the same location.
"""

import pytest

from repro.analysis.asp_lint import lint_program
from repro.asp.grounder import binding_schedule, ground_program
from repro.asp.parser import parse_program, parse_rule
from repro.errors import Span, UnsafeRuleError


class TestParserSpans:
    def test_rule_span_covers_statement(self):
        program = parse_program("q(1).\np(X) :- q(X).\n")
        rule = program.rules[1]
        assert rule.span is not None
        assert rule.span.line == 2
        assert rule.span.col == 1

    def test_atom_span_points_at_predicate(self):
        program = parse_program("p(X) :- longer_name(X).")
        rule = program.rules[0]
        assert rule.head.span.col == 1
        body_atom = rule.body[0].atom
        assert body_atom.span.line == 1
        assert body_atom.span.col == 9
        assert body_atom.span.end_col == 9 + len("longer_name")

    def test_span_survives_substitution(self):
        rule = parse_rule("p(X) :- q(X).")
        ground = rule.substitute({"X": list(parse_program("q(1).").rules)[0].head.args[0]})
        assert ground.span == rule.span
        assert ground.head.span == rule.head.span

    def test_span_not_part_of_equality(self):
        a = parse_program("p :- q.").rules[0]
        b = parse_program("\n\np :- q.").rules[0]
        assert a.span != b.span
        assert a == b
        assert hash(a) == hash(b)

    def test_interval_fact_atoms_inherit_span(self):
        program = parse_program("num(1..3).")
        assert len(program.rules) == 3
        assert {r.head.span.line for r in program.rules} == {1}


class TestSpanType:
    def test_defaults(self):
        span = Span(5, 3)
        assert (span.end_line, span.end_col) == (5, 3)

    def test_round_trip(self):
        span = Span(1, 2, 3, 4)
        assert Span.from_dict(span.as_dict()) == span


def lint_unsafe(text):
    return [d for d in lint_program(parse_program(text)) if d.code == "ASP001"]


def grounder_raises(text):
    try:
        ground_program(parse_program(text))
        return None
    except UnsafeRuleError as error:
        return error


# One case per grounder safety edge: (source text, is_safe)
SAFETY_CASES = [
    # plain positive binding
    ("q(1). p(X) :- q(X).", True),
    # head variable bound nowhere
    ("q(1). p(X, Y) :- q(X).", False),
    # negation-only variable
    ("q(1). p :- not q(X).", False),
    # comparison-builtin can compare but not bind
    ("q(1). p(X) :- q(X), X < 2.", True),
    ("q(1). p(Y) :- q(X), Y < X.", False),
    # '=' assignment binds left-hand side from a bound right-hand side
    ("q(1). p(Y) :- q(X), Y = X + 1.", True),
    # ...but not from an unbound one (arithmetic-only binding chain)
    ("q(1). p(Y) :- Y = Z + 1, q(X).", False),
    # chained assignments bind transitively regardless of body order
    ("q(1). p(Z) :- Z = Y + 1, Y = X + 1, q(X).", True),
    # interval facts are ground and safe
    ("num(1..3). p(X) :- num(X).", True),
    # variable only in a weak-constraint body must still be bound
    ("q(1). :~ q(X). [1@1]", True),
    (":~ not q(X). [1@1]", False),
    # choice rule: element variables must be bound by the body
    ("q(1). 1 { pick(X); skip(X) } 1 :- q(X).", True),
    ("1 { pick(X) } 1.", False),
]


class TestLintGrounderAgreement:
    @pytest.mark.parametrize("text,is_safe", SAFETY_CASES)
    def test_one_to_one(self, text, is_safe):
        """ASP001 fires exactly when the grounder raises UnsafeRuleError."""
        findings = lint_unsafe(text)
        error = grounder_raises(text)
        if is_safe:
            assert findings == []
            assert error is None
        else:
            assert len(findings) == 1
            assert error is not None

    @pytest.mark.parametrize(
        "text,is_safe", [case for case in SAFETY_CASES if not case[1]]
    )
    def test_same_location_and_variables(self, text, is_safe):
        finding = lint_unsafe(text)[0]
        error = grounder_raises(text)
        assert error.span == finding.span
        for variable in error.variables:
            assert variable in finding.message

    def test_error_carries_span_and_variables(self):
        error = grounder_raises("q(1).\np(Col) :- not q(Col).")
        assert error.span.line == 2
        assert error.variables == ("Col",)
        assert "line 2" in str(error)


class TestBindingSchedule:
    def test_safe_rule_has_empty_unbound(self):
        rule = parse_rule("p(X) :- q(X).")
        ordered, unbound = binding_schedule(rule)
        assert unbound == set()
        assert len(ordered) == 1

    def test_unsafe_rule_reports_variables(self):
        rule = parse_rule("p(X, Y) :- q(X), not r(Z).")
        __, unbound = binding_schedule(rule)
        assert unbound == {"Y", "Z"}

    def test_schedule_orders_binders_first(self):
        rule = parse_rule("p(Y) :- Y = X + 1, q(X).")
        ordered, unbound = binding_schedule(rule)
        assert unbound == set()
        # the positive literal must be scheduled before the assignment
        from repro.asp.atoms import Literal

        assert isinstance(ordered[0], Literal)
