"""Cross-validation of the solver against a brute-force oracle.

For small propositional programs, the set of answer sets can be
computed directly from the definition: enumerate every subset of the
atoms, build the Gelfond–Lifschitz reduct, take its least model, and
keep the subsets that are their own reduct's least model (and violate
no constraint).  The production solver (propagation + branching +
verification) must agree exactly — this exercises every propagation
rule against ground truth.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.atoms import Atom, Literal
from repro.asp.rules import NormalRule, Program
from repro.asp.solver import solve

ATOMS = [Atom(name) for name in ("a", "b", "c")]


def brute_force_answer_sets(program):
    atoms = set()
    for rule in program:
        if rule.head is not None:
            atoms.add(rule.head)
        for literal in rule.body:
            atoms.add(literal.atom)
    answer_sets = []
    for size in range(len(atoms) + 1):
        for candidate in itertools.combinations(sorted(atoms, key=repr), size):
            model = set(candidate)
            # constraints: no rule with empty head may fire
            violated = False
            for rule in program:
                body_true = all(
                    (lit.atom in model) == lit.positive for lit in rule.body
                )
                if body_true and rule.head is None:
                    violated = True
                    break
            if violated:
                continue
            # reduct least model
            least = set()
            changed = True
            while changed:
                changed = False
                for rule in program:
                    if rule.head is None or rule.head in least:
                        continue
                    applicable = True
                    for lit in rule.body:
                        if lit.positive:
                            if lit.atom not in least:
                                applicable = False
                                break
                        elif lit.atom in model:
                            applicable = False
                            break
                    if applicable:
                        least.add(rule.head)
                        changed = True
            if least == model:
                answer_sets.append(frozenset(model))
    return set(answer_sets)


@st.composite
def programs(draw):
    n_rules = draw(st.integers(min_value=1, max_value=7))
    rules = []
    for __ in range(n_rules):
        head = draw(st.sampled_from(ATOMS + [None]))
        body = []
        used = set()
        for __lit in range(draw(st.integers(min_value=0, max_value=3))):
            atom = draw(st.sampled_from(ATOMS))
            if atom in used:
                continue
            used.add(atom)
            body.append(Literal(atom, draw(st.booleans())))
        if head is None and not body:
            continue
        rules.append(NormalRule(head, body))
    if not rules:
        rules = [NormalRule(ATOMS[0], [])]
    return Program(rules)


class TestSolverAgainstBruteForce:
    @given(programs())
    @settings(max_examples=300, deadline=None)
    def test_exact_agreement(self, program):
        expected = brute_force_answer_sets(program)
        actual = {frozenset(model) for model in solve(program)}
        assert actual == expected

    def test_known_hard_cases(self):
        cases = [
            "a :- not b. b :- not a. c :- a. c :- b.",
            "a :- b. b :- not c. c :- not b. :- a, c.",
            "a :- not b. b :- not c. c :- not a.",  # 3-cycle: no answer set
            "a :- b, not c. b :- a. b :- not c. c :- not b.",
        ]
        from repro.asp import parse_program

        for text in cases:
            program = parse_program(text)
            expected = brute_force_answer_sets(program)
            actual = {frozenset(m) for m in solve(program)}
            assert actual == expected, text
