"""Unit tests for ASP term representation."""

import pytest

from repro.asp.terms import (
    ArithTerm,
    Constant,
    Function,
    Integer,
    Variable,
    make_tuple,
    term_sort_key,
)
from repro.errors import GroundingError


class TestGroundness:
    def test_constant_is_ground(self):
        assert Constant("a").is_ground()

    def test_integer_is_ground(self):
        assert Integer(3).is_ground()

    def test_variable_not_ground(self):
        assert not Variable("X").is_ground()

    def test_function_groundness_follows_args(self):
        assert Function("f", [Constant("a")]).is_ground()
        assert not Function("f", [Variable("X")]).is_ground()

    def test_nested_function_groundness(self):
        inner = Function("g", [Variable("Y")])
        assert not Function("f", [Constant("a"), inner]).is_ground()


class TestEqualityAndHashing:
    def test_constants_equal_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_constant_not_equal_to_integer(self):
        assert Constant("1") != Integer(1)

    def test_functions_equal_structurally(self):
        f1 = Function("f", [Integer(1), Constant("a")])
        f2 = Function("f", [Integer(1), Constant("a")])
        assert f1 == f2
        assert hash(f1) == hash(f2)

    def test_hash_distinguishes_kinds(self):
        assert hash(Constant("x")) != hash(Variable("x"))

    def test_terms_usable_in_sets(self):
        terms = {Constant("a"), Constant("a"), Integer(1), Variable("X")}
        assert len(terms) == 3


class TestSubstitution:
    def test_variable_substitution(self):
        assert Variable("X").substitute({"X": Integer(5)}) == Integer(5)

    def test_unbound_variable_unchanged(self):
        assert Variable("X").substitute({"Y": Integer(5)}) == Variable("X")

    def test_function_substitution_recurses(self):
        term = Function("f", [Variable("X"), Function("g", [Variable("X")])])
        result = term.substitute({"X": Constant("a")})
        assert result == Function("f", [Constant("a"), Function("g", [Constant("a")])])

    def test_substitution_does_not_mutate(self):
        term = Function("f", [Variable("X")])
        term.substitute({"X": Constant("a")})
        assert term == Function("f", [Variable("X")])


class TestArithmetic:
    @pytest.mark.parametrize(
        "op,expected",
        [("+", 7), ("-", 3), ("*", 10), ("/", 2), ("\\", 1)],
    )
    def test_binary_ops(self, op, expected):
        term = ArithTerm(op, Integer(5), Integer(2))
        assert term.evaluate() == Integer(expected)

    def test_nested_arithmetic(self):
        term = ArithTerm("+", Integer(1), ArithTerm("*", Integer(2), Integer(3)))
        assert term.evaluate() == Integer(7)

    def test_arithmetic_on_constant_raises(self):
        with pytest.raises(GroundingError):
            ArithTerm("+", Constant("a"), Integer(1)).evaluate()

    def test_division_by_zero_raises(self):
        with pytest.raises(GroundingError):
            ArithTerm("/", Integer(1), Integer(0)).evaluate()

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            ArithTerm("^", Integer(1), Integer(2))

    def test_substitute_then_evaluate(self):
        term = ArithTerm("+", Variable("X"), Integer(1))
        assert term.substitute({"X": Integer(4)}).evaluate() == Integer(5)


class TestOrdering:
    def test_integers_before_constants(self):
        assert term_sort_key(Integer(99)) < term_sort_key(Constant("a"))

    def test_constants_alphabetical(self):
        assert term_sort_key(Constant("a")) < term_sort_key(Constant("b"))

    def test_functions_by_arity_then_functor(self):
        f1 = Function("f", [Integer(1)])
        g2 = Function("a", [Integer(1), Integer(2)])
        assert term_sort_key(f1) < term_sort_key(g2)

    def test_integer_order_by_value(self):
        assert term_sort_key(Integer(-5)) < term_sort_key(Integer(3))


class TestTuples:
    def test_tuple_repr(self):
        assert repr(make_tuple([Constant("a"), Integer(1)])) == "(a, 1)"

    def test_tuple_equality(self):
        assert make_tuple([Integer(1)]) == make_tuple([Integer(1)])


class TestRepr:
    def test_function_repr(self):
        term = Function("f", [Variable("X"), Constant("a")])
        assert repr(term) == "f(X, a)"

    def test_negative_integer_repr(self):
        assert repr(Integer(-3)) == "-3"
