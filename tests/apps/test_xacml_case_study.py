"""Tests for the XACML case study (paper Section IV.C / Figure 3)."""

import pytest

from repro.apps.xacml_case_study import (
    LearnedPolicyModel,
    XacmlLearningPipeline,
    semantic_accuracy,
)
from repro.datasets import (
    default_ground_truth,
    inject_flips,
    inject_not_applicable,
    per_user_ground_truth,
    sample_log,
)
from repro.policy import Decision, Request


class TestCleanLearning:
    """Figure 3a: correctly learned policies."""

    @pytest.fixture(scope="class")
    def model(self):
        log = sample_log(default_ground_truth(), 60, seed=1)
        return XacmlLearningPipeline().learn(log)

    def test_exact_rule_recovery(self, model):
        assert model.rule_texts() == [
            "decision(permit) :- role(dba), rtype(db).",
            "decision(permit) :- role(dev), action(read).",
        ]

    def test_full_semantic_accuracy(self, model):
        assert semantic_accuracy(model, default_ground_truth()) == 1.0

    def test_decide_interface(self, model):
        permit = Request(
            {
                "subject": {"id": "u1", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        assert model.decide(permit) is Decision.PERMIT


class TestOverfitting:
    """Figure 3b Policy 1: narrow logs induce non-transferable policies;
    the background-knowledge/statistics mitigation restores role-level
    generalization."""

    def test_narrow_log_can_learn_user_specific_policy(self):
        log = sample_log(default_ground_truth(), 40, seed=2, users=("u1", "u5"))
        plain = XacmlLearningPipeline().learn(log)
        mitigated = XacmlLearningPipeline(prefer_general=True).learn(log)
        plain_acc = semantic_accuracy(plain, default_ground_truth())
        mitigated_acc = semantic_accuracy(mitigated, default_ground_truth())
        assert mitigated_acc >= plain_acc
        # role-based rules transfer; the mitigation must not mention users
        assert all("user(" not in t for t in mitigated.rule_texts())


class TestUnsafeGeneralization:
    """Figure 3b Policy 2: per-user grants over-generalize to the whole
    role without the target-based restriction."""

    def test_restriction_prevents_role_generalization(self):
        gt = per_user_ground_truth(["u1"])
        log = sample_log(gt, 50, seed=3, users=("u1", "u2"))
        unrestricted = XacmlLearningPipeline(max_body=3).learn(log)
        restricted = XacmlLearningPipeline(max_body=3, require_target=True).learn(log)
        # every learned rule in the restricted run pins a user
        assert all("user(" in t for t in restricted.rule_texts())
        sibling = Request(
            {
                "subject": {"id": "u2", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        # the restricted model never leaks the grant to u2
        assert restricted.decide(sibling) is Decision.DENY

    def test_restricted_model_still_grants_u1(self):
        gt = per_user_ground_truth(["u1"])
        log = sample_log(gt, 50, seed=3, users=("u1", "u2"))
        restricted = XacmlLearningPipeline(max_body=3, require_target=True).learn(log)
        granted = Request(
            {
                "subject": {"id": "u1", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        assert restricted.decide(granted) is Decision.PERMIT


class TestUnsafeGeneralizationWithoutCounterEvidence:
    def test_plain_learner_can_leak_grant_to_role(self):
        """The paper's exact setup: many DBAs, but the log shows only one
        being granted — without the restriction the grant can generalize."""
        gt = per_user_ground_truth(["u1"])
        log = sample_log(gt, 50, seed=3, users=("u1",))
        plain = XacmlLearningPipeline(max_body=3).learn(log)
        restricted = XacmlLearningPipeline(max_body=3, require_target=True).learn(log)
        sibling = Request(
            {
                "subject": {"id": "u2", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        # the restricted model never leaks; the plain one is allowed to
        # (whether it does depends on tie-breaking, so only the safe
        # direction is asserted)
        assert restricted.decide(sibling) is Decision.DENY


class TestStrictLearnerCollapse:
    def test_strict_learner_fails_closed_on_contradictions(self):
        gt = default_ground_truth()
        log = sample_log(gt, 40, seed=5)
        noisy = log + inject_flips(log, rate=1.0, seed=5)  # total contradiction
        model = XacmlLearningPipeline(strict=True).learn(noisy)
        assert model.rules == []  # deny-by-default remains

    def test_strict_learner_fine_on_clean_data(self):
        gt = default_ground_truth()
        model = XacmlLearningPipeline(strict=True).learn(sample_log(gt, 40, seed=5))
        assert semantic_accuracy(model, gt) == 1.0


class TestNoisyData:
    """Figure 3b Policy 3 + the filtering mitigation."""

    def test_filtering_restores_accuracy_under_flips(self):
        gt = default_ground_truth()
        log = inject_flips(sample_log(gt, 60, seed=4), rate=0.15, seed=4)
        # duplicate entries give the majority filter signal
        log = log + sample_log(gt, 60, seed=5) + sample_log(gt, 60, seed=6)
        filtered = XacmlLearningPipeline(filter_noise=True).learn(log)
        assert semantic_accuracy(filtered, gt) == 1.0

    def test_not_applicable_learnable_as_failure_mode(self):
        from repro.datasets import mark_gaps_not_applicable

        gt = default_ground_truth()
        # a realistic PDP log: gap requests carry NotApplicable
        log = mark_gaps_not_applicable(sample_log(gt, 40, seed=7), gt)
        model = XacmlLearningPipeline(
            allow_irrelevant_head=True, max_violations=0
        ).learn(log)
        # the failure mode: rules concluding not_applicable get learned
        assert any("not_applicable" in t for t in model.rule_texts())

    def test_filtering_removes_irrelevant_responses(self):
        gt = default_ground_truth()
        log = inject_not_applicable(sample_log(gt, 60, seed=8), rate=0.3, seed=8)
        model = XacmlLearningPipeline(filter_noise=True).learn(log)
        assert all("not_applicable" not in t for t in model.rule_texts())
        assert semantic_accuracy(model, gt) >= 0.9
