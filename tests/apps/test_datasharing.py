"""Tests for the coalition data-sharing application (paper Section IV.D)."""

import pytest

from repro.apps.datasharing import (
    DataOffer,
    HELPERS,
    HelperSelectionLearner,
    correct_helper,
    sample_offers,
    sharing_allowed,
)


class TestDoctrine:
    def test_documents_need_provenance(self):
        offer = DataOffer("trusted", "document", "high", "high")
        assert correct_helper(offer) == "provenance_verify"

    def test_untrusted_needs_deep_scan(self):
        offer = DataOffer("untrusted", "imagery", "high", "high")
        assert correct_helper(offer) == "deep_scan"

    def test_trusted_nondocument_basic(self):
        offer = DataOffer("trusted", "signal", "high", "low")
        assert correct_helper(offer) == "basic_check"

    def test_refusal_for_untrusted_low_quality(self):
        assert not sharing_allowed(DataOffer("untrusted", "signal", "low", "high"))
        assert sharing_allowed(DataOffer("trusted", "signal", "low", "high"))


class TestLearning:
    @pytest.fixture(scope="class")
    def fitted(self):
        return HelperSelectionLearner().fit(sample_offers(30, seed=1))

    def test_generalizes_to_unseen_offers(self, fitted):
        assert fitted.accuracy(sample_offers(60, seed=42)) >= 0.95

    def test_decision_for_each_case(self, fitted):
        assert fitted.decide(DataOffer("trusted", "document", "high", "high")) == (
            "route",
            "provenance_verify",
        )
        assert fitted.decide(DataOffer("untrusted", "imagery", "high", "low")) == (
            "route",
            "deep_scan",
        )
        assert fitted.decide(DataOffer("untrusted", "signal", "low", "low")) == (
            "refuse",
        )

    def test_decide_requires_fit(self):
        with pytest.raises(RuntimeError):
            HelperSelectionLearner().decide(
                DataOffer("trusted", "signal", "high", "high")
            )

    def test_correct_string_shapes(self):
        assert HelperSelectionLearner.correct_string(
            DataOffer("trusted", "imagery", "high", "high")
        ) == ("route", "basic_check")
        assert HelperSelectionLearner.correct_string(
            DataOffer("untrusted", "imagery", "low", "high")
        ) == ("refuse",)
