"""Tests for the federated-learning governance application (Section IV.E)."""

import numpy as np
import pytest

from repro.apps.federated import (
    FederatedSimulation,
    GovernanceLearner,
    InsightOffer,
    PartnerSpec,
    correct_action,
    sample_insight_offers,
)


class TestDoctrine:
    def test_untrusted_divergent_rejected(self):
        assert correct_action(InsightOffer(False, True, True)) == "reject"

    def test_untrusted_consistent_adapted(self):
        assert correct_action(InsightOffer(False, True, False)) == "adapt"

    def test_trusted_shifted_retrains(self):
        assert correct_action(InsightOffer(True, False, False)) == "retrain"

    def test_trusted_same_combined(self):
        assert correct_action(InsightOffer(True, True, False)) == "combine"


class TestGovernanceLearning:
    @pytest.fixture(scope="class")
    def fitted(self):
        return GovernanceLearner().fit(sample_insight_offers(24, seed=1))

    def test_generalization(self, fitted):
        assert fitted.accuracy(sample_insight_offers(60, seed=77)) >= 0.9

    def test_decide_requires_fit(self):
        with pytest.raises(RuntimeError):
            GovernanceLearner().decide(InsightOffer(True, True, False))


class TestSimulation:
    @pytest.fixture(scope="class")
    def partners(self):
        return [
            PartnerSpec("ally", True, True, False, 80),
            PartnerSpec("ally2", True, True, False, 80),
            PartnerSpec("drifted", True, False, False, 80),
            PartnerSpec("attacker", False, False, True, 80),
        ]

    def test_round_reports_actions(self, partners):
        sim = FederatedSimulation(partners, seed=1, noise=1.0)
        result = sim.run_round(correct_action)
        assert sum(result["actions"].values()) == len(partners)
        assert result["mse"] > 0

    def test_poisoned_update_damages_naive_combining(self, partners):
        sim = FederatedSimulation(partners, seed=2, noise=1.0)
        governed = sim.run_round(correct_action)["mse"]
        naive = sim.run_round(lambda offer: "combine")["mse"]
        assert naive > governed

    def test_governance_beats_isolation(self, partners):
        # averaged over seeds: using trusted insights beats local-only
        governed, isolated = [], []
        for seed in range(5):
            sim = FederatedSimulation(partners, seed=seed, noise=1.0)
            governed.append(sim.run_round(correct_action)["mse"])
            isolated.append(sim.run_round(lambda offer: "reject")["mse"])
        assert np.mean(governed) < np.mean(isolated)

    def test_learned_policy_matches_oracle(self, partners):
        gov = GovernanceLearner().fit(sample_insight_offers(24, seed=1))
        mses = []
        for seed in range(3):
            sim = FederatedSimulation(partners, seed=seed, noise=1.0)
            learned = sim.run_round(gov.decide)["mse"]
            oracle = sim.oracle_mse()
            mses.append((learned, oracle))
        learned_avg = np.mean([l for l, __ in mses])
        oracle_avg = np.mean([o for __, o in mses])
        assert learned_avg <= oracle_avg * 1.5 + 0.5
