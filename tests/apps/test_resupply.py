"""Tests for the logistical resupply application (paper Section IV.B)."""

import pytest

from repro.apps.resupply import (
    MissionConditions,
    ResupplyLearner,
    ROUTES,
    ground_truth_route_ok,
    simulate_missions,
)
from repro.apps.resupply.domain import perturb_conditions


def conditions(**overrides):
    base = dict(
        threat={"main": "low", "river": "low", "narrow": "low"},
        weather="clear",
        time_of_day="day",
        convoy_size="small",
    )
    base.update(overrides)
    return MissionConditions(**base)


class TestDoctrine:
    def test_high_threat_blocks_route(self):
        bad = conditions(threat={"main": "high", "river": "low", "narrow": "low"})
        assert not ground_truth_route_ok("main", bad)
        assert ground_truth_route_ok("river", bad)

    def test_river_blocked_at_night(self):
        assert not ground_truth_route_ok("river", conditions(time_of_day="night"))
        assert ground_truth_route_ok("main", conditions(time_of_day="night"))

    def test_river_blocked_in_storm(self):
        assert not ground_truth_route_ok("river", conditions(weather="storm"))

    def test_narrow_blocked_for_large_convoy(self):
        assert not ground_truth_route_ok("narrow", conditions(convoy_size="large"))
        assert ground_truth_route_ok("narrow", conditions(convoy_size="small"))


class TestSimulation:
    def test_outcome_labels_match_executed_conditions(self):
        for mission in simulate_missions(20, seed=3):
            for route in ROUTES:
                assert mission.route_ok[route] == ground_truth_route_ok(
                    route, mission.executed
                )

    def test_zero_drift_means_planning_equals_execution(self):
        for mission in simulate_missions(10, seed=4, drift=0.0):
            assert mission.planned == mission.executed

    def test_drift_perturbs_some_conditions(self):
        import random

        rng = random.Random(1)
        base = conditions()
        perturbed = [perturb_conditions(base, rng, drift=1.0) for __ in range(20)]
        assert any(p != base for p in perturbed)

    def test_time_and_convoy_never_drift(self):
        import random

        rng = random.Random(2)
        base = conditions(time_of_day="night", convoy_size="large")
        for __ in range(10):
            perturbed = perturb_conditions(base, rng, drift=1.0)
            assert perturbed.time_of_day == "night"
            assert perturbed.convoy_size == "large"


class TestLearning:
    def test_execution_phase_recovers_doctrine(self):
        learner = ResupplyLearner(phase="execution")
        learner.observe(simulate_missions(25, seed=6, drift=0.0))
        learner.fit()
        test = simulate_missions(30, seed=777, drift=0.0)
        assert learner.accuracy(test) >= 0.95

    def test_accuracy_improves_with_missions(self):
        few = ResupplyLearner(phase="execution")
        few.observe(simulate_missions(2, seed=8, drift=0.0))
        few.fit()
        many = ResupplyLearner(phase="execution")
        many.observe(simulate_missions(25, seed=8, drift=0.0))
        many.fit()
        test = simulate_missions(40, seed=999, drift=0.0)
        assert many.accuracy(test) >= few.accuracy(test)

    def test_planning_phase_tolerates_drift(self):
        learner = ResupplyLearner(phase="planning")
        learner.observe(simulate_missions(20, seed=10, drift=0.3))
        learner.fit()  # must not raise despite contradictory examples
        test = simulate_missions(30, seed=1234, drift=0.3)
        assert learner.accuracy(test) >= 0.6

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            ResupplyLearner(phase="retrospective")

    def test_route_allowed_requires_fit(self):
        learner = ResupplyLearner()
        with pytest.raises(RuntimeError):
            learner.route_allowed("main", conditions())
