"""Tests for the ALFUS/SAE autonomy taxonomy and delegation (Section IV.A)."""

import pytest

from repro.apps.cav.alfus import (
    ALFUS_LEVELS,
    TransientRestriction,
    Vehicle,
    alfus_to_sae,
    effective_loa,
    find_delegate,
    sae_to_alfus,
)
from repro.errors import ReproError


class TestTaxonomies:
    def test_alfus_covers_eleven_levels(self):
        assert sorted(ALFUS_LEVELS) == list(range(11))

    def test_level_0_is_remote_control(self):
        assert "remote control" in ALFUS_LEVELS[0]

    def test_level_10_is_full_autonomy(self):
        assert "full autonomy" in ALFUS_LEVELS[10]

    def test_level_6_matches_paper_description(self):
        # "Level 6 where a system can follow directives issued by a human
        # operator that may include goal setting and decision approval"
        assert "goal setting" in ALFUS_LEVELS[6]

    @pytest.mark.parametrize("sae,alfus", [(0, 0), (3, 6), (5, 10)])
    def test_sae_mapping(self, sae, alfus):
        assert sae_to_alfus(sae) == alfus

    def test_roundtrip_on_sae_points(self):
        for sae in range(6):
            assert alfus_to_sae(sae_to_alfus(sae)) == sae

    def test_alfus_to_sae_rounds_down(self):
        assert alfus_to_sae(7) == 3  # between SAE 3 (alfus 6) and 4 (alfus 8)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            sae_to_alfus(6)
        with pytest.raises(ReproError):
            alfus_to_sae(11)


class TestTransientRestrictions:
    def test_cap_applies_in_region(self):
        roadworks = TransientRestriction(cap=4, reason="maintenance", region="downtown")
        assert effective_loa(10, "downtown", [roadworks]) == 4
        assert effective_loa(10, "suburbs", [roadworks]) == 10

    def test_global_restriction(self):
        lockdown = TransientRestriction(cap=2, reason="emergency")
        assert effective_loa(8, "anywhere", [lockdown]) == 2

    def test_inactive_restriction_ignored(self):
        night_cap = TransientRestriction(
            cap=3, reason="night", active=lambda ctx: ctx.get("night", False)
        )
        assert effective_loa(9, "r", [night_cap], {"night": False}) == 9
        assert effective_loa(9, "r", [night_cap], {"night": True}) == 3

    def test_tightest_cap_wins(self):
        restrictions = [
            TransientRestriction(cap=6, reason="a"),
            TransientRestriction(cap=4, reason="b"),
        ]
        assert effective_loa(10, "r", restrictions) == 4

    def test_cap_never_raises_loa(self):
        generous = TransientRestriction(cap=10, reason="x")
        assert effective_loa(3, "r", [generous]) == 3


class TestDelegation:
    FLEET = [
        Vehicle("low", 2, "downtown"),
        Vehicle("mid", 6, "downtown"),
        Vehicle("high", 10, "downtown"),
        Vehicle("elsewhere", 10, "suburbs"),
        Vehicle("selfish", 10, "downtown", shareable=False),
    ]

    def test_least_capable_sufficient_vehicle_chosen(self):
        delegate = find_delegate(5, "downtown", self.FLEET)
        assert delegate is not None and delegate.name == "mid"

    def test_region_must_match(self):
        assert find_delegate(5, "nowhere", self.FLEET) is None

    def test_unshareable_excluded(self):
        fleet = [Vehicle("selfish", 10, "downtown", shareable=False)]
        assert find_delegate(5, "downtown", fleet) is None

    def test_restrictions_limit_delegates(self):
        cap = TransientRestriction(cap=4, reason="maintenance", region="downtown")
        delegate = find_delegate(5, "downtown", self.FLEET, [cap])
        assert delegate is None  # even LOA-10 vehicles are capped to 4

    def test_no_delegate_when_none_sufficient(self):
        fleet = [Vehicle("a", 3, "r"), Vehicle("b", 4, "r")]
        assert find_delegate(9, "r", fleet) is None
