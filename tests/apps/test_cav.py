"""Tests for the CAV application (paper Section IV.A)."""

import pytest

from repro.apps.cav import (
    CavScenario,
    CavSymbolicLearner,
    TASK_LOA,
    cav_asg,
    cav_hypothesis_space,
    ground_truth_accept,
    sample_scenarios,
    scenario_to_context,
)
from repro.asg import accepts


class TestDomain:
    def test_loa_gates_acceptance(self):
        low = CavScenario("overtake", vehicle_loa=1, region_loa=5, weather="clear", time_of_day="day")
        high = CavScenario("overtake", vehicle_loa=4, region_loa=5, weather="clear", time_of_day="day")
        assert not ground_truth_accept(low)
        assert ground_truth_accept(high)

    def test_region_restriction(self):
        scenario = CavScenario("overtake", 5, 1, "clear", "day")
        assert not ground_truth_accept(scenario)

    def test_severe_weather_blocks_risky_tasks(self):
        risky = CavScenario("lane_change", 5, 5, "snow", "day")
        safe = CavScenario("lane_keep", 5, 5, "snow", "day")
        assert not ground_truth_accept(risky)
        assert ground_truth_accept(safe)

    def test_sampling_is_deterministic(self):
        assert sample_scenarios(10, seed=4) == sample_scenarios(10, seed=4)

    def test_features_roundtrip(self):
        scenario = CavScenario("park", 3, 3, "rain", "night")
        features = scenario.features()
        assert features["task"] == "park"
        assert features["vehicle_loa"] == 3


class TestInitialASG:
    def test_background_derives_insufficiency(self):
        asg = cav_asg()
        scenario = CavScenario("overtake", 1, 5, "clear", "day")
        grammar = asg.with_context(scenario_to_context(scenario).program)
        # without learned constraints everything is still accepted
        assert accepts(grammar, ("accept", "overtake"))

    def test_context_contains_requirements(self):
        context = scenario_to_context(CavScenario("park", 2, 2, "clear", "day"))
        facts = {repr(f) for f in context.facts()}
        assert f"requires(park, {TASK_LOA['park']})" in facts

    def test_hypothesis_space_nonempty(self):
        assert len(cav_hypothesis_space()) > 10


class TestSymbolicLearner:
    @pytest.fixture(scope="class")
    def fitted(self):
        return CavSymbolicLearner().fit(sample_scenarios(40, seed=1))

    def test_recovers_ground_truth_constraints(self, fitted):
        constraints = fitted.learned_constraints()
        assert ":- veh_insufficient." in constraints
        assert ":- reg_insufficient." in constraints
        assert ":- risky, severe." in constraints

    def test_perfect_generalization(self, fitted):
        test = sample_scenarios(60, seed=123)
        predictions = fitted.predict([s for s, __ in test])
        assert predictions == [label for __, label in test]

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            CavSymbolicLearner().predict_one(
                CavScenario("park", 2, 2, "clear", "day")
            )


class TestSymbolicVsShallow:
    def test_symbolic_beats_shallow_at_small_n(self):
        """The paper's headline claim (Section IV.A): fewer examples for
        greater accuracy than shallow ML."""
        from repro.baselines import DecisionTreeClassifier, OneHotEncoder
        from repro.learning import accuracy

        train = sample_scenarios(24, seed=5)
        test = sample_scenarios(120, seed=321)
        labels = [label for __, label in test]

        symbolic = CavSymbolicLearner().fit(train)
        symbolic_acc = accuracy(symbolic.predict([s for s, __ in test]), labels)

        encoder = OneHotEncoder().fit([s.features() for s, __ in train])
        X_train = encoder.transform([s.features() for s, __ in train])
        y_train = [int(label) for __, label in train]
        import numpy as np

        tree = DecisionTreeClassifier().fit(X_train, np.array(y_train))
        X_test = encoder.transform([s.features() for s, __ in test])
        tree_acc = accuracy([bool(p) for p in tree.predict(X_test)], labels)

        assert symbolic_acc >= tree_acc
        assert symbolic_acc >= 0.9
