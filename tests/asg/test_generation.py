"""Unit tests for policy generation from ASGs (L(G(C)) enumeration)."""

import pytest

from repro.asp import parse_program
from repro.asg import accepts, generate_policies, generate_valid_trees, parse_asg

ASG_TEXT = """
policy -> "allow" subject action {
    :- is(alice)@2, is(write)@3.
    :- is(bob)@2, is(read)@3, not emergency.
}
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


@pytest.fixture
def asg():
    return parse_asg(ASG_TEXT)


class TestGeneration:
    def test_only_valid_policies_generated(self, asg):
        policies = generate_policies(asg)
        assert ("allow", "alice", "read") in policies
        assert ("allow", "bob", "write") in policies
        assert ("allow", "alice", "write") not in policies
        assert ("allow", "bob", "read") not in policies

    def test_generation_matches_membership(self, asg):
        from repro.grammar import generate_strings

        generated = set(generate_policies(asg))
        for string in generate_strings(asg.cfg):
            assert (string in generated) == accepts(asg, string)

    def test_context_changes_generated_set(self, asg):
        base = set(generate_policies(asg))
        emergency = set(generate_policies(asg, context=parse_program("emergency.")))
        assert ("allow", "bob", "read") in emergency
        assert ("allow", "bob", "read") not in base
        assert base < emergency

    def test_max_policies_cap(self, asg):
        assert len(generate_policies(asg, max_policies=1)) == 1

    def test_trees_carry_valid_derivations(self, asg):
        for tree, string in generate_valid_trees(asg):
            assert tree.yield_string() == string

    def test_empty_language(self):
        dead = parse_asg('s -> "x" { :- true. true. }')
        assert generate_policies(dead) == []

    def test_infinite_grammar_bounded(self):
        asg = parse_asg('s -> "a" s\ns -> "a"')
        policies = generate_policies(asg, max_length=3)
        assert sorted(len(p) for p in policies) == [1, 2, 3]
