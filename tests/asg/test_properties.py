"""Property-based tests for Answer Set Grammar invariants.

* ``L(G) ⊆ L(G_CF)`` — ASG membership implies CFG membership;
* anti-monotonicity — adding constraints to annotations never grows the
  language;
* context monotonicity for negation-free conditions — adding facts to a
  context can only *enable* policies whose constraints test context
  atoms positively... in general contexts are non-monotone (negation as
  failure), so the checked property is the exact one: with a constraint
  body ``is(x)@i, not c``, adding ``c`` enables, removing disables;
* generation/membership agreement — every generated policy is accepted
  and every accepted short string is generated.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.asp.atoms import Atom, Literal
from repro.asp.parser import parse_program
from repro.asp.rules import NormalRule
from repro.asp.terms import Constant
from repro.asg import ASG, accepts, generate_policies, parse_asg
from repro.grammar import recognize

SUBJECTS = ("alice", "bob", "carol")
ACTIONS = ("read", "write")

BASE = parse_asg(
    """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
subject -> "carol" { is(carol). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""
)


def literal_pool():
    pool = [Literal(Atom("is", [Constant(s)], (2,)), True) for s in SUBJECTS]
    pool += [Literal(Atom("is", [Constant(a)], (3,)), True) for a in ACTIONS]
    pool += [
        Literal(Atom("ctx"), True),
        Literal(Atom("ctx"), False),
    ]
    return pool


@st.composite
def constraint_sets(draw):
    pool = literal_pool()
    n_rules = draw(st.integers(min_value=0, max_value=3))
    rules = []
    for __ in range(n_rules):
        size = draw(st.integers(min_value=1, max_value=2))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(pool) - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        body = [pool[i] for i in indices]
        atoms = {lit.atom for lit in body}
        if len(atoms) < len(body):
            continue
        rules.append(NormalRule(None, body))
    return rules


ALL_STRINGS = [
    ("allow", subject, action) for subject in SUBJECTS for action in ACTIONS
]


class TestLanguageInvariants:
    @given(constraint_sets())
    @settings(max_examples=60, deadline=None)
    def test_asg_language_subset_of_cfg(self, constraints):
        grammar = BASE.with_rules([(rule, 0) for rule in constraints])
        for tokens in ALL_STRINGS:
            if accepts(grammar, tokens):
                assert recognize(grammar.cfg, tokens)

    @given(constraint_sets(), constraint_sets())
    @settings(max_examples=60, deadline=None)
    def test_adding_constraints_shrinks_language(self, first, second):
        smaller = BASE.with_rules([(rule, 0) for rule in first])
        larger_set = smaller.with_rules([(rule, 0) for rule in second])
        for tokens in ALL_STRINGS:
            if accepts(larger_set, tokens):
                assert accepts(smaller, tokens)

    @given(constraint_sets())
    @settings(max_examples=40, deadline=None)
    def test_generation_agrees_with_membership(self, constraints):
        grammar = BASE.with_rules([(rule, 0) for rule in constraints])
        generated = set(generate_policies(grammar, max_length=3))
        for tokens in ALL_STRINGS:
            assert (tokens in generated) == accepts(grammar, tokens)

    @given(constraint_sets())
    @settings(max_examples=40, deadline=None)
    def test_context_placement_agreement_for_root_rules(self, constraints):
        """For rules attached to the start production, Definition 3's
        'all' placement and Section III.A's 'start' placement agree."""
        grammar = BASE.with_rules([(rule, 0) for rule in constraints])
        context = parse_program("ctx.")
        with_all = grammar.with_context(context, where="all")
        with_start = grammar.with_context(context, where="start")
        for tokens in ALL_STRINGS:
            assert accepts(with_all, tokens) == accepts(with_start, tokens)


class TestContextSensitivity:
    def test_negated_context_condition_is_nonmonotone(self):
        grammar = BASE.with_rules(
            [
                (
                    NormalRule(
                        None,
                        [
                            Literal(Atom("is", [Constant("bob")], (2,)), True),
                            Literal(Atom("ctx"), False),
                        ],
                    ),
                    0,
                )
            ]
        )
        without = accepts(grammar, ("allow", "bob", "read"))
        with_ctx = accepts(
            grammar.with_context(parse_program("ctx.")), ("allow", "bob", "read")
        )
        assert not without and with_ctx  # adding a fact *enabled* a policy
