"""Unit tests for Answer Set Grammar semantics (paper Section II.A)."""

import pytest

from repro.asp import parse_program, parse_rule
from repro.asg import (
    ASG,
    accepting_witness,
    accepts,
    parse_asg,
    reroot_rule,
    tree_program,
)
from repro.errors import GrammarError
from repro.grammar import parse_cfg, parse_trees

BASIC = """
policy -> "allow" subject action {
    :- is(alice)@2, is(write)@3.
}
policy -> "deny" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


@pytest.fixture
def asg():
    return parse_asg(BASIC)


class TestRerooting:
    def test_unannotated_atom_gets_node_trace(self):
        rule = parse_rule("is(alice).")
        rerooted = reroot_rule(rule, (2,))
        assert rerooted.head.annotation == (2,)

    def test_annotated_atom_gets_prefixed(self):
        rule = parse_rule(":- is(alice)@2, is(write)@3.")
        rerooted = reroot_rule(rule, ())
        assert rerooted.body[0].atom.annotation == (2,)
        rerooted_deep = reroot_rule(rule, (1, 4))
        assert rerooted_deep.body[0].atom.annotation == (1, 4, 2)

    def test_rerooting_preserves_sign(self):
        rule = parse_rule("ok :- not bad@1.")
        rerooted = reroot_rule(rule, (3,))
        assert not rerooted.body[0].positive
        assert rerooted.body[0].atom.annotation == (3, 1)


class TestTreeProgram:
    def test_program_collects_all_node_annotations(self, asg):
        (tree,) = parse_trees(asg.cfg, ("allow", "alice", "write"))
        program = tree_program(asg, tree)
        # root constraint + subject fact + action fact
        assert len(program) == 3

    def test_facts_annotated_with_child_traces(self, asg):
        (tree,) = parse_trees(asg.cfg, ("allow", "alice", "read"))
        program = tree_program(asg, tree)
        heads = {r.head for r in program if r.head is not None}
        annotations = {h.annotation for h in heads}
        assert (2,) in annotations and (3,) in annotations


class TestMembership:
    def test_semantically_valid_accepted(self, asg):
        assert accepts(asg, ("allow", "alice", "read"))
        assert accepts(asg, ("allow", "bob", "write"))

    def test_constraint_rejects(self, asg):
        assert not accepts(asg, ("allow", "alice", "write"))

    def test_unconstrained_production_accepts(self, asg):
        assert accepts(asg, ("deny", "alice", "write"))

    def test_syntactically_invalid_rejected(self, asg):
        assert not accepts(asg, ("allow", "alice"))
        assert not accepts(asg, ("frobnicate",))

    def test_language_subset_of_cfg_language(self, asg):
        from repro.grammar import generate_strings

        for string in generate_strings(asg.cfg):
            if accepts(asg, string):
                # membership implies CFG membership by construction
                from repro.grammar import recognize

                assert recognize(asg.cfg, string)

    def test_witness_contains_tree_and_answer_set(self, asg):
        witness = accepting_witness(asg, ("allow", "bob", "read"))
        assert witness is not None
        tree, model = witness
        assert tree.yield_string() == ("allow", "bob", "read")
        assert any(atom.predicate == "is" for atom in model)

    def test_no_witness_for_rejected(self, asg):
        assert accepting_witness(asg, ("allow", "alice", "write")) is None


class TestAmbiguousGrammars:
    def test_any_satisfiable_tree_suffices(self):
        # Ambiguous grammar: two trees for "x x"; one production is
        # annotated with an unsatisfiable program, the other is free.
        asg = parse_asg(
            """
s -> a a
s -> "x" "x" { :- true. true. }
a -> "x"
"""
        )
        assert accepts(asg, ("x", "x"))

    def test_rejected_only_if_all_trees_fail(self):
        asg = parse_asg(
            """
s -> a a { :- true. true. }
s -> "x" "x" { :- true. true. }
a -> "x"
"""
        )
        assert not accepts(asg, ("x", "x"))


class TestContext:
    def test_context_enables_policy(self):
        asg = parse_asg(
            """
policy -> "allow" subject {
    :- is(bob)@2, not emergency.
}
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
"""
        )
        assert not accepts(asg, ("allow", "bob"))
        emergency = parse_program("emergency.")
        assert accepts(asg.with_context(emergency), ("allow", "bob"))
        assert accepts(asg.with_context(emergency), ("allow", "alice"))

    def test_context_at_start_only(self):
        asg = parse_asg(
            """
policy -> "go" { :- not weekend. }
"""
        )
        weekend = parse_program("weekend.")
        assert accepts(asg.with_context(weekend, where="start"), ("go",))
        assert not accepts(asg, ("go",))

    def test_invalid_where_rejected(self):
        asg = parse_asg('s -> "x"')
        with pytest.raises(ValueError):
            asg.with_context(parse_program("a."), where="everywhere")


class TestHypothesisAttachment:
    def test_with_rules_targets_production(self):
        asg = parse_asg(
            """
policy -> "allow" subject
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
"""
        )
        rule = parse_rule(":- is(bob)@2.")
        learned = asg.with_rules([(rule, 0)])
        assert accepts(learned, ("allow", "alice"))
        assert not accepts(learned, ("allow", "bob"))
        # original grammar is unchanged (value semantics)
        assert accepts(asg, ("allow", "bob"))

    def test_with_rules_bad_production_id(self):
        asg = parse_asg('s -> "x"')
        with pytest.raises(GrammarError):
            asg.with_rules([(parse_rule(":- a."), 99)])


class TestAnnotationValidation:
    def test_out_of_range_annotation_rejected(self):
        with pytest.raises(GrammarError):
            parse_asg('s -> "x" { :- a@2. }')

    def test_annotation_within_arity_accepted(self):
        asg = parse_asg('s -> "x" t { :- a@2. }\nt -> "y" { a. }')
        assert not accepts(asg, ("x", "y"))
