"""Tests for generation-level explanations (Section V.B, learning level)."""

import pytest

from repro.asp import parse_atom, parse_program
from repro.asg import parse_asg
from repro.asg.explain import (
    RejectionExplanation,
    context_counterfactuals,
    explain_rejection,
)

ASG_TEXT = """
policy -> "allow" subject action {
    :- is(alice)@2, is(write)@3.
    :- is(bob)@2, not emergency.
}
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


@pytest.fixture
def asg():
    return parse_asg(ASG_TEXT)


class TestRejectionExplanation:
    def test_valid_string_has_no_explanation(self, asg):
        assert explain_rejection(asg, ("allow", "alice", "read")) is None

    def test_syntactic_rejection(self, asg):
        explanation = explain_rejection(asg, ("allow", "alice"))
        assert explanation is not None
        assert explanation.syntactic
        assert "syntax" in explanation.text()

    def test_blocking_constraint_identified(self, asg):
        explanation = explain_rejection(asg, ("allow", "alice", "write"))
        assert explanation is not None
        assert not explanation.syntactic
        (blockers,) = explanation.blockers_per_tree
        assert len(blockers) == 1
        assert "is(alice)" in blockers[0].rule_text
        assert "is(write)" in blockers[0].rule_text
        assert blockers[0].production_id == 0

    def test_context_dependent_blocker(self, asg):
        explanation = explain_rejection(asg, ("allow", "bob", "read"))
        assert explanation is not None
        (blockers,) = explanation.blockers_per_tree
        assert any("emergency" in b.rule_text for b in blockers)

    def test_context_unblocks(self, asg):
        emergency = parse_program("emergency.")
        assert explain_rejection(asg, ("allow", "bob", "read"), emergency) is None

    def test_explanation_text_mentions_string(self, asg):
        explanation = explain_rejection(asg, ("allow", "alice", "write"))
        assert "allow alice write" in explanation.text()


class TestContextCounterfactuals:
    def test_flip_to_valid(self, asg):
        results = context_counterfactuals(
            asg,
            ("allow", "bob", "read"),
            context_atoms=[parse_atom("emergency")],
        )
        assert len(results) == 1
        facts, valid = results[0]
        assert valid
        assert parse_atom("emergency") in facts

    def test_flip_to_invalid(self, asg):
        current = parse_program("emergency.")
        results = context_counterfactuals(
            asg,
            ("allow", "bob", "read"),
            context_atoms=[parse_atom("emergency")],
            current=current,
        )
        assert len(results) == 1
        facts, valid = results[0]
        assert not valid
        assert parse_atom("emergency") not in facts

    def test_no_counterfactual_for_unconditional_rejection(self, asg):
        # alice/write is blocked regardless of context
        results = context_counterfactuals(
            asg,
            ("allow", "alice", "write"),
            context_atoms=[parse_atom("emergency")],
        )
        assert results == []

    def test_results_are_minimal(self, asg):
        results = context_counterfactuals(
            asg,
            ("allow", "bob", "read"),
            context_atoms=[parse_atom("emergency"), parse_atom("night")],
            max_changes=2,
        )
        # only the single-atom emergency flip; the emergency+night pair
        # is a superset and must be suppressed
        assert len(results) == 1
