"""Unit tests for the ASG text format."""

import pytest

from repro.asg import parse_asg
from repro.errors import GrammarSyntaxError


class TestBasicParsing:
    def test_productions_and_annotations(self):
        asg = parse_asg(
            """
s -> "a" t { :- bad@2. }
t -> "b"   { bad. }
t -> "c"
"""
        )
        assert len(asg.cfg.productions) == 3
        assert len(asg.annotation(0)) == 1
        assert len(asg.annotation(1)) == 1
        assert len(asg.annotation(2)) == 0

    def test_multiline_annotation_blocks(self):
        asg = parse_asg(
            """
s -> "x" {
    a.
    b :- a.
    :- c.
}
"""
        )
        assert len(asg.annotation(0)) == 3

    def test_choice_rule_braces_inside_annotation(self):
        asg = parse_asg('s -> "x" { { p ; q } 1. :- p. }')
        assert len(asg.annotation(0)) == 2

    def test_alternatives_with_pipe(self):
        asg = parse_asg('s -> "a" | "b"')
        assert len(asg.cfg.productions) == 2

    def test_annotation_binds_to_preceding_alternative(self):
        asg = parse_asg('s -> "a" { p. } | "b"')
        assert len(asg.annotation(0)) == 1
        assert len(asg.annotation(1)) == 0

    def test_hash_comments_outside_blocks(self):
        asg = parse_asg('s -> "x"  # a comment\n# whole line')
        assert len(asg.cfg.productions) == 1

    def test_percent_comments_inside_blocks(self):
        asg = parse_asg('s -> "x" { p. % an ASP comment\n }')
        assert len(asg.annotation(0)) == 1

    def test_epsilon_production(self):
        asg = parse_asg('s -> "a" s\ns -> eps')
        assert any(not p.rhs for p in asg.cfg.productions)


class TestErrors:
    def test_empty_grammar(self):
        with pytest.raises(GrammarSyntaxError):
            parse_asg("")

    def test_unbalanced_braces(self):
        with pytest.raises(GrammarSyntaxError):
            parse_asg('s -> "x" { p. ')

    def test_undefined_nonterminal(self):
        with pytest.raises(GrammarSyntaxError):
            parse_asg("s -> t")

    def test_continuation_without_rule(self):
        with pytest.raises(GrammarSyntaxError):
            parse_asg('| "x"')


class TestRoundTrip:
    def test_parsed_asg_has_working_semantics(self):
        from repro.asg import accepts

        asg = parse_asg(
            """
s -> left right { :- val(X)@1, val(X)@2. }
left  -> "a" { val(1). }
left  -> "b" { val(2). }
right -> "a" { val(1). }
right -> "b" { val(2). }
"""
        )
        # the constraint forbids equal values: "a a" and "b b" invalid
        assert not accepts(asg, ("a", "a"))
        assert not accepts(asg, ("b", "b"))
        assert accepts(asg, ("a", "b"))
        assert accepts(asg, ("b", "a"))
