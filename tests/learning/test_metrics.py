"""Unit tests for learning metrics."""

import pytest

from repro.learning import accuracy, confusion, learning_curve, precision_recall_f1


class TestConfusion:
    def test_counts(self):
        predictions = [True, True, False, False]
        labels = [True, False, True, False]
        counts = confusion(predictions, labels)
        assert counts == {"tp": 1, "fp": 1, "fn": 1, "tn": 1}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            confusion([True], [True, False])


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([True, False], [True, False]) == 1.0

    def test_half(self):
        assert accuracy([True, True], [True, False]) == 0.5

    def test_empty_is_one(self):
        assert accuracy([], []) == 1.0


class TestPrecisionRecall:
    def test_values(self):
        predictions = [True, True, False]
        labels = [True, False, True]
        precision, recall, f1 = precision_recall_f1(predictions, labels)
        assert precision == 0.5
        assert recall == 0.5
        assert f1 == 0.5

    def test_degenerate_no_positives(self):
        precision, recall, __ = precision_recall_f1([False], [False])
        assert precision == 1.0 and recall == 1.0


class TestLearningCurve:
    def test_curve_calls_trainer_per_size(self):
        labels = [True, False, True]
        calls = []

        def train_and_predict(n):
            calls.append(n)
            # a fake learner that gets everything right from n >= 2
            return labels if n >= 2 else [False, False, False]

        curve = learning_curve(train_and_predict, labels, [1, 2, 4])
        assert calls == [1, 2, 4]
        assert curve[0][1] < curve[1][1] == curve[2][1] == 1.0
