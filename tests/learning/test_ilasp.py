"""Unit tests for the ILASP-style learner on Definition 3 tasks."""

import pytest

from repro.asp import parse_program, parse_rule
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg import accepts, parse_asg
from repro.errors import UnsatisfiableTaskError
from repro.learning import (
    ASGLearningTask,
    ContextExample,
    ILASPLearner,
    constraint_space,
    learn,
)

GRAMMAR = """
policy -> "allow" subject action
policy -> "deny" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def attribute_pool(include_context=()):
    pool = []
    for name in ("alice", "bob"):
        pool.append(Literal(Atom("is", [Constant(name)], (2,)), True))
    for name in ("read", "write"):
        pool.append(Literal(Atom("is", [Constant(name)], (3,)), True))
    for ctx in include_context:
        pool.append(Literal(Atom(ctx), True))
        pool.append(Literal(Atom(ctx), False))
    return pool


@pytest.fixture
def asg():
    return parse_asg(GRAMMAR)


class TestBasicLearning:
    def test_learns_single_constraint(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=2)
        task = ASGLearningTask(
            asg,
            space,
            positive=[
                ContextExample.from_text("allow alice read"),
                ContextExample.from_text("allow bob write"),
            ],
            negative=[ContextExample.from_text("allow alice write")],
        )
        result = learn(task)
        assert result.cost == 2
        assert repr(result.candidates[0].rule) == ":- is(alice)@2, is(write)@3."

    def test_empty_hypothesis_when_examples_trivial(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=2)
        task = ASGLearningTask(
            asg, space, positive=[ContextExample.from_text("allow alice read")], negative=[]
        )
        result = learn(task)
        assert result.candidates == []
        assert result.cost == 0

    def test_learned_grammar_satisfies_all_examples(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0, 1), max_body=2)
        positive = [
            ContextExample.from_text("allow alice read"),
            ContextExample.from_text("deny alice write"),
            ContextExample.from_text("allow bob write"),
        ]
        negative = [
            ContextExample.from_text("allow alice write"),
            ContextExample.from_text("deny bob read"),
        ]
        result = learn(ASGLearningTask(asg, space, positive, negative))
        learned = asg.with_rules(result.rules)
        for example in positive:
            assert accepts(learned, example.tokens)
        for example in negative:
            assert not accepts(learned, example.tokens)

    def test_minimality(self, asg):
        # Two negatives requiring two distinct constraints: cost must be 4,
        # not more (no redundant third rule).
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=2)
        positive = [
            ContextExample.from_text("allow alice read"),
            ContextExample.from_text("allow bob write"),
        ]
        negative = [
            ContextExample.from_text("allow alice write"),
            ContextExample.from_text("allow bob read"),
        ]
        result = learn(ASGLearningTask(asg, space, positive, negative))
        assert result.cost == 4
        assert len(result.candidates) == 2


class TestContextDependentLearning:
    def test_learns_context_conditioned_constraint(self, asg):
        space = constraint_space(
            attribute_pool(include_context=("emergency",)), prod_ids=(0,), max_body=3
        )
        positive = [
            ContextExample.from_text("allow bob read", "emergency."),
            ContextExample.from_text("allow alice read"),
        ]
        negative = [
            ContextExample.from_text("allow bob read"),  # no emergency: forbidden
        ]
        result = learn(ASGLearningTask(asg, space, positive, negative))
        learned = asg.with_rules(result.rules)
        emergency = parse_program("emergency.")
        assert accepts(learned.with_context(emergency), ("allow", "bob", "read"))
        assert not accepts(learned, ("allow", "bob", "read"))
        assert accepts(learned, ("allow", "alice", "read"))


class TestUnsatisfiableTasks:
    def test_contradictory_examples_unsat(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=2)
        same = ContextExample.from_text("allow alice read")
        task = ASGLearningTask(asg, space, positive=[same], negative=[same])
        with pytest.raises(UnsatisfiableTaskError):
            learn(task)

    def test_negative_with_empty_space_unsat(self, asg):
        task = ASGLearningTask(
            asg, [], positive=[], negative=[ContextExample.from_text("allow alice read")]
        )
        with pytest.raises(UnsatisfiableTaskError):
            learn(task)


class TestNoiseTolerance:
    def test_contradiction_resolved_with_violation_budget(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=2)
        clean_pos = [
            ContextExample.from_text("allow alice read"),
            ContextExample.from_text("allow bob write"),
        ]
        noisy_neg = [
            ContextExample.from_text("allow alice write"),
            # noisy negative that contradicts a positive:
            ContextExample.from_text("allow alice read"),
        ]
        task = ASGLearningTask(asg, space, clean_pos, noisy_neg)
        with pytest.raises(UnsatisfiableTaskError):
            learn(task)
        result = learn(task, max_violations=1)
        assert result.violations == 1
        learned = asg.with_rules(result.rules)
        # the unambiguous examples must still be honoured
        assert not accepts(learned, ("allow", "alice", "write"))
        assert accepts(learned, ("allow", "bob", "write"))

    def test_weighted_examples_steer_violations(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=2)
        heavy = ContextExample.from_text("allow alice read", weight=5)
        light_conflict = ContextExample(("allow", "alice", "read"), weight=1)
        task = ASGLearningTask(asg, space, [heavy], [light_conflict])
        result = learn(task, max_violations=1)
        # Violating the light negative (weight 1) is within budget;
        # violating the heavy positive (weight 5) would not be.
        assert result.violations == 1


class TestLearnerStatistics:
    def test_checks_counted(self, asg):
        space = constraint_space(attribute_pool(), prod_ids=(0,), max_body=1)
        task = ASGLearningTask(
            asg, space, [ContextExample.from_text("allow alice read")], []
        )
        result = learn(task)
        assert result.checks > 0
        assert result.elapsed >= 0
