"""Unit tests for the decomposable (set-cover) learner.

The key property: on decomposable tasks it agrees with the exact
learner; on non-decomposable ones it detects the mismatch and
``learn_auto`` falls back.
"""

import pytest

from repro.asp import parse_atom, parse_program
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg import accepts, parse_asg
from repro.errors import UnsatisfiableTaskError
from repro.learning import (
    ASGLearningTask,
    ContextExample,
    DecomposableLearner,
    LASTask,
    PartialInterpretation,
    constraint_space,
    learn,
    learn_auto,
)

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def pool():
    out = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    out += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    return out


def asg_task(positive, negative):
    asg = parse_asg(GRAMMAR)
    space = constraint_space(pool(), prod_ids=(0,), max_body=2)
    return ASGLearningTask(asg, space, positive, negative)


class TestAgreementWithExactLearner:
    def test_same_solution_on_constraint_task(self):
        task = asg_task(
            positive=[
                ContextExample.from_text("allow alice read"),
                ContextExample.from_text("allow bob write"),
            ],
            negative=[ContextExample.from_text("allow alice write")],
        )
        exact = learn(task)
        fast = DecomposableLearner(task).learn()
        assert {c.key() for c in fast.candidates} == {c.key() for c in exact.candidates}

    def test_multi_rule_set_cover(self):
        task = asg_task(
            positive=[
                ContextExample.from_text("allow alice read"),
                ContextExample.from_text("allow bob write"),
            ],
            negative=[
                ContextExample.from_text("allow alice write"),
                ContextExample.from_text("allow bob read"),
            ],
        )
        exact = learn(task)
        fast = DecomposableLearner(task).learn()
        assert fast.cost == exact.cost == 4
        learned = task.initial.with_rules([(c.rule, c.prod_id) for c in fast.candidates])
        assert not accepts(learned, ("allow", "alice", "write"))
        assert not accepts(learned, ("allow", "bob", "read"))
        assert accepts(learned, ("allow", "alice", "read"))

    def test_unsat_detected(self):
        same = ContextExample.from_text("allow alice read")
        task = asg_task(positive=[same], negative=[same])
        with pytest.raises(UnsatisfiableTaskError):
            DecomposableLearner(task).learn()


class TestViolationBudgets:
    def test_skip_branch_absorbs_contradiction(self):
        same = ContextExample.from_text("allow alice read")
        task = asg_task(
            positive=[same, ContextExample.from_text("allow bob write")],
            negative=[same],
        )
        result = DecomposableLearner(task, max_violations=1).learn()
        assert result.violations <= 1

    def test_learn_auto_grows_budget(self):
        same = ContextExample.from_text("allow alice read")
        task = asg_task(
            positive=[same, ContextExample.from_text("allow bob write")],
            negative=[same],
        )
        result = learn_auto(task, fallback=False)
        assert result.violations >= 1


class TestLASDecomposition:
    def test_definite_rule_cover(self):
        from repro.learning import ModeAtom, ModeBias, Placeholder

        bias = ModeBias(
            head_modes=[ModeAtom(Atom("decision", [Constant("permit")]))],
            body_modes=[ModeAtom(Atom("role", [Placeholder("role")]))],
            pools={"role": [Constant("dba"), Constant("dev"), Constant("guest")]},
            max_body=1,
            allow_constraints=False,
            allow_negation=False,
        )
        background = parse_program("decision(deny) :- not decision(permit).")

        def example(decision, role):
            other = "deny" if decision == "permit" else "permit"
            return PartialInterpretation(
                inclusions=[parse_atom(f"decision({decision})")],
                exclusions=[parse_atom(f"decision({other})")],
                context=parse_program(f"role({role})."),
            )

        task = LASTask(
            background,
            bias.generate(),
            [
                example("permit", "dba"),
                example("permit", "dev"),
                example("deny", "guest"),
            ],
            [],
        )
        result = DecomposableLearner(task).learn()
        texts = {repr(c.rule) for c in result.candidates}
        assert texts == {
            "decision(permit) :- role(dba).",
            "decision(permit) :- role(dev).",
        }

    def test_deny_examples_block_overbroad_rules(self):
        """A deny log entry is a *positive* example satisfied by the
        background; selecting a rule that fires on it must count as a
        violation (the regression that once sent the fast path into the
        exact learner)."""
        from repro.learning import ModeAtom, ModeBias, Placeholder

        bias = ModeBias(
            head_modes=[ModeAtom(Atom("decision", [Constant("permit")]))],
            body_modes=[
                ModeAtom(Atom("role", [Placeholder("role")])),
                ModeAtom(Atom("action", [Placeholder("action")])),
            ],
            pools={
                "role": [Constant("dba")],
                "action": [Constant("read"), Constant("write")],
            },
            max_body=2,
            allow_constraints=False,
            allow_negation=False,
        )
        background = parse_program("decision(deny) :- not decision(permit).")
        examples = [
            PartialInterpretation(
                inclusions=[parse_atom("decision(permit)")],
                exclusions=[parse_atom("decision(deny)")],
                context=parse_program("role(dba). action(read)."),
            ),
            PartialInterpretation(
                inclusions=[parse_atom("decision(deny)")],
                exclusions=[parse_atom("decision(permit)")],
                context=parse_program("role(dba). action(write)."),
            ),
        ]
        task = LASTask(background, bias.generate(), examples, [])
        result = DecomposableLearner(task).learn()
        assert result.violations == 0
        # the overbroad `decision(permit) :- role(dba).` must not be chosen
        texts = {repr(c.rule) for c in result.candidates}
        assert "decision(permit) :- role(dba)." not in texts
        # and the solution must satisfy both examples exactly
        assert task.positive_holds(result.candidates, examples[0])
        assert task.positive_holds(result.candidates, examples[1])
