"""Unit tests for rule-confidence scoring (Sections IV.C / V.C)."""

import pytest

from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg import parse_asg
from repro.learning import ASGLearningTask, ContextExample, constraint_space, learn
from repro.learning.confidence import RuleConfidence, score_hypothesis

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def make_task(positive, negative):
    asg = parse_asg(GRAMMAR)
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    return ASGLearningTask(asg, constraint_space(pool, prod_ids=(0,), max_body=2), positive, negative)


class TestScoring:
    def test_necessary_rule_has_support(self):
        task = make_task(
            positive=[ContextExample.from_text("allow alice read")],
            negative=[ContextExample.from_text("allow alice write")],
        )
        result = learn(task)
        scores = score_hypothesis(task, result.candidates)
        assert len(scores) == 1
        assert scores[0].necessary
        assert scores[0].support >= 1
        assert scores[0].confidence > 0.5

    def test_redundant_rule_flagged_unnecessary(self):
        task = make_task(
            positive=[ContextExample.from_text("allow alice read")],
            negative=[ContextExample.from_text("allow alice write")],
        )
        result = learn(task)
        # add a second copy of the same semantic work: a broader rule
        from repro.learning import CandidateRule
        from repro.asp.parser import parse_rule

        redundant = CandidateRule(parse_rule(":- is(write)@3."), prod_id=0)
        scores = score_hypothesis(task, list(result.candidates) + [redundant])
        by_text = {s.rule_text: s for s in scores}
        # the original narrow rule no longer changes any outcome
        original = result.candidates[0]
        assert not by_text[repr(original.rule)].necessary

    def test_weighted_examples_scale_support(self):
        heavy = ContextExample(("allow", "bob", "write"), weight=5)
        task = make_task(
            positive=[ContextExample.from_text("allow alice read")],
            negative=[heavy],
        )
        result = learn(task)
        scores = score_hypothesis(task, result.candidates)
        assert scores[0].support >= 5

    def test_empty_hypothesis_scores_empty(self):
        task = make_task(
            positive=[ContextExample.from_text("allow alice read")], negative=[]
        )
        assert score_hypothesis(task, []) == []

    def test_confidence_is_smoothed_probability(self):
        task = make_task(
            positive=[ContextExample.from_text("allow alice read")],
            negative=[ContextExample.from_text("allow bob write")],
        )
        result = learn(task)
        scores = score_hypothesis(task, result.candidates)
        for score in scores:
            assert 0.0 < score.confidence < 1.0
