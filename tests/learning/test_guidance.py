"""Tests for statistical search guidance (Section V.C)."""

import pytest

from repro.asp.atoms import Atom, Literal
from repro.asp.parser import parse_rule
from repro.asp.terms import Constant
from repro.learning import CandidateRule, constraint_space
from repro.learning.guidance import SearchGuidance, rule_features


def candidate(text, prod_id=0):
    return CandidateRule(parse_rule(text), prod_id=prod_id)


class TestRuleFeatures:
    def test_shape_features(self):
        features = rule_features(candidate(":- is(alice)@2, not emergency."))
        assert features["body_len"] == 2
        assert features["n_negative"] == 1
        assert features["is_constraint"] is True
        assert features["pred:is"] is True
        assert features["pred:emergency"] is True
        assert features["ann:2"] is True

    def test_head_predicate_feature(self):
        features = rule_features(candidate("permit :- weekend."))
        assert features["is_constraint"] is False
        assert features["head_pred"] == "permit"

    def test_no_constants_leak(self):
        features = rule_features(candidate(":- is(alice)@2."))
        assert not any("alice" in key for key in features)


class TestGuidance:
    def _episodes(self, guidance):
        """Simulated history: solutions always pair an @2 attribute with
        an @3 attribute (two-literal cross-position constraints win)."""
        pool = []
        for name in ("alice", "bob"):
            pool.append(Literal(Atom("is", [Constant(name)], (2,)), True))
        for name in ("read", "write"):
            pool.append(Literal(Atom("is", [Constant(name)], (3,)), True))
        pool.append(Literal(Atom("emergency"), True))
        space = constraint_space(pool, prod_ids=(0,), max_body=2)
        winners = [
            c
            for c in space
            if len(c.rule.body) == 2
            and {lit.atom.annotation for lit in c.rule.body} == {(2,), (3,)}
        ]
        for winner in winners:
            guidance.record_episode(space, [winner])
        return space, winners

    def test_ordering_prefers_solution_shapes(self):
        guidance = SearchGuidance()
        space, winners = self._episodes(guidance)
        ordered = guidance.order(space, respect_cost=False)
        top = ordered[: len(winners)]
        winner_keys = {w.key() for w in winners}
        hits = sum(1 for c in top if c.key() in winner_keys)
        assert hits >= len(winners) - 1  # nearly all winners ranked first

    def test_cost_respected_by_default(self):
        guidance = SearchGuidance()
        space, __ = self._episodes(guidance)
        ordered = guidance.order(space)
        costs = [c.cost for c in ordered]
        assert costs == sorted(costs)

    def test_score_shape(self):
        guidance = SearchGuidance()
        space, __ = self._episodes(guidance)
        scores = guidance.score(space)
        assert len(scores) == len(space)
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_unfitted_guidance_raises(self):
        guidance = SearchGuidance()
        with pytest.raises(RuntimeError):
            guidance.score([candidate(":- a.")])

    def test_record_counts(self):
        guidance = SearchGuidance()
        space, __ = self._episodes(guidance)
        assert guidance.n_examples > len(space)
