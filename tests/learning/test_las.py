"""Unit tests for Learning-from-Answer-Sets (plain ASP) tasks.

This is the mode the XACML case study (paper Section IV.C) uses: learn
``decision`` rules from request/response logs, where each log entry is a
context program plus a partial interpretation over decisions.
"""

import pytest

from repro.asp import parse_atom, parse_program
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.errors import UnsatisfiableTaskError
from repro.learning import (
    LASTask,
    ModeAtom,
    ModeBias,
    PartialInterpretation,
    Placeholder,
    learn,
)


def example(decision, context_text):
    other = "deny" if decision == "permit" else "permit"
    return PartialInterpretation(
        inclusions=[parse_atom(f"decision({decision})")],
        exclusions=[parse_atom(f"decision({other})")],
        context=parse_program(context_text),
    )


def xacml_bias():
    return ModeBias(
        head_modes=[ModeAtom(Atom("decision", [Placeholder("verdict")]))],
        body_modes=[
            ModeAtom(Atom("role", [Placeholder("role")])),
            ModeAtom(Atom("action", [Placeholder("action")])),
        ],
        pools={
            "verdict": [Constant("permit"), Constant("deny")],
            "role": [Constant("dba"), Constant("dev")],
            "action": [Constant("read"), Constant("write")],
        },
        max_body=2,
        allow_constraints=False,
        allow_negation=False,
    )


class TestLASLearning:
    def test_learns_role_rule(self):
        space = xacml_bias().generate()
        positives = [
            example("permit", "role(dba). action(write)."),
            example("permit", "role(dba). action(read)."),
            example("deny", "role(dev). action(write)."),
        ]
        # default decision is deny unless a permit rule fires
        background = parse_program("decision(deny) :- not decision(permit).")
        task = LASTask(background, space, positives, negative=[])
        result = learn(task)
        learned = {repr(c.rule) for c in result.candidates}
        assert learned == {"decision(permit) :- role(dba)."}

    def test_learns_conjunction(self):
        space = xacml_bias().generate()
        positives = [
            example("permit", "role(dba). action(read)."),
            example("deny", "role(dba). action(write)."),
            example("deny", "role(dev). action(read)."),
        ]
        background = parse_program("decision(deny) :- not decision(permit).")
        result = learn(LASTask(background, space, positives, []))
        learned = {repr(c.rule) for c in result.candidates}
        assert learned == {"decision(permit) :- role(dba), action(read)."}

    def test_negative_examples_forbid_coverage(self):
        space = xacml_bias().generate()
        background = parse_program("decision(deny) :- not decision(permit).")
        positives = [example("permit", "role(dba). action(read).")]
        negatives = [
            PartialInterpretation(
                inclusions=[parse_atom("decision(permit)")],
                context=parse_program("role(dev). action(read)."),
            )
        ]
        result = learn(LASTask(background, space, positives, negatives))
        learned = next(iter(result.candidates)).rule
        # "permit anyone who reads" would cover the negative; the learner
        # must pick a dba-specific rule instead.
        assert "dba" in repr(learned)

    def test_unsat_when_no_rule_separates(self):
        space = xacml_bias().generate()
        background = parse_program("decision(deny) :- not decision(permit).")
        same_ctx = "role(dba). action(read)."
        task = LASTask(
            background,
            space,
            [example("permit", same_ctx), example("deny", same_ctx)],
            [],
        )
        with pytest.raises(UnsatisfiableTaskError):
            learn(task)

    def test_partial_interpretation_coverage(self):
        pi = PartialInterpretation(
            inclusions=[parse_atom("a")], exclusions=[parse_atom("b")]
        )
        assert pi.covered_by(frozenset({parse_atom("a")}))
        assert not pi.covered_by(frozenset({parse_atom("a"), parse_atom("b")}))
        assert not pi.covered_by(frozenset())


class TestConstraintLAS:
    def test_learning_a_constraint(self):
        from repro.learning import constraint_space

        space = constraint_space(
            [
                Literal(parse_atom("p"), True),
                Literal(parse_atom("q"), True),
            ],
            max_body=2,
        )
        background = parse_program("{ p ; q }.")
        positives = [
            PartialInterpretation(inclusions=[parse_atom("p")]),
            PartialInterpretation(inclusions=[parse_atom("q")]),
        ]
        negatives = [
            PartialInterpretation(
                inclusions=[parse_atom("p"), parse_atom("q")]
            )
        ]
        result = learn(LASTask(background, space, positives, negatives))
        assert repr(result.candidates[0].rule) == ":- p, q."
