"""Unit tests for hypothesis-space generation."""

import pytest

from repro.asp.atoms import Atom, Literal
from repro.asp.parser import parse_atom
from repro.asp.terms import Constant, Variable
from repro.errors import LearningError
from repro.learning import CandidateRule, ModeAtom, ModeBias, Placeholder, constraint_space


def lit(text, positive=True):
    return Literal(parse_atom(text), positive)


class TestConstraintSpace:
    def test_singleton_constraints(self):
        space = constraint_space([lit("a"), lit("b")], max_body=1)
        assert len(space) == 2
        assert all(c.rule.head is None for c in space)

    def test_pairs_included_at_max_body_two(self):
        space = constraint_space([lit("a"), lit("b")], max_body=2)
        assert len(space) == 3  # {a}, {b}, {a, b}

    def test_contradictory_bodies_excluded(self):
        space = constraint_space([lit("a"), lit("a", False)], max_body=2)
        # :- a.  :- not a.  but never :- a, not a.
        assert len(space) == 2

    def test_prod_id_expansion(self):
        space = constraint_space([lit("a")], prod_ids=(0, 1), max_body=1)
        assert {c.prod_id for c in space} == {0, 1}

    def test_cost_equals_body_length(self):
        space = constraint_space([lit("a"), lit("b")], max_body=2)
        costs = sorted(c.cost for c in space)
        assert costs == [1, 1, 2]

    def test_space_cap_enforced(self):
        pool = [lit(f"p{i}") for i in range(30)]
        with pytest.raises(LearningError):
            constraint_space(pool, max_body=3, max_space=100)

    def test_unsafe_negative_variable_excluded(self):
        pool = [Literal(Atom("p", [Variable("X")]), False)]
        assert constraint_space(pool, max_body=1) == []


class TestModeBias:
    def test_placeholder_expansion(self):
        bias = ModeBias(
            body_modes=[ModeAtom(Atom("role", [Placeholder("role")]))],
            pools={"role": [Constant("dba"), Constant("dev")]},
            max_body=1,
            allow_negation=False,
        )
        space = bias.generate()
        bodies = {repr(c.rule.body[0]) for c in space}
        assert bodies == {"role(dba)", "role(dev)"}

    def test_missing_pool_raises(self):
        bias = ModeBias(
            body_modes=[ModeAtom(Atom("role", [Placeholder("nope")]))], max_body=1
        )
        with pytest.raises(LearningError):
            bias.generate()

    def test_heads_from_modeh(self):
        bias = ModeBias(
            head_modes=[ModeAtom(Atom("permit"))],
            body_modes=[ModeAtom(Atom("weekend"))],
            max_body=1,
            allow_constraints=False,
            allow_negation=False,
        )
        space = bias.generate()
        assert len(space) == 1
        assert repr(space[0].rule) == "permit :- weekend."

    def test_constraints_and_rules_mixed(self):
        bias = ModeBias(
            head_modes=[ModeAtom(Atom("permit"))],
            body_modes=[ModeAtom(Atom("weekend"))],
            max_body=1,
            allow_negation=False,
        )
        heads = {repr(c.rule) for c in bias.generate()}
        assert heads == {"permit :- weekend.", ":- weekend."}

    def test_tautology_excluded(self):
        bias = ModeBias(
            head_modes=[ModeAtom(Atom("a"))],
            body_modes=[ModeAtom(Atom("a"))],
            max_body=1,
            allow_constraints=False,
            allow_negation=False,
        )
        assert bias.generate() == []

    def test_negation_doubles_body_pool(self):
        with_neg = ModeBias(body_modes=[ModeAtom(Atom("a"))], max_body=1)
        without = ModeBias(
            body_modes=[ModeAtom(Atom("a"))], max_body=1, allow_negation=False
        )
        assert len(with_neg.generate()) == 2 * len(without.generate())

    def test_annotated_mode_atoms(self):
        mode = ModeAtom(Atom("is", [Constant("alice")]), annotations=(1, 2))
        atoms = mode.instantiate({})
        assert {a.annotation for a in atoms} == {(1,), (2,)}

    def test_unsafe_head_variable_excluded(self):
        bias = ModeBias(
            head_modes=[ModeAtom(Atom("p", [Variable("X")]))],
            body_modes=[ModeAtom(Atom("q"))],
            max_body=1,
            allow_constraints=False,
            allow_negation=False,
        )
        assert bias.generate() == []

    def test_head_variable_bound_by_body(self):
        bias = ModeBias(
            head_modes=[ModeAtom(Atom("p", [Variable("X")]))],
            body_modes=[ModeAtom(Atom("q", [Variable("X")]))],
            max_body=1,
            allow_constraints=False,
            allow_negation=False,
        )
        assert len(bias.generate()) == 1


class TestCandidateRule:
    def test_default_cost_counts_head_and_body(self):
        from repro.asp.parser import parse_rule

        assert CandidateRule(parse_rule("a :- b, c.")).cost == 3
        assert CandidateRule(parse_rule(":- b.")).cost == 1

    def test_equality_by_key(self):
        from repro.asp.parser import parse_rule

        a = CandidateRule(parse_rule(":- b."), prod_id=0)
        b = CandidateRule(parse_rule(":- b."), prod_id=0)
        c = CandidateRule(parse_rule(":- b."), prod_id=1)
        assert a == b and a != c
