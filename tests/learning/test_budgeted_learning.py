"""Resource-governed learning: degraded best-so-far hypotheses."""

import pytest

from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.asg import parse_asg
from repro.errors import BudgetExceededError
from repro.learning import ASGLearningTask, ContextExample, constraint_space, learn
from repro.runtime.budget import Budget

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def make_task():
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    return ASGLearningTask(
        parse_asg(GRAMMAR),
        constraint_space(pool, prod_ids=(0,), max_body=2),
        positive=[
            ContextExample.from_text("allow alice read"),
            ContextExample.from_text("allow bob write"),
        ],
        negative=[
            ContextExample.from_text("allow alice write"),
            ContextExample.from_text("allow bob read"),
        ],
    )


def test_unbudgeted_learning_is_not_degraded():
    result = learn(make_task())
    assert not result.degraded
    assert result.cost == 4


def test_exhausted_budget_returns_degraded_best_so_far():
    result = learn(make_task(), budget=Budget(max_steps=500))
    assert result.degraded
    # a usable (possibly imperfect) hypothesis, not an exception
    assert result.cost >= 0
    assert isinstance(result.candidates, list)


def test_degradation_can_be_disabled():
    with pytest.raises(BudgetExceededError):
        learn(make_task(), budget=Budget(max_steps=500), degrade_on_exhaustion=False)


def test_generous_budget_matches_unbudgeted_result():
    budget = Budget(max_steps=50_000_000)
    governed = learn(make_task(), budget=budget)
    free = learn(make_task())
    assert not governed.degraded
    assert governed.cost == free.cost
    assert budget.steps_used > 0
