"""Tracer core: span nesting, attribution, counters, ambient helpers."""

import pytest

from repro.telemetry import (
    NULL_SPAN,
    InMemoryCollector,
    Metrics,
    Tracer,
    current_tracer,
    incr,
    observe,
    span,
    summarize,
    tracer_scope,
)


def test_span_records_name_attrs_and_duration():
    clock = iter([0.0, 2.5]).__next__
    tracer = Tracer(clock=clock, wall_clock=lambda: 100.0)
    with tracer.span("op", flavour="vanilla") as sp:
        sp.set(extra=1)
    assert len(tracer.spans) == 1
    record = tracer.spans[0]
    assert record["name"] == "op"
    assert record["attrs"] == {"flavour": "vanilla", "extra": 1}
    assert record["duration"] == pytest.approx(2.5)
    assert record["ts"] == 100.0
    assert record["status"] == "ok"


def test_span_nesting_links_parents_and_shares_trace():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            with tracer.span("grandchild") as grandchild:
                assert grandchild.trace_id == root.trace_id
                assert grandchild.parent_id == child.span_id
            assert child.parent_id == root.span_id
    # finished depth-first: grandchild, child, root
    names = [record["name"] for record in tracer.spans]
    assert names == ["grandchild", "child", "root"]
    by_name = {record["name"]: record for record in tracer.spans}
    assert by_name["root"]["parent_id"] is None
    assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
    # ids are deterministic counters, not random
    assert by_name["root"]["span_id"] == 1
    assert by_name["root"]["trace_id"] == 1


def test_sibling_roots_get_fresh_traces():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    first, second = tracer.spans
    assert first["trace_id"] != second["trace_id"]


def test_counters_bubble_to_ancestors_and_tracer_totals():
    tracer = Tracer()
    with tracer_scope(tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                incr("widgets", 3)
                observe("latency", 0.5)
            incr("widgets", 1)
    by_name = {record["name"]: record for record in tracer.spans}
    assert by_name["child"]["counters"] == {"widgets": 3}
    # the root aggregates its subtree
    assert by_name["root"]["counters"] == {"widgets": 4}
    assert tracer.metrics.counters == {"widgets": 4}
    assert by_name["child"]["observations"]["latency"]["count"] == 1


def test_exception_marks_span_error_and_still_exports():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("no")
    record = tracer.spans[0]
    assert record["status"] == "error"
    assert "ValueError" in record["error"]


def test_tracer_scope_installs_and_masks():
    tracer = Tracer()
    assert current_tracer() is None
    with tracer_scope(tracer):
        assert current_tracer() is tracer
        with tracer_scope(None):
            assert current_tracer() is None
            assert span("anything") is NULL_SPAN
        assert current_tracer() is tracer
    assert current_tracer() is None


def test_module_level_span_uses_ambient_tracer():
    tracer = Tracer()
    with tracer_scope(tracer):
        with span("ambient.op") as sp:
            sp.incr("ticks", 2)
    assert tracer.spans[0]["name"] == "ambient.op"
    assert tracer.spans[0]["counters"] == {"ticks": 2}


def test_metrics_observe_aggregates():
    metrics = Metrics()
    for value in (3.0, 1.0, 2.0):
        metrics.observe("v", value)
    assert metrics.observations["v"] == [3, 6.0, 1.0, 3.0]
    merged = Metrics()
    merged.observe("v", 10.0)
    merged.merge_from(metrics)
    assert merged.observations["v"] == [4, 16.0, 1.0, 10.0]


def test_exporter_receives_each_finished_span():
    collector = InMemoryCollector()
    tracer = Tracer(exporters=[collector])
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert [record["name"] for record in collector.spans] == ["b", "a"]


def test_summarize_counts_root_counters_once():
    tracer = Tracer()
    with tracer_scope(tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                incr("events", 5)
    summary = summarize(tracer.spans)
    # bubbled into outer AND present on inner; summarize must not double it
    assert summary["counters"]["events"] == 5
    assert summary["operations"]["inner"]["count"] == 1
    assert summary["operations"]["outer"]["count"] == 1
