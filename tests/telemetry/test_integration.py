"""End-to-end telemetry: decisions link to traces; learning runs trace.

Covers the two ISSUE acceptance criteria:

* a PDP decision's ``DecisionRecord`` carries the trace id of the solve
  that produced it, and that trace contains solver spans;
* running the E3 learning pipeline under a tracer with a JSONL exporter
  produces a trace whose ``summarize()`` report shows named spans for
  ground / solve / learn with nonzero counters.
"""

import pytest

from repro.agenp.interpreters import FieldInterpreter
from repro.agenp.pdp import PolicyDecisionPoint
from repro.agenp.repositories import PolicyRepository, StoredPolicy
from repro.apps.xacml_case_study import XacmlLearningPipeline
from repro.asp.parser import parse_program
from repro.asp.solver import solve
from repro.datasets import default_ground_truth, sample_log
from repro.policy import Decision, Request
from repro.telemetry import (
    JsonlExporter,
    Tracer,
    read_jsonl,
    summarize,
    tracer_scope,
)

CHECK_PROGRAM = parse_program("a :- not b. b :- not a.")


class SolverBackedInterpreter:
    """A field interpreter that consults the ASP solver while compiling.

    Stands in for the solver-backed interpretation path the PDP module
    documents ("an interpreter may run ASG membership or ASP solving"):
    each policy compilation performs one ASP solve, so a traced decision
    has engine spans inside its trace.
    """

    def __init__(self):
        self._inner = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})

    def __call__(self, tokens):
        assert len(solve(CHECK_PROGRAM)) == 2
        return self._inner(tokens)


def test_decision_record_links_to_trace_with_solver_spans():
    repository = PolicyRepository()
    repository.add(StoredPolicy(("allow", "alice", "read")))
    pdp = PolicyDecisionPoint(repository, SolverBackedInterpreter())
    tracer = Tracer()
    with tracer_scope(tracer):
        record = pdp.decide(
            Request({"subject": {"id": "alice"}, "action": {"id": "read"}})
        )
    assert record.decision is Decision.PERMIT
    assert record.trace_id is not None

    decide_spans = [r for r in tracer.spans if r["name"] == "pdp.decide"]
    assert len(decide_spans) == 1
    root = decide_spans[0]
    assert root["trace_id"] == record.trace_id
    assert root["parent_id"] is None
    # the trace the record points at contains the solver's work
    solve_spans = [
        r
        for r in tracer.spans
        if r["name"] == "asp.solve" and r["trace_id"] == record.trace_id
    ]
    assert solve_spans
    assert solve_spans[0]["counters"]["solver.decisions"] >= 1
    # bubbled engine counters are visible on the decision root span
    assert root["counters"]["solver.models"] >= 2
    assert root["counters"]["pdp.decisions"] == 1


def test_degraded_decision_still_carries_trace_id():
    repository = PolicyRepository()
    repository.add(StoredPolicy(("allow", "alice", "read")))
    interpreter = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    pdp = PolicyDecisionPoint(repository, interpreter)
    for _ in range(pdp.breaker.failure_threshold):
        pdp.breaker.record_failure()
    assert not pdp.breaker.allow()
    tracer = Tracer()
    with tracer_scope(tracer):
        record = pdp.decide(
            Request({"subject": {"id": "alice"}, "action": {"id": "read"}})
        )
    assert record.degraded
    assert record.trace_id == tracer.spans[-1]["trace_id"]
    assert tracer.spans[-1]["counters"]["pdp.breaker_rejections"] == 1


def test_e3_pipeline_trace_shows_ground_solve_learn(tmp_path):
    """The ISSUE acceptance criterion, run at bench_e3's small end."""
    path = tmp_path / "e3.jsonl"
    tracer = Tracer(exporters=[JsonlExporter(str(path))])
    ground_truth = default_ground_truth()
    log = sample_log(ground_truth, 40, seed=1)
    with tracer_scope(tracer):
        model = XacmlLearningPipeline().learn(log)
    tracer.close()
    assert model.rules  # learning actually happened

    summary = summarize(read_jsonl(str(path)))
    operations = summary["operations"]
    assert operations["asp.ground"]["count"] >= 1
    assert operations["asp.solve"]["count"] >= 1
    learn_ops = [name for name in operations if name.startswith("learn.")]
    assert learn_ops, f"no learn.* span among {sorted(operations)}"

    counters = summary["counters"]
    assert counters["grounder.rules_grounded"] > 0
    assert counters["grounder.fixpoint_iterations"] > 0
    assert counters["solver.models"] > 0
    assert counters["solver.propagations"] > 0
    assert counters["learner.checks"] > 0
    assert counters["learner.hypotheses_learned"] >= 1
