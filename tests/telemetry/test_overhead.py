"""The no-tracer path must stay no-op cheap (ISSUE acceptance guard).

Instrumented hot paths run unconditionally in production code, so the
cost of *not* tracing matters as much as the fidelity of tracing.  The
contract: outside any ``tracer_scope`` the module-level helpers return
the shared ``NULL_SPAN`` singleton (no allocation) or return after a
single context-variable read, and instrumented engine entry points add
no measurable overhead versus a hand-rolled no-op baseline.
"""

import time

from repro.asp.parser import parse_program
from repro.asp.solver import solve
from repro.telemetry import NULL_SPAN, current_tracer, incr, observe, span


def test_span_outside_scope_is_shared_singleton():
    assert current_tracer() is None
    first = span("asp.solve", atoms=10)
    second = span("earley.recognize")
    assert first is NULL_SPAN
    assert second is NULL_SPAN


def test_null_span_absorbs_full_api():
    with span("anything", flavour="x") as sp:
        sp.set(decision="permit")
        sp.incr("solver.models", 3)
        sp.observe("latency", 0.1)
    assert sp is NULL_SPAN
    assert sp.trace_id is None
    assert sp.parent_id is None
    # ambient helpers are also no-ops
    incr("widgets", 5)
    observe("latency", 1.0)


def test_uninstrumented_overhead_is_negligible():
    """Opening a no-op span must cost on the order of a dict lookup.

    Timing bound is deliberately generous (10x a baseline function
    call) so the test is robust on loaded CI machines while still
    catching accidental per-call allocation or I/O on the no-op path.
    """

    def baseline():
        return None

    n = 20_000
    t0 = time.perf_counter()
    for _ in range(n):
        baseline()
    base = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        with span("x") as sp:
            sp.incr("c")
    traced = time.perf_counter() - t0

    # one ContextVar read + two no-op method calls; never 10x a call
    assert traced < max(base * 10, 0.25)


def test_solver_runs_identically_without_tracer():
    """Instrumented engine code must not change results when untraced."""
    program = parse_program("a :- not b. b :- not a.")
    result = solve(program)
    assert len(result) == 2
    # stats are still collected on the result object (satellite a) ...
    assert result.stats.decisions >= 1
    assert result.stats.models == 2
    # ... but nothing was traced
    assert current_tracer() is None
