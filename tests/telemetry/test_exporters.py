"""JSONL round-trip, summarisation, and the report CLI."""

import json

import pytest

from repro.telemetry import (
    JsonlExporter,
    Tracer,
    format_summary,
    incr,
    read_jsonl,
    summarize,
    tracer_scope,
)
from repro.telemetry.report import main as report_main


def make_trace(path):
    tracer = Tracer(exporters=[JsonlExporter(str(path))])
    with tracer_scope(tracer):
        with tracer.span("asp.solve", atoms=3):
            incr("solver.models", 2)
        with tracer.span("asp.solve", atoms=5):
            incr("solver.models", 1)
        with tracer.span("pdp.decide"):
            pass
    tracer.close()
    return tracer


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = make_trace(path)
    loaded = read_jsonl(str(path))
    assert loaded == tracer.spans
    # round-tripped records summarise identically
    assert summarize(loaded) == summarize(tracer.spans)


def test_summarize_latency_and_counters(tmp_path):
    path = tmp_path / "trace.jsonl"
    make_trace(path)
    summary = summarize(read_jsonl(str(path)))
    assert summary["operations"]["asp.solve"]["count"] == 2
    assert summary["operations"]["pdp.decide"]["count"] == 1
    assert summary["counters"]["solver.models"] == 3
    solve = summary["operations"]["asp.solve"]
    assert 0.0 <= solve["p50"] <= solve["p95"] <= solve["max"]


def test_format_summary_renders_table(tmp_path):
    path = tmp_path / "trace.jsonl"
    make_trace(path)
    text = format_summary(summarize(read_jsonl(str(path))))
    assert "asp.solve" in text
    assert "solver.models" in text
    assert "p95" in text


def test_report_cli_table_and_json(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    make_trace(path)
    assert report_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "asp.solve" in out
    assert "solver.models" in out

    assert report_main([str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counters"]["solver.models"] == 3


def test_report_cli_missing_file(tmp_path, capsys):
    missing = tmp_path / "nope.jsonl"
    assert report_main([str(missing)]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_jsonl_exporter_accepts_open_file(tmp_path):
    path = tmp_path / "stream.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        exporter = JsonlExporter(handle)
        exporter.export({"name": "x", "parent_id": None})
        exporter.close()  # must not close a stream it does not own
        assert not handle.closed
    assert read_jsonl(str(path)) == [{"name": "x", "parent_id": None}]
