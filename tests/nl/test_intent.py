"""Unit tests for the controlled-English intent parser."""

import pytest

from repro.nl import Intent, IntentParseError, Vocabulary, parse_intent, parse_intents


@pytest.fixture
def vocabulary():
    return Vocabulary(
        subjects={
            "medic": ["medics", "medical team"],
            "drone": ["drones", "uav", "uavs"],
        },
        actions={
            "transmit": ["transmitting", "broadcast", "send data"],
            "enter_zone": ["enter the zone", "zone entry"],
        },
        conditions={
            "jamming": ["jamming", "the adversary is jamming"],
            "emergency": ["an emergency", "emergencies"],
        },
    )


class TestPermittingIntents:
    def test_allow_lead(self, vocabulary):
        intent = parse_intent("Allow medics to transmit.", vocabulary)
        assert intent == Intent(True, "medic", "transmit")

    def test_may_marker(self, vocabulary):
        intent = parse_intent("Drones may enter the zone.", vocabulary)
        assert intent.permitted and intent.subject == "drone"
        assert intent.action == "enter_zone"

    def test_synonym_resolution(self, vocabulary):
        intent = parse_intent("Permit the medical team to broadcast", vocabulary)
        assert intent == Intent(True, "medic", "transmit")


class TestForbiddingIntents:
    def test_must_not(self, vocabulary):
        intent = parse_intent("Drones must not transmit.", vocabulary)
        assert intent == Intent(False, "drone", "transmit")

    def test_forbid_lead(self, vocabulary):
        intent = parse_intent("Forbid drones from transmitting", vocabulary)
        assert not intent.permitted

    def test_deny_lead(self, vocabulary):
        intent = parse_intent("Deny uavs zone entry", vocabulary)
        assert intent == Intent(False, "drone", "enter_zone")


class TestConditions:
    def test_while_clause(self, vocabulary):
        intent = parse_intent(
            "Drones must not transmit while the adversary is jamming", vocabulary
        )
        assert intent.condition == "jamming"
        assert not intent.condition_negated

    def test_unless_clause(self, vocabulary):
        intent = parse_intent(
            "Drones must not enter the zone unless an emergency", vocabulary
        )
        assert intent.condition == "emergency"
        assert intent.condition_negated

    def test_when_clause(self, vocabulary):
        intent = parse_intent("Allow medics to transmit when jamming", vocabulary)
        assert intent.permitted and intent.condition == "jamming"

    def test_unknown_condition_rejected(self, vocabulary):
        with pytest.raises(IntentParseError):
            parse_intent("Drones must not transmit while raining", vocabulary)


class TestErrors:
    def test_unknown_subject(self, vocabulary):
        with pytest.raises(IntentParseError):
            parse_intent("Allow tanks to transmit", vocabulary)

    def test_unknown_action(self, vocabulary):
        with pytest.raises(IntentParseError):
            parse_intent("Allow medics to dance", vocabulary)

    def test_no_modality(self, vocabulary):
        with pytest.raises(IntentParseError):
            parse_intent("Medics transmit", vocabulary)

    def test_empty_sentence(self, vocabulary):
        with pytest.raises(IntentParseError):
            parse_intent("   ", vocabulary)


class TestBatch:
    def test_parse_intents(self, vocabulary):
        intents = parse_intents(
            ["Allow medics to transmit", "Drones must not transmit while jamming"],
            vocabulary,
        )
        assert len(intents) == 2
        assert intents[0].permitted and not intents[1].permitted

    def test_describe_roundtrips_meaning(self, vocabulary):
        intent = parse_intent(
            "Drones must not transmit while jamming", vocabulary
        )
        assert intent.describe() == "drone must not transmit while jamming"
