"""Unit tests for intent -> ASG synthesis."""

import pytest

from repro.asp import parse_program
from repro.asg import accepts, generate_policies
from repro.nl import GrammarSynthesizer, Vocabulary, parse_intents


@pytest.fixture
def vocabulary():
    return Vocabulary(
        subjects={"medic": [], "drone": ["uav"]},
        actions={"transmit": [], "move": []},
        conditions={"jamming": []},
    )


@pytest.fixture
def synthesizer(vocabulary):
    return GrammarSynthesizer(vocabulary)


class TestGrammarSynthesis:
    def test_grammar_covers_vocabulary(self, synthesizer):
        model = synthesizer.synthesize([])
        policies = set(generate_policies(model.asg))
        assert policies == {
            ("allow", subject, action)
            for subject in ("medic", "drone")
            for action in ("transmit", "move")
        }

    def test_forbidding_intent_compiles_to_constraint(self, synthesizer, vocabulary):
        intents = parse_intents(["Drones must not transmit"], vocabulary)
        model = synthesizer.synthesize(intents)
        assert len(model.compiled_constraints) == 1
        assert not accepts(model.asg, ("allow", "drone", "transmit"))
        assert accepts(model.asg, ("allow", "drone", "move"))
        assert accepts(model.asg, ("allow", "medic", "transmit"))

    def test_conditional_intent_respects_context(self, synthesizer, vocabulary):
        intents = parse_intents(
            ["Drones must not transmit while jamming"], vocabulary
        )
        model = synthesizer.synthesize(intents)
        assert accepts(model.asg, ("allow", "drone", "transmit"))
        jammed = model.asg.with_context(parse_program("jamming."))
        assert not accepts(jammed, ("allow", "drone", "transmit"))

    def test_unless_intent_negates_condition(self, synthesizer, vocabulary):
        intents = parse_intents(
            ["Drones must not move unless jamming"], vocabulary
        )
        model = synthesizer.synthesize(intents)
        # forbidden in the default context, permitted under jamming
        assert not accepts(model.asg, ("allow", "drone", "move"))
        jammed = model.asg.with_context(parse_program("jamming."))
        assert accepts(jammed, ("allow", "drone", "move"))

    def test_permitting_intents_compile_to_nothing(self, synthesizer, vocabulary):
        intents = parse_intents(["Allow medics to transmit"], vocabulary)
        model = synthesizer.synthesize(intents)
        assert model.compiled_constraints == []

    def test_hypothesis_space_spans_conditions(self, synthesizer):
        model = synthesizer.synthesize([])
        texts = {repr(c.rule) for c in model.hypothesis_space}
        assert any("jamming" in t for t in texts)
        assert all(c.prod_id == 0 for c in model.hypothesis_space)


class TestSynthesisThenLearning:
    def test_synthesized_model_is_learnable(self, synthesizer, vocabulary):
        """The full Section III.B pipeline: NL intents seed the model,
        examples refine it."""
        from repro.core import Context, GenerativePolicyModel, LabeledExample, learn_gpm

        intents = parse_intents(["Drones must not transmit while jamming"], vocabulary)
        synthesized = synthesizer.synthesize(intents)
        model = GenerativePolicyModel(synthesized.asg)
        jamming = Context.from_text("jamming.", name="jam")
        examples = [
            LabeledExample(("allow", "medic", "move")),
            # new knowledge not in the intents: medics never transmit
            LabeledExample(("allow", "medic", "transmit"), valid=False),
        ]
        learned, __ = learn_gpm(model, synthesized.hypothesis_space, examples)
        assert not learned.valid(("allow", "medic", "transmit"))
        # the NL-compiled constraint is still enforced
        assert not learned.valid(("allow", "drone", "transmit"), jamming)
