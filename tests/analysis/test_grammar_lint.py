"""Unit tests for the grammar linter (GRM001–GRM003) and strict mode."""

import pytest

from repro.analysis.grammar_lint import lint_cfg
from repro.errors import GrammarError
from repro.grammar.cfg import CFG, Production
from repro.grammar.cfg_parser import parse_cfg


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestStrictFlag:
    def test_strict_default_still_raises(self):
        with pytest.raises(GrammarError):
            CFG({"s", "orphan"}, {"x"}, [Production("s", ["x"])], "s")

    def test_lenient_constructs_and_lints(self):
        cfg = CFG({"s", "orphan"}, {"x"}, [Production("s", ["x"])], "s", strict=False)
        found = lint_cfg(cfg, source="g.cfg")
        assert "GRM001" in codes(found)  # orphan unreachable
        assert "GRM002" in codes(found)  # orphan has no productions

    def test_parse_cfg_threads_strict(self):
        # 'dangling' is referenced but the only production chain for it
        # exists; use a nonterminal with no productions via strict=False
        text = 's -> "a" | t\nt -> "b"'
        cfg = parse_cfg(text, strict=False)
        assert lint_cfg(cfg) == []


class TestLints:
    def test_clean_grammar(self):
        cfg = parse_cfg('s -> "a" s | "a"')
        assert lint_cfg(cfg) == []

    def test_unreachable_nonterminal(self):
        cfg = parse_cfg('s -> "a"\nother -> "b"', strict=False)
        found = [d for d in lint_cfg(cfg) if d.code == "GRM001"]
        assert len(found) == 1
        assert "other" in found[0].message

    def test_unproductive_recursive_nonterminal(self):
        # loop never reaches a terminal string
        cfg = parse_cfg('s -> "a" | loop\nloop -> loop "x"', strict=False)
        found = [d for d in lint_cfg(cfg) if d.code == "GRM002"]
        assert len(found) == 1
        assert "loop" in found[0].message

    def test_empty_language_is_error(self):
        cfg = parse_cfg("s -> s s", strict=False)
        found = [d for d in lint_cfg(cfg) if d.code == "GRM003"]
        assert len(found) == 1
        assert found[0].is_error
        assert "empty" in found[0].message


class TestSets:
    def test_reachable_set(self):
        cfg = parse_cfg('s -> "a" t\nt -> "b"\nu -> "c"', strict=False)
        assert cfg.reachable_set() == {"s", "t", "a", "b"}

    def test_generating_set(self):
        cfg = parse_cfg('s -> "a" | loop\nloop -> loop "x"', strict=False)
        assert cfg.generating_set() == {"s"}
