"""Unit tests for the ASG linter (ASG001–ASG002) and lenient construction."""

import pytest

from repro.analysis.asg_lint import lint_asg
from repro.asg.annotated import ASG, annotation_violations
from repro.asg.asg_parser import parse_asg
from repro.asp.parser import parse_program
from repro.errors import GrammarError
from repro.grammar.cfg import CFG, Production


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


CLEAN = """
policy -> "allow" subject {
    ok :- is_alice@2.
}
policy -> "deny" subject
subject -> "alice" { is_alice. }
subject -> "bob" { is_bob. }
"""


class TestCleanGrammar:
    def test_no_findings(self):
        asg = parse_asg(CLEAN)
        assert lint_asg(asg) == []


class TestAnnotationRange:
    def _bad_asg(self):
        cfg = CFG({"s", "t"}, {"a"}, [Production("s", ["t"]), Production("t", ["a"])], "s")
        program = parse_program("ok :- val@3.")  # rhs has length 1
        return cfg, program

    def test_strict_default_raises(self):
        cfg, program = self._bad_asg()
        with pytest.raises(GrammarError):
            ASG(cfg, {0: program})

    def test_lenient_reports_asg001(self):
        cfg, program = self._bad_asg()
        asg = ASG(cfg, {0: program}, strict=False)
        found = [d for d in lint_asg(asg) if d.code == "ASG001"]
        assert len(found) == 1
        assert found[0].is_error
        assert "1..1" in found[0].message

    def test_annotation_violations_lists_all(self):
        cfg, program = self._bad_asg()
        assert len(annotation_violations(cfg.production(0), program)) == 1


class TestAnnotationDefinedness:
    def test_terminal_child_reference(self):
        asg = parse_asg(
            'policy -> "allow" subject { ok :- is_alice@1. }\n'
            'subject -> "alice" { is_alice. }'
        )
        found = [d for d in lint_asg(asg) if d.code == "ASG002"]
        assert len(found) == 1
        assert "terminal" in found[0].message

    def test_undefined_predicate_in_child(self):
        asg = parse_asg(
            'policy -> "allow" subject { ok :- ghost@2. }\n'
            'subject -> "alice" { is_alice. }'
        )
        found = [d for d in lint_asg(asg) if d.code == "ASG002"]
        assert len(found) == 1
        assert "ghost" in found[0].message
        assert "subject" in found[0].message

    def test_production_source_labels_findings(self):
        asg = parse_asg(
            'policy -> "allow" subject { ok :- ghost@2. }\n'
            'subject -> "alice" { is_alice. }'
        )
        found = [d for d in lint_asg(asg, source="demo.asg") if d.code == "ASG002"]
        assert found[0].source.startswith("demo.asg: production 0")


class TestEmbeddedLints:
    def test_grammar_lints_included(self):
        asg = parse_asg(CLEAN + '\norphan -> "x"', strict=False)
        assert "GRM001" in codes(lint_asg(asg))

    def test_rule_local_asp_lints_included(self):
        asg = parse_asg(
            'policy -> "go" { p(X) :- not q(X). }'
        )
        assert "ASP001" in codes(lint_asg(asg))

    def test_unannotated_predicates_not_flagged_across_productions(self):
        # definedness lints must NOT fire inside annotation programs:
        # predicates may come from sibling productions or context programs
        found = lint_asg(parse_asg(CLEAN))
        assert "ASP003" not in codes(found)
        assert "ASP004" not in codes(found)


class TestParserStrictFlag:
    def test_parse_asg_lenient_defers_defects(self):
        text = 's -> "a" { ok :- x@5. }'
        with pytest.raises(GrammarError):
            parse_asg(text)
        asg = parse_asg(text, strict=False)
        assert "ASG001" in codes(lint_asg(asg))
