"""The stratification/tightness-driven stability-check fast path.

The ISSUE's acceptance criteria live here: on a stratified (and tight)
program the solver must return identical answer sets with
``stability_checks == 0`` and ``stability_skips > 0``; on an
unstratified program behaviour must be unchanged (differential test).
"""


from repro.analysis.graphs import check_stratification, has_cycle, tarjan_scc
from repro.asp.grounder import ground_program
from repro.asp.parser import parse_program
from repro.asp.solver import AnswerSetSolver, solve


def models_of(result):
    return sorted(sorted(str(a) for a in m) for m in result)


def differential(text, **kwargs):
    """Solve with and without the fast path; models must be identical."""
    program = parse_program(text)
    fast = solve(program, **kwargs)
    slow = solve(program, use_fast_path=False, **kwargs)
    assert models_of(fast) == models_of(slow)
    assert slow.stats.stability_skips == 0
    return fast


class TestStratifiedPrograms:
    def test_definite_program_skips_all_checks(self):
        result = differential("q(1). q(2). p(X) :- q(X).")
        assert result.stats.stability_checks == 0
        assert result.stats.stability_skips > 0

    def test_stratified_negation_skips(self):
        result = differential("q(1). q(2). r(1). p(X) :- q(X), not r(X).")
        assert result.stats.stability_checks == 0
        assert result.stats.stability_skips > 0
        assert models_of(result) == [["p(2)", "q(1)", "q(2)", "r(1)"]]

    def test_constraints_do_not_disable_fast_path(self):
        result = differential("q(1). q(2). p(X) :- q(X). :- p(2), q(2).")
        assert result.stats.stability_checks == 0
        assert models_of(result) == []  # constraint kills the only candidate


class TestUnstratifiedPrograms:
    def test_even_loop_unchanged(self):
        result = differential("q(1). r(X) :- not s(X), q(X). s(X) :- not r(X), q(X).")
        assert len(result) == 2
        assert result.stats.stability_skips == 0
        assert result.stats.stability_checks > 0

    def test_odd_loop_unchanged(self):
        result = differential("p :- not p.")
        assert models_of(result) == []
        assert result.stats.stability_skips == 0


class TestTightnessGuard:
    def test_surviving_positive_loop_disables_fast_path(self):
        # 'a' is possible at grounding time (not t may hold) but false at
        # runtime, so the p/q loop survives grounding; {t, p, q} is a
        # supported model that is NOT stable.  Skipping here would be wrong.
        result = differential("t. a :- not t. q :- a. p :- q. q :- p.")
        assert models_of(result) == [["t"]]
        assert result.stats.stability_skips == 0
        assert result.stats.stability_checks > 0

    def test_choice_rules_disable_fast_path(self):
        # the choice encoding introduces negative aux cycles
        result = differential("1 { a; b } 1.")
        assert models_of(result) == [["a"], ["b"]]
        assert result.stats.stability_skips == 0

    def test_uses_fast_path_is_cached(self):
        ground = ground_program(parse_program("q(1). p(X) :- q(X)."))
        solver = AnswerSetSolver(ground)
        assert solver.uses_fast_path()
        assert solver._fast_path is True  # decided once
        solver.solve()
        assert solver.stats.stability_checks == 0

    def test_opt_out_flag(self):
        ground = ground_program(parse_program("q(1)."))
        solver = AnswerSetSolver(ground, use_fast_path=False)
        assert not solver.uses_fast_path()
        solver.solve()
        assert solver.stats.stability_checks > 0
        assert solver.stats.stability_skips == 0


class TestStatsPlumbing:
    def test_stability_skips_in_as_dict(self):
        result = solve(parse_program("q(1)."))
        assert "stability_skips" in result.stats.as_dict()


class TestGraphAlgorithms:
    def test_tarjan_components(self):
        sccs = tarjan_scc([1, 2, 3, 4], {1: [2], 2: [1], 3: [4]})
        as_sets = sorted(map(frozenset, sccs), key=sorted)
        assert as_sets == [{1, 2}, {3}, {4}]

    def test_tarjan_deep_chain_no_recursion_error(self):
        n = 50_000
        successors = {i: [i + 1] for i in range(n)}
        assert len(tarjan_scc(range(n + 1), successors)) == n + 1

    def test_has_cycle_self_loop(self):
        assert has_cycle([1], {1: [1]})
        assert not has_cycle([1, 2], {1: [2]})

    def test_check_stratification(self):
        verdict = check_stratification([1, 2], [(1, 2)], [(2, 1)])
        assert not verdict.stratified
        assert verdict.offending_edges == [(2, 1)]
        assert verdict.tight

    def test_tightness_detected(self):
        verdict = check_stratification([1, 2], [(1, 2), (2, 1)], [])
        assert verdict.stratified
        assert not verdict.tight
