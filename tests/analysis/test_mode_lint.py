"""Unit tests for the learning-task linter (MB001–MB002)."""

import pytest

from repro.analysis.mode_lint import lint_task
from repro.asg.asg_parser import parse_asg
from repro.asp.atoms import Atom
from repro.asp.parser import parse_program, parse_rule
from repro.learning.mode_bias import CandidateRule
from repro.learning.tasks import (
    ASGLearningTask,
    ContextExample,
    LASTask,
    PartialInterpretation,
)


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def las_task(hypothesis_rules, background="", positive=(), negative=()):
    return LASTask(
        parse_program(background),
        [CandidateRule(parse_rule(text)) for text in hypothesis_rules],
        list(positive),
        list(negative),
    )


class TestLASTask:
    def test_clean_task(self):
        task = las_task(
            ["permit :- role(dba)."],
            background="role(dba).",
            positive=[PartialInterpretation(inclusions=[Atom("permit")])],
        )
        assert lint_task(task) == []

    def test_mb001_heads_never_observed(self):
        task = las_task(
            ["permit :- role(dba)."],
            background="role(dba).",
            positive=[PartialInterpretation(inclusions=[Atom("unrelated")])],
        )
        found = [d for d in lint_task(task) if d.code == "MB001"]
        assert len(found) == 1
        assert "permit" in found[0].message

    def test_mb002_underivable_body(self):
        task = las_task(
            ["permit :- phantom."],
            background="role(dba).",
            positive=[PartialInterpretation(inclusions=[Atom("permit")])],
        )
        found = [d for d in lint_task(task) if d.code == "MB002"]
        assert len(found) == 1
        assert "phantom" in found[0].message

    def test_context_heads_count_as_derivable(self):
        task = las_task(
            ["permit :- emergency."],
            background="role(dba).",
            positive=[
                PartialInterpretation(
                    inclusions=[Atom("permit")],
                    context=parse_program("emergency."),
                )
            ],
        )
        assert [d for d in lint_task(task) if d.code == "MB002"] == []


class TestASGTask:
    def _asg(self):
        return parse_asg(
            'policy -> "allow" subject { allowed :- is_alice@2. }\n'
            'subject -> "alice" { is_alice. }\n'
            'subject -> "bob" { is_bob. }'
        )

    def test_clean_task(self):
        task = ASGLearningTask(
            self._asg(),
            [CandidateRule(parse_rule(":- is_bob@2."), prod_id=0)],
            [ContextExample(("allow", "alice"))],
            [ContextExample(("allow", "bob"))],
        )
        assert lint_task(task) == []

    def test_mb001_bad_production_id(self):
        task = ASGLearningTask(
            self._asg(),
            [CandidateRule(parse_rule(":- is_bob@2."), prod_id=99)],
            [],
            [],
        )
        found = [d for d in lint_task(task) if d.code == "MB001"]
        assert len(found) == 1
        assert found[0].is_error
        assert "99" in found[0].message

    def test_mb002_underivable_body(self):
        task = ASGLearningTask(
            self._asg(),
            [CandidateRule(parse_rule(":- never_defined."), prod_id=0)],
            [],
            [],
        )
        found = [d for d in lint_task(task) if d.code == "MB002"]
        assert len(found) == 1
        assert "never_defined" in found[0].message


class TestDispatch:
    def test_non_task_raises_type_error(self):
        with pytest.raises(TypeError):
            lint_task(object())


class TestLearnerIntegration:
    def test_ilasp_learner_populates_diagnostics(self):
        from repro.learning.ilasp import ILASPLearner

        task = las_task(
            ["permit :- phantom.", "permit :- role(dba)."],
            background="role(dba).",
            positive=[PartialInterpretation(inclusions=[Atom("permit")])],
        )
        learner = ILASPLearner(task)
        learner.learn()
        assert "MB002" in codes(learner.diagnostics)

    def test_decomposable_learner_populates_diagnostics(self):
        from repro.learning.decomposable import DecomposableLearner

        task = las_task(
            ["permit :- phantom.", "permit :- role(dba)."],
            background="role(dba).",
            positive=[PartialInterpretation(inclusions=[Atom("permit")])],
        )
        learner = DecomposableLearner(task)
        learner.learn()
        assert "MB002" in codes(learner.diagnostics)
