"""Unit tests for the diagnostics core: records, collector, renderers."""

import json

import pytest

from repro.analysis.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    DiagnosticCollector,
    diagnostics_from_json,
)
from repro.errors import Span


class TestSpan:
    def test_end_defaults_to_start(self):
        span = Span(3, 7)
        assert (span.end_line, span.end_col) == (3, 7)

    def test_round_trip(self):
        span = Span(1, 2, 4, 9)
        assert Span.from_dict(span.as_dict()) == span

    def test_equality_and_hash(self):
        assert Span(1, 2) == Span(1, 2)
        assert Span(1, 2) != Span(1, 3)
        assert hash(Span(1, 2, 1, 5)) == hash(Span(1, 2, 1, 5))


class TestDiagnostic:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Diagnostic("ASP001", "fatal", "boom")

    def test_is_error(self):
        assert Diagnostic("X001", ERROR, "m").is_error
        assert not Diagnostic("X001", WARNING, "m").is_error
        assert not Diagnostic("X001", INFO, "m").is_error

    def test_format_includes_code_span_and_hint(self):
        diag = Diagnostic(
            "ASP001",
            ERROR,
            "unsafe rule",
            span=Span(4, 2),
            source="policy.lp",
            hint="bind the variable",
        )
        text = diag.format()
        assert "policy.lp:4:2" in text
        assert "error[ASP001]" in text
        assert "unsafe rule" in text
        assert "bind the variable" in text

    def test_format_without_span_or_source(self):
        text = Diagnostic("GRM001", WARNING, "unreachable").format()
        assert text.startswith("<program>: warning[GRM001]")

    def test_dict_round_trip(self):
        diag = Diagnostic(
            "ASP002", WARNING, "unstratified", span=Span(2, 5), source="x.lp"
        )
        assert Diagnostic.from_dict(diag.as_dict()) == diag

    def test_with_source(self):
        diag = Diagnostic("ASP003", WARNING, "undefined").with_source("a.lp")
        assert diag.source == "a.lp"


class TestCollector:
    def _collector(self):
        collector = DiagnosticCollector()
        collector.add(Diagnostic("B001", WARNING, "warn", span=Span(9, 1)))
        collector.add(Diagnostic("A001", ERROR, "err", span=Span(1, 1)))
        collector.add(Diagnostic("C001", INFO, "note"))
        return collector

    def test_counts_and_severity_buckets(self):
        collector = self._collector()
        assert len(collector) == 3
        assert collector.counts() == {"error": 1, "warning": 1, "info": 1}
        assert [d.code for d in collector.errors] == ["A001"]
        assert [d.code for d in collector.warnings] == ["B001"]
        assert [d.code for d in collector.infos] == ["C001"]
        assert collector.has_errors()

    def test_empty_collector_is_falsy(self):
        collector = DiagnosticCollector()
        assert not collector
        assert not collector.has_errors()

    def test_render_text_has_summary_line(self):
        text = self._collector().render_text()
        assert "1 error(s), 1 warning(s), 1 info(s)" in text

    def test_render_json_round_trips(self):
        collector = self._collector()
        payload = json.loads(collector.render_json())
        assert payload["counts"] == {"error": 1, "warning": 1, "info": 1}
        restored = diagnostics_from_json(collector.render_json())
        assert sorted(restored, key=lambda d: d.code) == sorted(
            collector, key=lambda d: d.code
        )

    def test_from_json_accepts_bare_list(self):
        diags = [Diagnostic("A001", ERROR, "err")]
        text = json.dumps([d.as_dict() for d in diags])
        assert list(diagnostics_from_json(text)) == diags

    def test_sorted_orders_by_source_then_span(self):
        ordered = self._collector().sorted()
        spans = [d.span.line if d.span else 0 for d in ordered]
        assert spans == sorted(spans)
