"""Tests for the ``python -m repro.analysis`` CLI."""

import json

import pytest

from repro.analysis.cli import lint_path, main
from repro.analysis.diagnostics import diagnostics_from_json

BAD_LP = """\
r(X) :- not s(X), q(X).
s(X) :- not r(X), q(X).
q(1).
bad(Y) :- not q(Y).
uses(Z) :- nothing(Z).
"""


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.lp"
    path.write_text(BAD_LP)
    return path


class TestLintCommand:
    def test_acceptance_criteria(self, bad_file, capsys):
        """Unstratified + unsafe + undefined => >= 3 distinct codes, spans,
        nonzero exit, and JSON that round-trips (the ISSUE's CLI check)."""
        exit_code = main(["lint", str(bad_file)])
        out = capsys.readouterr().out
        assert exit_code == 1
        for code in ("ASP001", "ASP002", "ASP003"):
            assert code in out
        # spans rendered as file:line:col
        assert f"{bad_file}:4:1" in out  # the unsafe rule
        assert f"{bad_file}:1:13" in out  # the 'not s(X)' literal

        exit_code = main(["lint", str(bad_file), "--format", "json"])
        json_out = capsys.readouterr().out
        assert exit_code == 1
        payload = json.loads(json_out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert {"ASP001", "ASP002", "ASP003"} <= codes
        restored = diagnostics_from_json(json_out)
        assert len(restored) == len(payload["diagnostics"])

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "good.lp"
        path.write_text("q(1).\n")
        assert main(["lint", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "warn.lp"
        path.write_text("p :- not q. q :- not p.\n")
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ASP002" in out

    def test_syntax_error_becomes_diagnostic(self, tmp_path, capsys):
        path = tmp_path / "broken.lp"
        path.write_text("p(X :- q.\n")
        assert main(["lint", str(path)]) == 1
        assert "SYN001" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "/no/such/file.lp"]) == 2

    def test_directory_recursion(self, tmp_path, bad_file, capsys):
        sub = tmp_path / "nested"
        sub.mkdir()
        (sub / "extra.lp").write_text("only(Y) :- not some(Y).\n")
        (tmp_path / "ignored.txt").write_text("not a policy")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.lp" in out
        assert "extra.lp" in out
        assert "ignored.txt" not in out


class TestDispatch:
    def test_cfg_file(self, tmp_path):
        path = tmp_path / "g.cfg"
        path.write_text('s -> "a"\norphan -> "b"\n')
        found = lint_path(path)
        assert {d.code for d in found} == {"GRM001"}

    def test_asg_file(self, tmp_path):
        path = tmp_path / "g.asg"
        path.write_text('s -> "a" { ok :- ghost@9. }\n')
        codes = {d.code for d in lint_path(path)}
        assert "ASG001" in codes

    def test_grammar_syntax_error(self, tmp_path):
        path = tmp_path / "g.cfg"
        path.write_text("this is not a grammar\n")
        assert [d.code for d in lint_path(path)] == ["SYN001"]
