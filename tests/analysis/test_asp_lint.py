"""Unit tests for the ASP linter (ASP001–ASP007) and stratification."""

from repro.analysis.asp_lint import lint_program, lint_rules, stratification
from repro.asp.parser import parse_program


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def by_code(diagnostics, code):
    return [d for d in diagnostics if d.code == code]


class TestCleanPrograms:
    def test_empty_program(self):
        assert lint_program(parse_program("")) == []

    def test_facts_and_safe_rules(self):
        program = parse_program("q(1). q(2). p(X) :- q(X).")
        assert lint_program(program, roots={"p"}) == []

    def test_stratified_negation_is_clean(self):
        program = parse_program("q(1). p(X) :- q(X), not r(X). r(1).")
        assert lint_program(program, roots={"p"}) == []


class TestUnsafe:
    def test_unsafe_head_variable(self):
        program = parse_program("q(1). p(X, Y) :- q(X).")
        found = by_code(lint_program(program, roots={"p"}), "ASP001")
        assert len(found) == 1
        assert found[0].is_error
        assert "Y" in found[0].message
        assert found[0].span is not None
        assert found[0].span.line == 1

    def test_negation_only_variable_is_unsafe(self):
        program = parse_program("q(1). p :- not r(X).")
        assert "ASP001" in codes(lint_program(program, roots={"p"}))


class TestStratification:
    def test_even_loop_reported_per_edge(self):
        program = parse_program("q(1). r(X) :- q(X), not s(X). s(X) :- q(X), not r(X).")
        found = by_code(lint_program(program, roots={"r", "s"}), "ASP002")
        assert len(found) == 2
        assert all(d.severity == "warning" for d in found)
        assert all(d.span is not None for d in found)

    def test_verdict_object(self):
        verdict = stratification(parse_program("p :- not q. q :- not p."))
        assert not verdict.stratified
        assert len(verdict.offending_edges) == 2

    def test_stratified_and_tight(self):
        verdict = stratification(parse_program("q(1). p(X) :- q(X)."))
        assert verdict.stratified
        assert verdict.tight

    def test_positive_recursion_is_stratified_but_not_tight(self):
        verdict = stratification(
            parse_program("edge(1,2). path(X,Y) :- edge(X,Y). "
                          "path(X,Z) :- path(X,Y), edge(Y,Z).")
        )
        assert verdict.stratified
        assert not verdict.tight


class TestDefinedness:
    def test_undefined_predicate(self):
        program = parse_program("q(1). p(X) :- q(X), mystery(X).")
        found = by_code(lint_program(program, roots={"p"}), "ASP003")
        assert len(found) == 1
        assert "mystery/1" in found[0].message
        assert found[0].span is not None

    def test_unused_predicate_is_info(self):
        program = parse_program("q(1). p(X) :- q(X).")
        found = by_code(lint_program(program), "ASP004")
        assert [d.severity for d in found] == ["info"]
        assert "p/1" in found[0].message

    def test_roots_suppress_unused(self):
        program = parse_program("q(1). p(X) :- q(X).")
        assert by_code(lint_program(program, roots={"p"}), "ASP004") == []


class TestAritiesDuplicatesDead:
    def test_arity_mismatch(self):
        program = parse_program("p(1). p(1, 2). q :- p(3).")
        found = by_code(lint_program(program, roots={"q"}), "ASP005")
        assert len(found) == 1
        assert "1, 2" in found[0].message

    def test_duplicate_rule(self):
        program = parse_program("q(1). p(X) :- q(X). p(X) :- q(X).")
        found = by_code(lint_program(program, roots={"p"}), "ASP006")
        assert len(found) == 1

    def test_trivially_dead_rule(self):
        program = parse_program("q(1). p(X) :- q(X), not q(X).")
        found = by_code(lint_program(program, roots={"p"}), "ASP007")
        assert len(found) == 1
        assert "never fire" in found[0].message


class TestLintRules:
    def test_rule_local_only(self):
        # undefined/unused predicates are NOT reported by lint_rules
        program = parse_program("p(X) :- q(X), mystery(X).")
        assert codes(lint_rules(program)) == []

    def test_source_is_attached(self):
        program = parse_program("p :- q, not q. q.")
        found = lint_rules(program, source="unit 7")
        assert found and all(d.source == "unit 7" for d in found)


class TestChoiceAndConstraints:
    def test_choice_rule_heads_count_as_definitions(self):
        program = parse_program("1 { a; b } 1. :- a, b.")
        assert by_code(lint_program(program, roots={"a", "b"}), "ASP003") == []

    def test_constraint_contributes_no_dependency_edges(self):
        verdict = stratification(parse_program("a. b. :- a, not b."))
        assert verdict.stratified
