"""Unit tests for noise injection and the dataset-filtering mitigation."""

import pytest

from repro.datasets import (
    default_ground_truth,
    filter_low_quality,
    inconsistency_rate,
    inject_flips,
    inject_not_applicable,
    sample_log,
)
from repro.policy import Decision


@pytest.fixture
def log():
    return sample_log(default_ground_truth(), 80, seed=11)


class TestInjection:
    def test_flip_rate_roughly_respected(self, log):
        noisy = inject_flips(log, rate=0.3, seed=1)
        changed = sum(
            1 for a, b in zip(log, noisy) if a.decision != b.decision
        )
        assert 0.15 * len(log) <= changed <= 0.45 * len(log)

    def test_zero_rate_is_identity(self, log):
        assert [e.decision for e in inject_flips(log, 0.0)] == [e.decision for e in log]

    def test_not_applicable_injection(self, log):
        noisy = inject_not_applicable(log, rate=0.25, seed=2)
        count = sum(1 for e in noisy if e.decision is Decision.NOT_APPLICABLE)
        assert count > 0
        assert all(
            e.decision is Decision.NOT_APPLICABLE or e.decision == orig.decision
            for e, orig in zip(noisy, log)
        )

    def test_injection_does_not_mutate_input(self, log):
        before = [e.decision for e in log]
        inject_flips(log, 0.5, seed=3)
        assert [e.decision for e in log] == before


class TestFiltering:
    def test_not_applicable_dropped(self, log):
        noisy = inject_not_applicable(log, rate=0.3, seed=4)
        cleaned = filter_low_quality(noisy)
        assert all(
            e.decision in (Decision.PERMIT, Decision.DENY) for e in cleaned
        )

    def test_majority_resolution(self, log):
        # duplicate the log (consistent) then flip a few in one copy:
        # majority should restore the originals
        noisy = list(log) + list(log) + inject_flips(log, rate=0.2, seed=5)
        cleaned = filter_low_quality(noisy)
        truth = {e.request.key(): e.decision for e in log}
        assert cleaned
        for entry in cleaned:
            assert entry.decision == truth[entry.request.key()]

    def test_exact_ties_dropped(self, log):
        entry = log[0]
        flipped_decision = (
            Decision.DENY if entry.decision is Decision.PERMIT else Decision.PERMIT
        )
        from repro.datasets import LogEntry

        contradictory = [entry, LogEntry(entry.request, flipped_decision)]
        assert filter_low_quality(contradictory) == []

    def test_clean_log_unchanged_as_set(self, log):
        cleaned = filter_low_quality(log)
        assert sorted((e.request.key(), e.decision.value) for e in cleaned) == sorted(
            (e.request.key(), e.decision.value) for e in log
        )


class TestDiagnostics:
    def test_clean_log_has_zero_inconsistency(self, log):
        assert inconsistency_rate(log) == 0.0

    def test_flips_raise_inconsistency(self, log):
        doubled = list(log) + inject_flips(log, rate=0.5, seed=6)
        assert inconsistency_rate(doubled) > 0.2

    def test_empty_log(self):
        assert inconsistency_rate([]) == 0.0
