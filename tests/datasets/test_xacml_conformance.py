"""Unit tests for the synthetic XACML conformance generator."""

import pytest

from repro.datasets import (
    USER_ROLES,
    decision_for,
    default_ground_truth,
    default_schema,
    entry_to_example,
    per_user_ground_truth,
    request_to_context,
    sample_log,
)
from repro.policy import Decision, Request


class TestGroundTruth:
    def test_dba_can_write_db(self):
        request = Request(
            {
                "subject": {"id": "u1", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        assert decision_for(default_ground_truth(), request) is Decision.PERMIT

    def test_guest_denied(self):
        request = Request(
            {
                "subject": {"id": "u5", "role": "guest"},
                "action": {"id": "read"},
                "resource": {"type": "db"},
            }
        )
        assert decision_for(default_ground_truth(), request) is Decision.DENY

    def test_dev_reads_but_not_writes(self):
        base = {
            "subject": {"id": "u3", "role": "dev"},
            "resource": {"type": "file"},
        }
        read = Request({**base, "action": {"id": "read"}})
        write = Request({**base, "action": {"id": "write"}})
        gt = default_ground_truth()
        assert decision_for(gt, read) is Decision.PERMIT
        assert decision_for(gt, write) is Decision.DENY

    def test_per_user_grants(self):
        gt = per_user_ground_truth(["u1"])
        granted = Request(
            {
                "subject": {"id": "u1", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        sibling = Request(
            {
                "subject": {"id": "u2", "role": "dba"},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        assert decision_for(gt, granted) is Decision.PERMIT
        assert decision_for(gt, sibling) is Decision.DENY


class TestSampling:
    def test_log_size_and_determinism(self):
        gt = default_ground_truth()
        log1 = sample_log(gt, 25, seed=7)
        log2 = sample_log(gt, 25, seed=7)
        assert len(log1) == 25
        assert [e.request for e in log1] == [e.request for e in log2]

    def test_roles_coherent_with_users(self):
        for entry in sample_log(default_ground_truth(), 50, seed=3):
            user = entry.request.get("subject", "id")
            assert entry.request.get("subject", "role") == USER_ROLES[user]

    def test_user_restriction(self):
        log = sample_log(default_ground_truth(), 30, seed=1, users=("u1", "u5"))
        assert {e.request.get("subject", "id") for e in log} <= {"u1", "u5"}

    def test_decisions_match_ground_truth(self):
        gt = default_ground_truth()
        for entry in sample_log(gt, 40, seed=5):
            assert entry.decision == decision_for(gt, entry.request)


class TestConversion:
    def test_request_to_context_facts(self):
        request = Request(
            {
                "subject": {"id": "u1", "role": "dba"},
                "action": {"id": "read"},
                "resource": {"type": "db"},
            }
        )
        program = request_to_context(request)
        facts = {repr(f) for f in program.facts()}
        assert facts == {"user(u1)", "role(dba)", "action(read)", "rtype(db)"}

    def test_entry_to_example_inclusions(self):
        gt = default_ground_truth()
        entry = sample_log(gt, 1, seed=2)[0]
        example = entry_to_example(entry)
        included = next(iter(example.inclusions))
        assert included.predicate == "decision"
        assert len(example.exclusions) == 2

    def test_schema_covers_sampled_requests(self):
        schema = default_schema()
        for entry in sample_log(default_ground_truth(), 20, seed=9):
            for category, attribute, value in entry.request.items():
                domain = schema.domain(category, attribute)
                assert domain is not None and domain.contains(value)
