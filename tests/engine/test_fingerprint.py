"""Content-addressing invariants: equal content ⇔ equal fingerprint."""

import pytest

from repro.asp.atoms import Atom, Comparison, Literal
from repro.asp.parser import parse_program
from repro.asp.rules import ChoiceRule, NormalRule, Program, WeakConstraint
from repro.asp.terms import Constant, Integer, Variable
from repro.asg.asg_parser import parse_asg
from repro.engine.fingerprint import (
    combine,
    fingerprint_asg,
    fingerprint_program,
    fingerprint_rule,
    fingerprint_text,
    fingerprint_tokens,
)

ASG_TEXT = """
start -> elem { :- value(2)@1. }
elem -> "x" { value(1). }
elem -> "y" { value(2). }
"""


def test_same_text_same_fingerprint():
    a = parse_program("p(1). q(X) :- p(X), not r(X).")
    b = parse_program("p(1). q(X) :- p(X), not r(X).")
    assert fingerprint_program(a) == fingerprint_program(b)


def test_program_method_matches_function():
    program = parse_program("a :- not b. b :- not a.")
    assert program.fingerprint() == fingerprint_program(program)


def test_rebuilt_program_same_fingerprint():
    parsed = parse_program("q(X) :- p(X). p(1).")
    rebuilt = Program(list(parsed.rules))
    assert fingerprint_program(parsed) == fingerprint_program(rebuilt)


def test_rule_order_changes_fingerprint():
    a = parse_program("a. b.")
    b = parse_program("b. a.")
    assert fingerprint_program(a) != fingerprint_program(b)


def test_any_structural_change_changes_fingerprint():
    base = fingerprint_program(parse_program("q(X) :- p(X), not r(X)."))
    for variant in [
        "q(X) :- p(X), r(X).",  # flipped sign
        "q(X) :- p(Y), not r(X).",  # renamed variable
        "q(X, X) :- p(X), not r(X).",  # changed arity
        "s(X) :- p(X), not r(X).",  # renamed head predicate
        "q(X) :- p(X).",  # dropped literal
    ]:
        assert fingerprint_program(parse_program(variant)) != base


def test_typed_terms_disambiguate():
    # Constant("1") and Integer(1) repr identically; the typed
    # serialization must keep them apart.
    with_const = Program([NormalRule(Atom("p", (Constant("c"),)), [])])
    with_int = Program([NormalRule(Atom("p", (Integer(1),)), [])])
    as_const_1 = Program([NormalRule(Atom("p", (Constant("1"),)), [])])
    fps = {
        fingerprint_program(with_const),
        fingerprint_program(with_int),
        fingerprint_program(as_const_1),
    }
    assert len(fps) == 3


def test_annotation_changes_fingerprint():
    plain = Program([NormalRule(Atom("p"), [])])
    annotated = Program([NormalRule(Atom("p", annotation=(1,)), [])])
    assert fingerprint_program(plain) != fingerprint_program(annotated)


def test_rule_kinds_are_tagged():
    body = [Literal(Atom("p"), True)]
    constraint = Program([NormalRule(None, list(body))])
    choice = Program([ChoiceRule([Atom("q")], list(body), 0, 1)])
    weak = Program([WeakConstraint(list(body), Integer(1), 0)])
    fps = {fingerprint_program(p) for p in (constraint, choice, weak)}
    assert len(fps) == 3


def test_choice_bounds_matter():
    a = Program([ChoiceRule([Atom("q")], [], 0, 1)])
    b = Program([ChoiceRule([Atom("q")], [], 1, 1)])
    assert fingerprint_program(a) != fingerprint_program(b)


def test_comparison_bodies_fingerprint():
    a = parse_program("q(X) :- p(X), X > 1. p(1..3).")
    b = parse_program("q(X) :- p(X), X < 1. p(1..3).")
    assert fingerprint_program(a) != fingerprint_program(b)
    assert fingerprint_program(a) == fingerprint_program(
        parse_program("q(X) :- p(X), X > 1. p(1..3).")
    )


def test_rule_fingerprint_is_stable_across_programs():
    rule = parse_program("q(X) :- p(X).").rules[0]
    same = parse_program("a. q(X) :- p(X).").rules[1]
    assert fingerprint_rule(rule) == fingerprint_rule(same)


def test_asg_fingerprint_stable_and_sensitive():
    a = parse_asg(ASG_TEXT)
    b = parse_asg(ASG_TEXT)
    assert fingerprint_asg(a) == fingerprint_asg(b)
    changed = parse_asg(ASG_TEXT.replace("value(2)", "value(3)"))
    assert fingerprint_asg(a) != fingerprint_asg(changed)


def test_text_and_token_fingerprints():
    assert fingerprint_text("a.") == fingerprint_text("a.")
    assert fingerprint_text("a.") != fingerprint_text("a. ")
    assert fingerprint_tokens(["ab", "c"]) != fingerprint_tokens(["a", "bc"])
    assert fingerprint_tokens(("x", "y")) == fingerprint_tokens(["x", "y"])


def test_combine_is_order_sensitive():
    assert combine("a", "b") != combine("b", "a")
    assert combine("a", 1) == combine("a", 1)
