"""LRU mechanics, budget-aware admission, and telemetry counters."""

from repro.asp.api import solve_text
from repro.engine.caches import LRUCache, SolveCache, admissible
from repro.runtime.budget import Budget, budget_scope
from repro.telemetry import Tracer, tracer_scope


def test_lru_get_put_and_eviction_order():
    cache = LRUCache(2, name="t")
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts the least-recent: "b"
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats.evictions == 1


def test_disabled_cache_stores_nothing():
    cache = LRUCache(0, name="t")
    assert cache.put("a", 1) is False
    assert cache.get("a") is None
    assert len(cache) == 0


def test_stats_counters_and_hit_rate():
    cache = LRUCache(4, name="t")
    cache.put("a", 1)
    cache.get("a")
    cache.get("missing")
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5
    assert cache.stats.as_dict()["hits"] == 1


def test_clear_counts_as_evictions():
    cache = LRUCache(4, name="t")
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.clear() == 2
    assert cache.stats.evictions == 2
    assert len(cache) == 0


def test_admissible_explicit_budget():
    fresh = Budget(max_steps=100)
    assert admissible(fresh)
    spent = Budget(max_steps=1)
    try:
        spent.tick(2)
    except Exception:
        pass
    assert spent.exhausted
    assert not admissible(spent)
    cancelled = Budget()
    cancelled.cancel()
    assert not admissible(cancelled)


def test_admissible_ambient_budget():
    budget = Budget(max_steps=1)
    try:
        budget.tick(2)
    except Exception:
        pass
    with budget_scope(budget):
        assert not admissible()
    assert admissible()


def test_put_rejects_exhausted_budget_results():
    cache = LRUCache(4, name="t")
    budget = Budget()
    budget.cancel()
    assert cache.put("a", 1, budget=budget) is False
    assert cache.get("a") is None
    assert cache.stats.rejected == 1


def test_solve_cache_returns_fresh_equal_results():
    cache = SolveCache(4)
    result = solve_text("a :- not b. b :- not a.")
    assert cache.put_result("k", result)
    hit1 = cache.get_result("k")
    hit2 = cache.get_result("k")
    assert hit1 is not result and hit1 is not hit2
    assert list(hit1) == list(result) == list(hit2)
    assert hit1.stats is result.stats
    # caller-side mutation cannot corrupt the cache
    hit1.append("garbage")
    assert list(cache.get_result("k")) == list(result)


def test_counters_flow_into_telemetry():
    with tracer_scope(Tracer()) as tracer:
        cache = LRUCache(1, name="tele")
        cache.put("a", 1)
        cache.get("a")
        cache.get("nope")
        cache.put("b", 2)  # evicts "a"
    counters = tracer.metrics.counters
    assert counters["cache.tele.hits"] == 1
    assert counters["cache.tele.misses"] == 1
    assert counters["cache.tele.evictions"] == 1
