"""Kwarg alignment across the public solving surface.

The serving API redesign promises one vocabulary everywhere: anything
that grounds or solves accepts ``budget=``; anything that enumerates
models accepts ``max_models=``; anything touching the solver accepts
``use_fast_path=``.  These tests pin the signatures *and* exercise the
threading (a flag accepted but dropped would pass a pure signature
check).
"""

import inspect

import pytest

from repro.asp.api import is_satisfiable, is_satisfiable_text, solve_program, solve_text
from repro.asp.parser import parse_program
from repro.asp.solver import SolveResult, solve
from repro.asg import accepting_witness, accepts, parse_asg, tree_answer_sets
from repro.engine import PolicyEngine
from repro.learning.decomposable import DecomposableLearner
from repro.learning.ilasp import ILASPLearner
from repro.learning.tasks import ASGLearningTask, LASTask
from repro.runtime.budget import Budget


def params(func):
    return set(inspect.signature(func).parameters)


@pytest.mark.parametrize(
    "func", [solve, solve_program, solve_text, PolicyEngine.solve, PolicyEngine.solve_text]
)
def test_solver_entrypoints_share_knobs(func):
    assert {"max_models", "budget", "max_steps", "use_fast_path"} <= params(func)


@pytest.mark.parametrize("func", [is_satisfiable, is_satisfiable_text])
def test_satisfiability_entrypoints(func):
    assert {"budget", "use_fast_path"} <= params(func)


@pytest.mark.parametrize(
    "func", [accepts, accepting_witness, PolicyEngine.accepts]
)
def test_membership_entrypoints(func):
    assert {"max_trees", "budget", "use_fast_path"} <= params(func)


def test_tree_answer_sets_knobs():
    assert {"max_models", "budget", "use_fast_path"} <= params(tree_answer_sets)


@pytest.mark.parametrize("cls", [ASGLearningTask, LASTask])
def test_tasks_accept_use_fast_path(cls):
    assert "use_fast_path" in params(cls.__init__)


@pytest.mark.parametrize("cls", [ILASPLearner, DecomposableLearner])
def test_learners_accept_budget(cls):
    assert "budget" in params(cls.__init__)


@pytest.mark.parametrize("func", [solve_text, solve_program, solve])
def test_entrypoints_return_solve_result(func):
    program_or_text = "a. b :- a."
    if func is not solve_text:
        program_or_text = parse_program(program_or_text)
    result = func(program_or_text)
    assert isinstance(result, SolveResult)
    assert isinstance(result, list)  # list-compatible for legacy callers
    assert result.stats.models == len(result) == 1


def test_use_fast_path_is_actually_threaded():
    # a stratified, tight program: the fast path records stability skips;
    # disabling it must reach the solver (skips stay 0)
    text = "p(1..3). q(X) :- p(X)."
    fast = solve_text(text)
    slow = solve_text(text, use_fast_path=False)
    assert list(fast) == list(slow)
    assert fast.stats.stability_skips > 0
    assert slow.stats.stability_skips == 0


def test_budget_is_actually_threaded():
    from repro.errors import BudgetExceededError

    with pytest.raises(BudgetExceededError):
        solve_text(" ".join("{ a%d }." % i for i in range(12)), budget=Budget(max_steps=200))


def test_asg_fast_path_threaded_through_membership():
    asg = parse_asg(
        """
start -> elem { :- value(2)@1. }
elem -> "x" { value(1). }
elem -> "y" { value(2). }
"""
    )
    assert accepts(asg, ("x",), use_fast_path=False) is True
    assert accepts(asg, ("y",), use_fast_path=False) is False


def test_engine_constructor_forwards_pdp_kwargs():
    # budget_factory / strategy / breaker reach the inner PDP untouched
    assert {"budget_factory", "strategy", "breaker"} <= params(
        __import__("repro.agenp.pdp", fromlist=["PolicyDecisionPoint"])
        .PolicyDecisionPoint.__init__
    )
