"""Differential tests: cached serving must be byte-identical to fresh.

Random programs (seeded, reproducible) are solved through a caching
:class:`PolicyEngine` twice and through the plain solver; every answer
set list must match element-for-element, in order, including on
non-stratified programs where the Fages fast path is inapplicable and
on fast-path-disabled runs.
"""

import random

import pytest

from repro.asp.api import solve_text
from repro.asp.solver import solve
from repro.engine import PolicyEngine

ATOMS = ["a", "b", "c", "d", "e"]


def random_program(rng: random.Random, n_rules: int = 7) -> str:
    """A random propositional program; negation makes many of these
    non-stratified (even/odd loops appear regularly)."""
    rules = []
    for _ in range(n_rules):
        head = rng.choice(ATOMS)
        n_body = rng.randint(0, 3)
        body = []
        for _ in range(n_body):
            atom = rng.choice(ATOMS)
            body.append(("not " if rng.random() < 0.5 else "") + atom)
        if body:
            rules.append(f"{head} :- {', '.join(body)}.")
        else:
            rules.append(f"{head}.")
    if rng.random() < 0.5:  # sprinkle a constraint
        atom = rng.choice(ATOMS)
        rules.append(f":- {atom}, not {rng.choice(ATOMS)}.")
    return "\n".join(rules)


@pytest.mark.parametrize("seed", range(25))
def test_cached_solving_matches_fresh(seed):
    text = random_program(random.Random(seed))
    fresh = solve_text(text)
    engine = PolicyEngine()
    cold = engine.solve_text(text)
    warm = engine.solve_text(text)
    assert list(cold) == list(fresh)
    assert list(warm) == list(fresh)  # element-for-element, same order
    assert engine.solve_cache.stats.hits >= 1


@pytest.mark.parametrize("seed", [3, 11, 17])
def test_cached_solving_matches_fresh_without_fast_path(seed):
    text = random_program(random.Random(seed))
    fresh = solve_text(text, use_fast_path=False)
    engine = PolicyEngine()
    cold = engine.solve_text(text, use_fast_path=False)
    warm = engine.solve_text(text, use_fast_path=False)
    assert list(cold) == list(fresh) == list(warm)


def test_non_stratified_even_loop_cached():
    text = "a :- not b. b :- not a."
    engine = PolicyEngine()
    fresh = solve_text(text)
    assert len(fresh) == 2
    assert list(engine.solve_text(text)) == list(fresh)
    assert list(engine.solve_text(text)) == list(fresh)


def test_solver_options_partition_the_cache():
    text = "a :- not b. b :- not a."
    engine = PolicyEngine()
    truncated = engine.solve_text(text, max_models=1)
    assert len(truncated) == 1
    full = engine.solve_text(text)
    assert len(full) == 2  # the max_models=1 entry must not serve this
    assert len(engine.solve_text(text, max_models=1)) == 1
    no_fast = engine.solve_text(text, use_fast_path=False)
    assert list(no_fast) == list(full)


def test_variable_programs_cached():
    text = "p(1..4). q(X) :- p(X), not r(X). r(2)."
    engine = PolicyEngine()
    fresh = solve(engine.parse(text))
    assert list(engine.solve_text(text)) == list(fresh)
    assert list(engine.solve_text(text)) == list(fresh)
    assert engine.ground_cache.stats.misses == 1


def test_equivalent_text_shares_one_entry():
    engine = PolicyEngine()
    engine.solve_text("a.  b :- a.")  # different whitespace, same rules
    engine.solve_text("a. b :- a.")
    # parse cache misses twice (text differs) but the program fingerprint
    # coincides, so grounding and solving happen once
    assert engine.parse_cache.stats.misses == 2
    assert engine.ground_cache.stats.misses + engine.ground_cache.stats.hits == 1
    assert engine.solve_cache.stats.hits == 1


def test_disabled_caches_still_correct():
    text = "a :- not b. b :- not a."
    engine = PolicyEngine(
        parse_cache_size=0, ground_cache_size=0, solve_cache_size=0
    )
    fresh = solve_text(text)
    assert list(engine.solve_text(text)) == list(fresh)
    assert list(engine.solve_text(text)) == list(fresh)
    assert engine.solve_cache.stats.hits == 0
    assert len(engine.solve_cache) == 0
