"""PolicyEngine decision serving: caching, batching, invalidation."""

import pytest

from repro.agenp.interpreters import FieldInterpreter
from repro.agenp.pdp import PolicyDecisionPoint, evaluate_compiled
from repro.agenp.repositories import ContextRepository, PolicyRepository, StoredPolicy
from repro.asg.asg_parser import parse_asg
from repro.core.contexts import Context
from repro.engine import PolicyEngine
from repro.policy.model import Decision, Request
from repro.runtime.budget import Budget


def make_engine(**kwargs):
    repository = PolicyRepository()
    repository.add(StoredPolicy(("allow", "alice", "read")))
    repository.add(StoredPolicy(("deny", "bob", "write")))
    interpreter = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    return PolicyEngine(repository, interpreter, **kwargs), repository


def request(subject="alice", action="read"):
    return Request({"subject": {"id": subject}, "action": {"id": action}})


def test_decide_matches_pdp_and_caches():
    engine, repository = make_engine()
    reference = PolicyDecisionPoint(
        repository, FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    )
    for req in [request(), request("bob", "write"), request("eve", "ls")]:
        assert engine.decide(req).decision == reference.decide(req).decision
    assert engine.decision_cache.stats.misses == 3
    for req in [request(), request("bob", "write")]:
        engine.decide(req)
    assert engine.decision_cache.stats.hits == 2


def test_every_decide_logs_a_record():
    engine, __ = make_engine()
    engine.decide(request())
    engine.decide(request())
    records = engine.pdp.log.records()
    assert len(records) == 2
    assert records[0].record_id != records[1].record_id
    assert records[0].decision == records[1].decision == Decision.PERMIT


def test_policy_update_invalidates_decisions():
    engine, repository = make_engine()
    assert engine.decide(request()).decision == Decision.PERMIT
    repository.add(StoredPolicy(("deny", "alice", "read")))
    # deny-overrides: the new policy must win immediately, not the cache
    assert engine.decide(request()).decision == Decision.DENY
    repository.remove(StoredPolicy(("deny", "alice", "read")))
    assert engine.decide(request()).decision == Decision.PERMIT


def test_context_change_invalidates_decisions():
    contexts = ContextRepository()
    contexts.store(Context.empty("base"))
    contexts.store(Context.empty("field"))
    contexts.set_current("base")
    engine, __ = make_engine(contexts=contexts)
    engine.decide(request())
    assert engine.decision_cache.stats.misses == 1
    engine.decide(request())
    assert engine.decision_cache.stats.hits == 1
    contexts.set_current("field")
    engine.decide(request())  # repository generation moved: cache purged
    assert engine.decision_cache.stats.misses == 2


def test_distinct_contexts_are_distinct_keys():
    engine, __ = make_engine()
    ctx_a = Context.empty("a")
    engine.decide(request(), ctx_a)
    engine.decide(request(), ctx_a)
    assert engine.decision_cache.stats.hits == 1
    # a context with different content misses even at the same generation
    from repro.asp.parser import parse_program

    ctx_b = Context(parse_program("weekday."), name="b")
    engine.decide(request(), ctx_b)
    assert engine.decision_cache.stats.misses == 2


def test_degraded_decisions_are_not_cached():
    from repro.asp.api import solve_text

    repository = PolicyRepository()
    repository.add(StoredPolicy(("allow", "alice", "read")))
    inner = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    hard = " ".join("{ a%d }." % i for i in range(14))

    def solver_backed(tokens):
        solve_text(hard)  # blows the small per-decision budget below
        return inner(tokens)

    engine = PolicyEngine(
        repository, solver_backed, budget_factory=lambda: Budget(max_steps=500)
    )
    record = engine.decide(request())
    assert record.degraded
    assert len(engine.decision_cache) == 0


def test_decide_many_groups_duplicates():
    engine, __ = make_engine()
    batch = [request()] * 5 + [request("bob", "write")] * 3 + [request()] * 2
    records = engine.decide_many(batch)
    assert [r.decision for r in records] == (
        [Decision.PERMIT] * 5 + [Decision.DENY] * 3 + [Decision.PERMIT] * 2
    )
    # only two unique requests were actually resolved
    assert engine.decision_cache.stats.misses == 2
    assert len(engine.pdp.log) == len(batch)
    # a warm repeat of the same batch is all hits
    engine.decide_many(batch)
    assert engine.decision_cache.stats.misses == 2


def test_decide_many_matches_decide():
    engine_a, __ = make_engine()
    engine_b, __ = make_engine()
    batch = [request(s, a) for s in ("alice", "bob", "eve") for a in ("read", "write")]
    singles = [engine_a.decide(r).decision for r in batch]
    batched = [r.decision for r in engine_b.decide_many(batch)]
    assert singles == batched


def test_decide_many_with_workers():
    engine, __ = make_engine()
    batch = [request(f"user{i % 9}", "read") for i in range(36)]
    records = engine.decide_many(batch, workers=2)
    assert len(records) == 36
    expected = {
        "alice": Decision.PERMIT,
    }
    for req, record in zip(batch, records):
        want = expected.get(req.get("subject", "id"), Decision.DENY)
        assert record.decision == want
    # warm repeat: served from cache entirely
    engine.decide_many(batch, workers=2)
    assert engine.decision_cache.stats.misses == 9


def test_decide_without_pdp_raises():
    engine = PolicyEngine()
    with pytest.raises(ValueError, match="no decision path"):
        engine.decide(request())


def test_evaluate_compiled_matches_pdp_resolution():
    repository = PolicyRepository()
    repository.add(StoredPolicy(("allow", "alice", "read")))
    repository.add(StoredPolicy(("deny", "alice", "read")))
    interpreter = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    pdp = PolicyDecisionPoint(repository, interpreter)
    decision, text = evaluate_compiled(pdp.compiled(), request())
    record = pdp.decide(request())
    assert decision == record.decision == Decision.DENY
    assert text == record.policy_text


def test_membership_cache():
    asg = parse_asg(
        """
start -> elem { :- value(2)@1. }
elem -> "x" { value(1). }
elem -> "y" { value(2). }
"""
    )
    engine = PolicyEngine()
    assert engine.accepts(asg, ("x",)) is True
    assert engine.accepts(asg, ("x",)) is True
    assert engine.accepts(asg, ("y",)) is False
    assert engine.membership_cache.stats.hits == 1
    assert engine.membership_cache.stats.misses == 2


def test_invalidate_clears_everything():
    engine, __ = make_engine()
    engine.solve_text("a.")
    engine.decide(request())
    engine.invalidate()
    assert len(engine.solve_cache) == 0
    assert len(engine.decision_cache) == 0
    assert len(engine.parse_cache) == 0


def test_stats_snapshot():
    engine, __ = make_engine()
    engine.solve_text("a.")
    engine.solve_text("a.")
    engine.decide(request())
    snapshot = engine.stats()
    assert snapshot.caches["solve"]["hits"] == 1
    assert snapshot.caches["decision"]["misses"] == 1
    assert snapshot.decisions == 1
    assert "solve" in repr(snapshot)
    assert snapshot.as_dict()["decisions"] == 1
