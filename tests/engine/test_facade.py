"""The blessed top-level API surface and its deprecation shims."""

import warnings

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_blessed_surface():
    # the serving loop's entry points are all one import away
    assert {
        "PolicyEngine",
        "solve_text",
        "parse_asg",
        "lint_paths",
        "Budget",
        "tracer_scope",
    } <= set(repro.__all__)


def test_facade_solve_text():
    result = repro.solve_text("a :- not b. b :- not a.")
    assert len(result) == 2
    assert result.stats.models == 2  # SolveResult, not a bare list


def test_facade_lint_paths(tmp_path):
    good = tmp_path / "good.lp"
    good.write_text("p(1). q(X) :- p(X).\n")
    diagnostics = repro.lint_paths([good])
    assert all(not d.is_error for d in diagnostics)
    missing = repro.lint_paths([tmp_path / "nope.lp"])
    assert len(missing) == 1 and missing[0].code == "SYN001"


def test_facade_engine_roundtrip():
    engine = repro.PolicyEngine()
    first = engine.solve_text("a. b :- a.")
    second = engine.solve_text("a. b :- a.")
    assert list(first) == list(second)
    assert engine.stats().caches["solve"]["hits"] == 1


@pytest.mark.parametrize("name", ["lint_path", "solve", "Engine"])
def test_deprecated_names_warn_but_work(name):
    with pytest.warns(DeprecationWarning, match=f"repro.{name} is deprecated"):
        value = getattr(repro, name)
    assert value is not None


def test_deprecated_names_resolve_to_canonical_objects():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.analysis import lint_path as canonical_lint_path
        from repro.asp.solver import solve as canonical_solve

        assert repro.Engine is repro.PolicyEngine
        assert repro.lint_path is canonical_lint_path
        assert repro.solve is canonical_solve


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.definitely_not_a_name


def test_deprecated_names_in_dir():
    listing = dir(repro)
    assert "lint_path" in listing and "PolicyEngine" in listing
