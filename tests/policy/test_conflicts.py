"""Unit tests for conflict resolution strategies."""

import pytest

from repro.errors import PolicyError
from repro.policy import (
    ContextualResolver,
    Decision,
    Effect,
    Match,
    Policy,
    Request,
    Target,
    XacmlRule,
    deny_overrides,
    first_applicable,
    permit_overrides,
    priority_based,
    resolve,
)


@pytest.fixture
def conflicting_policies():
    return [
        Policy("allow_dba", [XacmlRule("r", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")]))]),
        Policy("deny_writes", [XacmlRule("r", Effect.DENY, Target([Match("action", "id", "eq", "write")]))]),
    ]


@pytest.fixture
def conflicted_request():
    return Request({"subject": {"role": "dba"}, "action": {"id": "write"}})


class TestStrategies:
    def test_deny_overrides(self, conflicting_policies, conflicted_request):
        assert resolve(conflicting_policies, conflicted_request, deny_overrides) is Decision.DENY

    def test_permit_overrides(self, conflicting_policies, conflicted_request):
        assert (
            resolve(conflicting_policies, conflicted_request, permit_overrides)
            is Decision.PERMIT
        )

    def test_first_applicable_uses_policy_order(self, conflicting_policies, conflicted_request):
        assert (
            resolve(conflicting_policies, conflicted_request, first_applicable)
            is Decision.PERMIT
        )
        reversed_order = list(reversed(conflicting_policies))
        assert resolve(reversed_order, conflicted_request, first_applicable) is Decision.DENY

    def test_priority_based(self, conflicting_policies, conflicted_request):
        prefer_permit = priority_based({"allow_dba": 10, "deny_writes": 1})
        assert resolve(conflicting_policies, conflicted_request, prefer_permit) is Decision.PERMIT
        prefer_deny = priority_based({"allow_dba": 1, "deny_writes": 10})
        assert resolve(conflicting_policies, conflicted_request, prefer_deny) is Decision.DENY

    def test_named_strategy_strings(self, conflicting_policies, conflicted_request):
        assert resolve(conflicting_policies, conflicted_request, "permit-overrides") is Decision.PERMIT
        with pytest.raises(PolicyError):
            resolve(conflicting_policies, conflicted_request, "coin-flip")

    def test_no_hits_not_applicable(self, conflicting_policies):
        request = Request({"subject": {"role": "dev"}, "action": {"id": "read"}})
        assert resolve(conflicting_policies, request) is Decision.NOT_APPLICABLE


class TestContextualResolver:
    def test_context_selects_strategy(self, conflicting_policies, conflicted_request):
        # in emergencies the coalition prefers action (permit-overrides);
        # otherwise it is conservative (deny-overrides) — the paper's
        # "which strategy to adopt depend[s] on the context"
        resolver = ContextualResolver(
            rules=[(lambda ctx: ctx.get("emergency", False), permit_overrides)],
            default=deny_overrides,
        )
        normal = resolver.strategy_for({})
        emergency = resolver.strategy_for({"emergency": True})
        assert resolve(conflicting_policies, conflicted_request, normal) is Decision.DENY
        assert resolve(conflicting_policies, conflicted_request, emergency) is Decision.PERMIT

    def test_first_matching_rule_wins(self):
        resolver = ContextualResolver(
            rules=[
                (lambda ctx: True, permit_overrides),
                (lambda ctx: True, deny_overrides),
            ]
        )
        assert resolver.strategy_for({}) is permit_overrides
