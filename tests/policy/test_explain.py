"""Unit tests for explanations and counterfactuals (paper Section V.B)."""

import pytest

from repro.policy import (
    CategoricalDomain,
    Decision,
    DomainSchema,
    Effect,
    IntegerDomain,
    Match,
    Policy,
    Request,
    Target,
    XacmlRule,
    counterfactuals,
    explain_decision,
)


@pytest.fixture
def schema():
    return DomainSchema(
        {
            ("subject", "role"): CategoricalDomain(["dba", "dev"]),
            ("subject", "income"): IntegerDomain(30, 50),
            ("action", "id"): CategoricalDomain(["read", "write"]),
        }
    )


@pytest.fixture
def policies():
    return [
        Policy(
            "loans",
            [
                XacmlRule(
                    "high_income",
                    Effect.PERMIT,
                    Target([Match("subject", "income", "ge", 45)]),
                ),
                XacmlRule("default_deny", Effect.DENY),
            ],
            combining="first-applicable",
        )
    ]


class TestExplanations:
    def test_denied_explanation_names_rule(self, policies):
        request = Request(
            {"subject": {"role": "dev", "income": 40}, "action": {"id": "read"}}
        )
        explanation = explain_decision(policies, request)
        assert explanation.decision is Decision.DENY
        assert any(rule.rule_id == "default_deny" for __, rule, __d in explanation.fired)
        assert "deny" in explanation.text()

    def test_permitted_explanation_lists_matches(self, policies):
        request = Request(
            {"subject": {"role": "dev", "income": 48}, "action": {"id": "read"}}
        )
        explanation = explain_decision(policies, request)
        assert explanation.decision is Decision.PERMIT
        assert any("income" in repr(m) for m in explanation.relevant_matches)

    def test_no_rules_fired(self):
        narrow = Policy(
            "p",
            [XacmlRule("r", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")]))],
        )
        request = Request({"subject": {"role": "dev"}})
        explanation = explain_decision([narrow], request)
        assert explanation.fired == []
        assert "no rule applied" in explanation.text()


class TestCounterfactuals:
    def test_income_counterfactual(self, policies, schema):
        # the paper's GDPR loan example: denied at 40, permitted at 45
        request = Request(
            {"subject": {"role": "dev", "income": 40}, "action": {"id": "read"}}
        )
        results = counterfactuals(policies, request, schema)
        assert results
        best = results[0]
        assert best.size == 1
        (key, (old, new)) = next(iter(best.changes.items()))
        assert key == ("subject", "income")
        assert old == 40 and new >= 45
        assert best.new_decision is Decision.PERMIT
        assert "income" in best.text()

    def test_counterfactuals_are_minimal(self, policies, schema):
        request = Request(
            {"subject": {"role": "dev", "income": 40}, "action": {"id": "read"}}
        )
        results = counterfactuals(policies, request, schema, max_changes=2)
        sizes = [c.size for c in results]
        assert sizes == sorted(sizes)
        # no counterfactual should change income plus something irrelevant
        assert all(c.size == 1 for c in results if ("subject", "income") in c.changes)

    def test_target_decision_filter(self, policies, schema):
        request = Request(
            {"subject": {"role": "dev", "income": 48}, "action": {"id": "read"}}
        )
        to_deny = counterfactuals(policies, request, schema, target=Decision.DENY)
        assert all(c.new_decision is Decision.DENY for c in to_deny)

    def test_no_counterfactual_when_decision_constant(self, schema):
        constant = [Policy("p", [XacmlRule("r", Effect.DENY)])]
        request = Request(
            {"subject": {"role": "dev", "income": 40}, "action": {"id": "read"}}
        )
        assert counterfactuals(constant, request, schema) == []
