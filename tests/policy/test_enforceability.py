"""Unit tests for enforceability assessment (Section V.A extension)."""

import pytest

from repro.policy import Effect, Match, Policy, Target, XacmlRule
from repro.policy.enforceability import (
    AttributeCapability,
    EnforcementCapability,
    assess_enforceability,
    information_needs,
)


def policy(policy_id, *matches, target_matches=()):
    return Policy(
        policy_id,
        [XacmlRule("r", Effect.PERMIT, Target(list(matches)))],
        target=Target(list(target_matches)),
    )


class TestInformationNeeds:
    def test_collects_rule_and_target_attributes(self):
        p = policy(
            "p",
            Match("subject", "role", "eq", "dba"),
            target_matches=[Match("environment", "zone", "eq", "green")],
        )
        assert information_needs(p) == [
            ("environment", "zone"),
            ("subject", "role"),
        ]

    def test_unconditional_policy_needs_nothing(self):
        assert information_needs(policy("p")) == []

    def test_duplicates_collapsed(self):
        p = policy(
            "p",
            Match("subject", "role", "eq", "dba"),
            Match("subject", "role", "neq", "guest"),
        )
        assert information_needs(p) == [("subject", "role")]


class TestAssessment:
    def test_missing_attribute_blocks_enforcement(self):
        p = policy("p", Match("environment", "threat", "eq", "high"))
        capability = EnforcementCapability({})
        result = assess_enforceability([p], capability)
        assert not result.enforceable("p")
        assert result.missing("p") == [("environment", "threat")]
        assert result.unenforceable_policies() == ["p"]

    def test_available_attributes_enforceable(self):
        p = policy("p", Match("subject", "role", "eq", "dba"))
        capability = EnforcementCapability(
            {("subject", "role"): AttributeCapability()}
        )
        result = assess_enforceability([p], capability)
        assert result.enforceable("p")
        assert result.feasibility("p") == 1.0

    def test_realtime_requirement(self):
        # the paper's example: context acquired only from stale sources
        p = policy("p", Match("environment", "threat", "eq", "high"))
        stale = EnforcementCapability(
            {
                ("environment", "threat"): AttributeCapability(
                    available=True, realtime=False, reliability=0.8
                )
            }
        )
        strict = assess_enforceability([p], stale, require_realtime=True)
        relaxed = assess_enforceability([p], stale, require_realtime=False)
        assert not strict.enforceable("p")
        assert relaxed.enforceable("p")
        assert relaxed.feasibility("p") == pytest.approx(0.8)

    def test_feasibility_multiplies_reliabilities(self):
        p = policy(
            "p",
            Match("subject", "role", "eq", "dba"),
            Match("environment", "threat", "eq", "low"),
        )
        capability = EnforcementCapability(
            {
                ("subject", "role"): AttributeCapability(reliability=0.9),
                ("environment", "threat"): AttributeCapability(reliability=0.5),
            }
        )
        result = assess_enforceability([p], capability)
        assert result.feasibility("p") == pytest.approx(0.45)

    def test_unconditional_policy_always_enforceable(self):
        result = assess_enforceability([policy("p")], EnforcementCapability({}))
        assert result.enforceable("p")
        assert result.feasibility("p") == 1.0
