"""Unit tests for policy quality assessment (paper Section V.A)."""

import pytest

from repro.policy import (
    CategoricalDomain,
    Decision,
    DomainSchema,
    Effect,
    Match,
    Policy,
    Target,
    XacmlRule,
    assess,
    find_conflicts,
    find_coverage_gaps,
    find_irrelevant,
    find_redundant,
    rules_overlap,
)


@pytest.fixture
def schema():
    return DomainSchema(
        {
            ("subject", "role"): CategoricalDomain(["dba", "dev", "guest"]),
            ("action", "id"): CategoricalDomain(["read", "write"]),
        }
    )


def permit(policy_id, *matches):
    return Policy(policy_id, [XacmlRule("r", Effect.PERMIT, Target(list(matches)))])

def deny(policy_id, *matches):
    return Policy(policy_id, [XacmlRule("r", Effect.DENY, Target(list(matches)))])


class TestConflicts:
    def test_overlapping_contradiction_found(self, schema):
        a = permit("a", Match("subject", "role", "eq", "dba"))
        b = deny("b", Match("action", "id", "eq", "write"))
        conflicts = find_conflicts([a, b], schema)
        assert len(conflicts) == 1
        witness = conflicts[0].witness
        assert witness.get("subject", "role") == "dba"
        assert witness.get("action", "id") == "write"

    def test_disjoint_rules_no_conflict(self, schema):
        a = permit("a", Match("subject", "role", "eq", "dba"))
        b = deny("b", Match("subject", "role", "eq", "guest"))
        assert find_conflicts([a, b], schema) == []

    def test_same_effect_no_conflict(self, schema):
        a = permit("a", Match("subject", "role", "eq", "dba"))
        b = permit("b")
        assert find_conflicts([a, b], schema) == []

    def test_within_policy_conflict_only_for_first_applicable(self, schema):
        rules = [
            XacmlRule("r1", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")])),
            XacmlRule("r2", Effect.DENY, Target([Match("action", "id", "eq", "write")])),
        ]
        resolved = Policy("p", rules, combining="deny-overrides")
        masked = Policy("p", rules, combining="first-applicable")
        assert find_conflicts([resolved], schema) == []
        assert len(find_conflicts([masked], schema)) == 1

    def test_paper_crypto_postdoc_example(self, schema):
        # "any member of the Crypto project can modify the libs" vs
        # "a postdoc cannot" — conflict exists iff someone can be both.
        project_schema = DomainSchema(
            {
                ("subject", "project"): CategoricalDomain(["crypto", "other"]),
                ("subject", "position"): CategoricalDomain(["postdoc", "staff"]),
            }
        )
        member = permit("member", Match("subject", "project", "eq", "crypto"))
        postdoc = deny("postdoc", Match("subject", "position", "eq", "postdoc"))
        conflicts = find_conflicts([member, postdoc], project_schema)
        assert len(conflicts) == 1  # a crypto postdoc is possible in this schema

    def test_rules_overlap_none_when_unsatisfiable(self, schema):
        impossible = Policy(
            "x",
            [
                XacmlRule(
                    "r",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("subject", "role", "eq", "dev"),
                        ]
                    ),
                )
            ],
        )
        other = deny("d")
        assert (
            rules_overlap(impossible, impossible.rules[0], other, other.rules[0], schema)
            is None
        )


class TestRelevance:
    def test_unsatisfiable_policy_is_irrelevant(self, schema):
        contradictory = permit(
            "never",
            Match("subject", "role", "eq", "dba"),
            Match("subject", "role", "eq", "dev"),
        )
        assert find_irrelevant([contradictory], schema) == ["never"]

    def test_satisfiable_policy_is_relevant(self, schema):
        assert find_irrelevant([permit("p", Match("subject", "role", "eq", "dba"))], schema) == []

    def test_workload_relevance(self, schema):
        from repro.policy import Request

        policy = permit("guests", Match("subject", "role", "eq", "guest"))
        workload = [Request({"subject": {"role": "dba"}, "action": {"id": "read"}})]
        assert find_irrelevant([policy], schema, workload) == ["guests"]


class TestMinimality:
    def test_subsumed_rule_is_redundant(self, schema):
        policy = Policy(
            "p",
            [
                XacmlRule("broad", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")])),
                XacmlRule(
                    "narrow",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("action", "id", "eq", "read"),
                        ]
                    ),
                ),
            ],
        )
        assert find_redundant([policy], schema) == [("p", "narrow")]

    def test_exact_mode_confirms_semantics(self, schema):
        policy = Policy(
            "p",
            [
                XacmlRule("broad", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")])),
                XacmlRule(
                    "narrow",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("action", "id", "eq", "read"),
                        ]
                    ),
                ),
            ],
        )
        assert find_redundant([policy], schema, exact=True) == [("p", "narrow")]

    def test_order_matters_not_flagged_when_earlier_is_narrower(self, schema):
        policy = Policy(
            "p",
            [
                XacmlRule(
                    "narrow",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("action", "id", "eq", "read"),
                        ]
                    ),
                ),
                XacmlRule("broad", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")])),
            ],
        )
        # syntactic check only flags later-subsumed-by-earlier
        assert find_redundant([policy], schema) == []

    def test_unsatisfiable_rule_is_redundant(self, schema):
        policy = Policy(
            "p",
            [
                XacmlRule("ok", Effect.PERMIT),
                XacmlRule(
                    "never",
                    Effect.DENY,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("subject", "role", "eq", "guest"),
                        ]
                    ),
                ),
            ],
        )
        assert ("p", "never") in find_redundant([policy], schema)


class TestCompleteness:
    def test_gap_found(self, schema):
        only_dba = permit("p", Match("subject", "role", "eq", "dba"))
        gaps = find_coverage_gaps([only_dba], schema)
        assert gaps
        assert all(g.get("subject", "role") != "dba" for g in gaps)

    def test_complete_set_has_no_gaps(self, schema):
        complete = [
            permit("p", Match("subject", "role", "eq", "dba")),
            deny("d"),
        ]
        assert find_coverage_gaps(complete, schema) == []


class TestAssess:
    def test_clean_policy_set_passes(self, schema):
        policies = [
            permit("p", Match("subject", "role", "eq", "dba")),
            deny("d", Match("subject", "role", "eq", "guest")),
            deny("fallback", Match("subject", "role", "eq", "dev")),
        ]
        report = assess(policies, schema)
        assert report.consistent and report.relevant and report.minimal
        assert report.complete
        assert report.ok

    def test_summary_counts(self, schema):
        a = permit("a", Match("subject", "role", "eq", "dba"))
        b = deny("b", Match("subject", "role", "eq", "dba"))
        report = assess([a, b], schema)
        assert report.summary()["conflicts"] == 1
        assert not report.ok
