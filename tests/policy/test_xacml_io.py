"""Unit and property tests for XACML XML serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PolicyValidationError
from repro.policy import Effect, Match, Policy, Target, XacmlRule
from repro.policy.xacml_io import (
    policies_from_xml,
    policies_to_xml,
    policy_from_xml,
    policy_to_xml,
)


def sample_policy():
    return Policy(
        "p1",
        [
            XacmlRule(
                "r1",
                Effect.PERMIT,
                Target([Match("subject", "role", "eq", "dba")]),
                Target([Match("subject", "age", "ge", 30)]),
            ),
            XacmlRule("r2", Effect.DENY),
        ],
        Target([Match("resource", "type", "eq", "db")]),
        "first-applicable",
    )


class TestRoundTrip:
    def test_policy_roundtrip(self):
        policy = sample_policy()
        assert policy_from_xml(policy_to_xml(policy)) == policy

    def test_policy_set_roundtrip(self):
        policies = [sample_policy(), Policy("p2", [XacmlRule("r", Effect.DENY)])]
        parsed = policies_from_xml(policies_to_xml(policies))
        assert parsed == policies

    def test_integer_values_preserved(self):
        policy = Policy(
            "p",
            [XacmlRule("r", Effect.PERMIT, Target([Match("subject", "age", "lt", 18)]))],
        )
        parsed = policy_from_xml(policy_to_xml(policy))
        assert parsed.rules[0].target.matches[0].value == 18

    def test_in_operator_tuple_preserved(self):
        policy = Policy(
            "p",
            [
                XacmlRule(
                    "r",
                    Effect.PERMIT,
                    Target([Match("action", "id", "in", ("read", "write"))]),
                )
            ],
        )
        parsed = policy_from_xml(policy_to_xml(policy))
        assert parsed.rules[0].target.matches[0].value == ("read", "write")

    def test_xml_looks_like_xacml(self):
        text = policy_to_xml(sample_policy())
        assert "<Policy " in text
        assert 'Effect="Permit"' in text
        assert "RuleCombiningAlgId" in text


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(PolicyValidationError):
            policy_from_xml("<Policy")

    def test_wrong_root_tag(self):
        with pytest.raises(PolicyValidationError):
            policy_from_xml("<Thing/>")

    def test_bad_effect(self):
        with pytest.raises(PolicyValidationError):
            policy_from_xml(
                '<Policy PolicyId="p"><Rule RuleId="r" Effect="Maybe"/></Policy>'
            )

    def test_match_missing_attribute(self):
        with pytest.raises(PolicyValidationError):
            policy_from_xml(
                '<Policy PolicyId="p"><Rule RuleId="r" Effect="Deny">'
                "<Target><Match Category=\"subject\">x</Match></Target>"
                "</Rule></Policy>"
            )


_names = st.sampled_from(["role", "id", "type", "age", "zone"])
_categories = st.sampled_from(["subject", "resource", "action", "environment"])
_values = st.one_of(st.integers(min_value=0, max_value=99), st.sampled_from(["a", "b", "dba"]))
_ops = st.sampled_from(["eq", "neq", "lt", "le", "gt", "ge"])


@st.composite
def policies(draw):
    n_rules = draw(st.integers(min_value=1, max_value=3))
    rules = []
    for i in range(n_rules):
        matches = [
            Match(draw(_categories), draw(_names), draw(_ops), draw(_values))
            for __ in range(draw(st.integers(min_value=0, max_value=2)))
        ]
        rules.append(
            XacmlRule(
                f"r{i}",
                draw(st.sampled_from([Effect.PERMIT, Effect.DENY])),
                Target(matches),
            )
        )
    return Policy(
        f"p_{draw(st.integers(min_value=0, max_value=999))}",
        rules,
        combining=draw(st.sampled_from(Policy.COMBINING_ALGORITHMS)),
    )


class TestRoundTripProperty:
    @given(policies())
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_policy_roundtrips(self, policy):
        assert policy_from_xml(policy_to_xml(policy)) == policy
