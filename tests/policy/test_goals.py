"""Unit tests for goal-based policies (Section I's second policy type)."""

import pytest

from repro.errors import PolicyError
from repro.policy.goals import DeadlineGoal, GoalMonitor, ThresholdGoal


class TestThresholdGoal:
    def test_satisfied(self):
        goal = ThresholdGoal("util", "utilization", "ge", 0.5)
        status = goal.evaluate(1, {"utilization": 0.7})
        assert status.satisfied
        assert "meets" in status.detail

    def test_violated(self):
        goal = ThresholdGoal("util", "utilization", "ge", 0.5)
        assert not goal.evaluate(1, {"utilization": 0.3}).satisfied

    def test_missing_metric_violates(self):
        goal = ThresholdGoal("util", "utilization", "ge", 0.5)
        status = goal.evaluate(1, {})
        assert not status.satisfied
        assert "not reported" in status.detail

    @pytest.mark.parametrize(
        "op,value,expected",
        [("gt", 5, False), ("gt", 6, True), ("le", 5, True), ("lt", 5, False)],
    )
    def test_operators(self, op, value, expected):
        goal = ThresholdGoal("g", "m", op, 5)
        assert goal.evaluate(1, {"m": value}).satisfied is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PolicyError):
            ThresholdGoal("g", "m", "approximately", 5)


class TestDeadlineGoal:
    def test_in_progress_before_deadline(self):
        goal = DeadlineGoal("resupply", "delivered", deadline=5)
        assert goal.evaluate(3, {"delivered": False}).satisfied

    def test_completed(self):
        goal = DeadlineGoal("resupply", "delivered", deadline=5)
        assert goal.evaluate(9, {"delivered": True}).satisfied

    def test_missed(self):
        goal = DeadlineGoal("resupply", "delivered", deadline=5)
        status = goal.evaluate(6, {"delivered": False})
        assert not status.satisfied
        assert "missed" in status.detail


class TestGoalMonitor:
    def test_stream_tracking(self):
        monitor = GoalMonitor(
            [
                ThresholdGoal("util", "utilization", "ge", 0.5),
                DeadlineGoal("task", "done", deadline=2),
            ]
        )
        monitor.observe({"utilization": 0.8, "done": False})  # both ok
        monitor.observe({"utilization": 0.4, "done": False})  # util fails
        monitor.observe({"utilization": 0.9, "done": False})  # deadline missed
        assert len(monitor.history) == 6
        assert len(monitor.violations()) == 2
        assert monitor.needs_adaptation()

    def test_compliance_rates(self):
        monitor = GoalMonitor([ThresholdGoal("util", "u", "ge", 1)])
        monitor.observe({"u": 2})
        monitor.observe({"u": 0})
        assert monitor.compliance_rate() == 0.5
        assert monitor.compliance_rate("util") == 0.5

    def test_no_history_is_compliant(self):
        monitor = GoalMonitor([ThresholdGoal("g", "m", "ge", 1)])
        assert monitor.compliance_rate() == 1.0
        assert not monitor.needs_adaptation()

    def test_duplicate_goal_names_rejected(self):
        with pytest.raises(PolicyError):
            GoalMonitor(
                [ThresholdGoal("g", "a", "ge", 1), ThresholdGoal("g", "b", "le", 2)]
            )
