"""Unit tests for risk assessment (Section V.A extension)."""

import pytest

from repro.policy import (
    CategoricalDomain,
    DomainSchema,
    Effect,
    Match,
    Policy,
    Request,
    Target,
    XacmlRule,
)
from repro.policy.risk import RiskModel, assess_risk, constant_harm


@pytest.fixture
def schema():
    return DomainSchema(
        {
            ("subject", "role"): CategoricalDomain(["dba", "guest"]),
            ("action", "id"): CategoricalDomain(["read", "write"]),
        }
    )


@pytest.fixture
def workload(schema):
    return list(schema.all_requests())


def permissive_set():
    return [Policy("open", [XacmlRule("r", Effect.PERMIT)])]


def restrictive_set():
    return [Policy("closed", [XacmlRule("r", Effect.DENY)])]


class TestRiskDirections:
    def test_permissive_set_carries_permit_risk(self, workload):
        model = RiskModel(constant_harm(1.0), constant_harm(1.0))
        result = assess_risk(permissive_set(), workload, model, error_rate=0.1)
        assert result.permitted == len(workload)
        assert result.permissiveness_risk == pytest.approx(0.1 * len(workload))
        assert result.restrictiveness_risk == 0.0

    def test_restrictive_set_carries_deny_risk(self, workload):
        # the paper's example: over-restriction withholds needed information
        model = RiskModel(constant_harm(1.0), constant_harm(2.0))
        result = assess_risk(restrictive_set(), workload, model, error_rate=0.1)
        assert result.denied == len(workload)
        assert result.restrictiveness_risk == pytest.approx(0.2 * len(workload))
        assert result.permissiveness_risk == 0.0

    def test_gaps_contribute_worst_case(self, workload):
        narrow = [
            Policy(
                "narrow",
                [
                    XacmlRule(
                        "r",
                        Effect.PERMIT,
                        Target([Match("subject", "role", "eq", "dba")]),
                    )
                ],
            )
        ]
        model = RiskModel(constant_harm(1.0), constant_harm(3.0))
        result = assess_risk(narrow, workload, model, error_rate=0.1)
        assert result.undecided == 2  # the guest requests
        assert result.total > result.permissiveness_risk

    def test_request_dependent_harm(self, workload):
        def write_harm(request: Request) -> float:
            return 10.0 if request.get("action", "id") == "write" else 1.0

        model = RiskModel(write_harm, constant_harm(0.0))
        result = assess_risk(permissive_set(), workload, model, error_rate=1.0)
        # 2 writes * 10 + 2 reads * 1
        assert result.permissiveness_risk == pytest.approx(22.0)

    def test_zero_error_rate_means_zero_risk(self, workload):
        model = RiskModel(constant_harm(5.0), constant_harm(5.0))
        result = assess_risk(permissive_set(), workload, model, error_rate=0.0)
        assert result.total == 0.0


class TestContextDependentModels:
    def test_different_models_rank_policy_sets_differently(self, workload):
        """The paper: 'different enforceability and risk models for
        different contexts and coalition missions'."""
        cautious = RiskModel(constant_harm(10.0), constant_harm(1.0), "cautious")
        urgent = RiskModel(constant_harm(1.0), constant_harm(10.0), "urgent")
        open_risk_cautious = assess_risk(permissive_set(), workload, cautious).total
        closed_risk_cautious = assess_risk(restrictive_set(), workload, cautious).total
        open_risk_urgent = assess_risk(permissive_set(), workload, urgent).total
        closed_risk_urgent = assess_risk(restrictive_set(), workload, urgent).total
        assert open_risk_cautious > closed_risk_cautious
        assert closed_risk_urgent > open_risk_urgent
