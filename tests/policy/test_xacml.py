"""Unit tests for the XACML-lite model and evaluation."""

import pytest

from repro.errors import PolicyValidationError
from repro.policy import (
    CategoricalDomain,
    Decision,
    DomainSchema,
    Effect,
    IntegerDomain,
    Match,
    Policy,
    Request,
    Target,
    XacmlRule,
    applicable_rules,
    evaluate_policy,
    evaluate_policy_set,
    evaluate_rule,
)


@pytest.fixture
def request_dba_write():
    return Request(
        {
            "subject": {"role": "dba", "age": 35},
            "action": {"id": "write"},
            "resource": {"type": "db"},
        }
    )


class TestMatch:
    def test_eq_match(self, request_dba_write):
        assert Match("subject", "role", "eq", "dba").applies(request_dba_write) is True
        assert Match("subject", "role", "eq", "dev").applies(request_dba_write) is False

    def test_numeric_comparisons(self, request_dba_write):
        assert Match("subject", "age", "ge", 30).applies(request_dba_write) is True
        assert Match("subject", "age", "lt", 30).applies(request_dba_write) is False

    def test_in_operator(self, request_dba_write):
        match = Match("action", "id", "in", ["read", "write"])
        assert match.applies(request_dba_write) is True

    def test_missing_attribute_is_indeterminate(self, request_dba_write):
        assert Match("environment", "zone", "eq", "red").applies(request_dba_write) is None

    def test_type_mismatch_is_indeterminate(self, request_dba_write):
        assert Match("subject", "role", "lt", 5).applies(request_dba_write) is None

    def test_unknown_operator_rejected(self):
        with pytest.raises(PolicyValidationError):
            Match("subject", "role", "matches", "d.*")

    def test_allowed_values(self):
        domain = IntegerDomain(0, 10)
        match = Match("subject", "age", "ge", 7)
        assert match.allowed_values(domain) == (7, 8, 9, 10)


class TestTarget:
    def test_empty_target_matches_all(self, request_dba_write):
        assert Target().applies(request_dba_write) is True

    def test_conjunction(self, request_dba_write):
        target = Target(
            [Match("subject", "role", "eq", "dba"), Match("action", "id", "eq", "write")]
        )
        assert target.applies(request_dba_write) is True

    def test_one_false_match_fails(self, request_dba_write):
        target = Target(
            [Match("subject", "role", "eq", "dba"), Match("action", "id", "eq", "read")]
        )
        assert target.applies(request_dba_write) is False

    def test_false_beats_indeterminate(self, request_dba_write):
        target = Target(
            [
                Match("environment", "zone", "eq", "red"),  # indeterminate
                Match("action", "id", "eq", "read"),  # false
            ]
        )
        assert target.applies(request_dba_write) is False


class TestRuleEvaluation:
    def test_permit_rule(self, request_dba_write):
        rule = XacmlRule("r", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")]))
        assert evaluate_rule(rule, request_dba_write) is Decision.PERMIT

    def test_not_applicable(self, request_dba_write):
        rule = XacmlRule("r", Effect.DENY, Target([Match("subject", "role", "eq", "dev")]))
        assert evaluate_rule(rule, request_dba_write) is Decision.NOT_APPLICABLE

    def test_condition_gates_effect(self, request_dba_write):
        rule = XacmlRule(
            "r",
            Effect.PERMIT,
            Target([Match("subject", "role", "eq", "dba")]),
            condition=Target([Match("subject", "age", "lt", 30)]),
        )
        assert evaluate_rule(rule, request_dba_write) is Decision.NOT_APPLICABLE

    def test_indeterminate_propagates(self, request_dba_write):
        rule = XacmlRule("r", Effect.PERMIT, Target([Match("environment", "zone", "eq", "x")]))
        assert evaluate_rule(rule, request_dba_write) is Decision.INDETERMINATE


class TestCombiningAlgorithms:
    def _policy(self, combining):
        return Policy(
            "p",
            [
                XacmlRule("deny_dba", Effect.DENY, Target([Match("subject", "role", "eq", "dba")])),
                XacmlRule("permit_all", Effect.PERMIT),
            ],
            combining=combining,
        )

    def test_deny_overrides(self, request_dba_write):
        assert evaluate_policy(self._policy("deny-overrides"), request_dba_write) is Decision.DENY

    def test_permit_overrides(self, request_dba_write):
        assert (
            evaluate_policy(self._policy("permit-overrides"), request_dba_write)
            is Decision.PERMIT
        )

    def test_first_applicable(self, request_dba_write):
        assert (
            evaluate_policy(self._policy("first-applicable"), request_dba_write)
            is Decision.DENY
        )

    def test_policy_target_gates(self, request_dba_write):
        policy = Policy(
            "p",
            [XacmlRule("r", Effect.PERMIT)],
            target=Target([Match("subject", "role", "eq", "dev")]),
        )
        assert evaluate_policy(policy, request_dba_write) is Decision.NOT_APPLICABLE

    def test_unknown_combining_rejected(self):
        with pytest.raises(PolicyValidationError):
            Policy("p", [XacmlRule("r", Effect.PERMIT)], combining="weird")

    def test_empty_policy_rejected(self):
        with pytest.raises(PolicyValidationError):
            Policy("p", [])

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(PolicyValidationError):
            Policy("p", [XacmlRule("r", Effect.PERMIT), XacmlRule("r", Effect.DENY)])


class TestPolicySet:
    def test_deny_overrides_across_policies(self, request_dba_write):
        permit = Policy("permit", [XacmlRule("r", Effect.PERMIT)])
        deny = Policy("deny", [XacmlRule("r", Effect.DENY)])
        assert (
            evaluate_policy_set([permit, deny], request_dba_write, "deny-overrides")
            is Decision.DENY
        )
        assert (
            evaluate_policy_set([permit, deny], request_dba_write, "permit-overrides")
            is Decision.PERMIT
        )

    def test_empty_set_not_applicable(self, request_dba_write):
        assert evaluate_policy_set([], request_dba_write) is Decision.NOT_APPLICABLE

    def test_applicable_rules_reports_fired(self, request_dba_write):
        policy = Policy(
            "p",
            [
                XacmlRule("a", Effect.PERMIT, Target([Match("subject", "role", "eq", "dba")])),
                XacmlRule("b", Effect.DENY, Target([Match("subject", "role", "eq", "dev")])),
            ],
        )
        fired = applicable_rules(policy, request_dba_write)
        assert [rule.rule_id for rule, __ in fired] == ["a"]


class TestRequest:
    def test_unknown_category_rejected(self):
        with pytest.raises(PolicyValidationError):
            Request({"thing": {"a": 1}})

    def test_with_value_is_copy(self, request_dba_write):
        changed = request_dba_write.with_value("subject", "role", "dev")
        assert request_dba_write.get("subject", "role") == "dba"
        assert changed.get("subject", "role") == "dev"

    def test_requests_hashable(self, request_dba_write):
        again = Request(
            {
                "subject": {"role": "dba", "age": 35},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        assert request_dba_write == again
        assert len({request_dba_write, again}) == 1


class TestDomainSchema:
    def test_all_requests_cartesian(self):
        schema = DomainSchema(
            {
                ("subject", "role"): CategoricalDomain(["a", "b"]),
                ("action", "id"): CategoricalDomain(["x", "y", "z"]),
            }
        )
        assert len(list(schema.all_requests())) == 6

    def test_request_space_guard(self):
        schema = DomainSchema(
            {("subject", "n"): IntegerDomain(0, 999), ("action", "m"): IntegerDomain(0, 999)}
        )
        with pytest.raises(PolicyValidationError):
            list(schema.all_requests(max_requests=1000))

    def test_empty_categorical_rejected(self):
        with pytest.raises(PolicyValidationError):
            CategoricalDomain([])

    def test_empty_integer_domain_rejected(self):
        with pytest.raises(PolicyValidationError):
            IntegerDomain(5, 4)
