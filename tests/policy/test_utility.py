"""Unit tests for utility-based policies (Section I's third policy type)."""

import pytest

from repro.core import Context
from repro.errors import PolicyError
from repro.policy.utility import UtilityPolicy

ROUTE_RULES = """
risk(main, 3). risk(river, 1). risk(narrow, 2).
risk_override(river, 9) :- storm.
overridden(R) :- risk_override(R, X).
effective(R, W) :- risk_override(R, W).
effective(R, W) :- risk(R, W), not overridden(R).
:~ chosen(R), effective(R, W). [W]
"""


@pytest.fixture
def route_policy():
    return UtilityPolicy(["main", "river", "narrow"], ROUTE_RULES)


class TestChoice:
    def test_lowest_risk_chosen(self, route_policy):
        assert route_policy.choose() == ["river"]

    def test_context_changes_choice(self, route_policy):
        storm = Context.from_text("storm.")
        assert route_policy.choose(storm) == ["narrow"]

    def test_ties_return_all(self):
        policy = UtilityPolicy(
            ["a", "b"], "value(a, 1). value(b, 1). :~ chosen(X), value(X, W). [W]"
        )
        assert policy.choose() == ["a", "b"]

    def test_empty_options_rejected(self):
        with pytest.raises(PolicyError):
            UtilityPolicy([], ":~ chosen(X). [1]")

    def test_unsatisfiable_context(self):
        policy = UtilityPolicy(["a"], ":- chosen(a), forbidden.")
        assert policy.choose() == ["a"]
        with pytest.raises(PolicyError):
            policy.choose(Context.from_text("forbidden."))


class TestRanking:
    def test_rank_orders_by_cost(self, route_policy):
        ranked = route_policy.rank()
        assert [option for option, __ in ranked] == ["river", "narrow", "main"]
        costs = [cost for __, cost in ranked]
        assert costs == sorted(costs)

    def test_rank_under_context(self, route_policy):
        ranked = route_policy.rank(Context.from_text("storm."))
        assert ranked[0][0] == "narrow"
        assert ranked[-1][0] == "river"


class TestPriorities:
    def test_safety_dominates_speed(self):
        # priority 2: safety (avoid exposed routes); priority 1: speed
        policy = UtilityPolicy(
            ["fast_exposed", "slow_safe"],
            """
            exposed(fast_exposed). slow(slow_safe).
            :~ chosen(R), exposed(R). [1@2]
            :~ chosen(R), slow(R). [1@1]
            """,
        )
        assert policy.choose() == ["slow_safe"]
