"""Budget / Deadline / ambient-scope behaviour."""

import pytest

from repro.errors import (
    BudgetExceededError,
    OperationCancelledError,
    ResourceError,
    SolveTimeoutError,
)
from repro.runtime.budget import (
    Budget,
    Deadline,
    budget_scope,
    current_budget,
    spend,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestDeadline:
    def test_not_expired_before_limit(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.now = 9.9
        assert not deadline.expired
        deadline.check()  # no raise

    def test_expired_after_limit(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.now = 10.1
        assert deadline.expired
        with pytest.raises(SolveTimeoutError) as err:
            deadline.check()
        assert err.value.elapsed == pytest.approx(10.1)
        assert err.value.limit == pytest.approx(10.0)

    def test_remaining_clamps_at_zero(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.now = 7.0
        assert deadline.remaining == 0.0


class TestBudget:
    def test_tick_raises_typed_error_with_counters(self):
        budget = Budget(max_steps=10)
        budget.tick(10)
        with pytest.raises(BudgetExceededError) as err:
            budget.tick()
        assert err.value.steps_used == 11
        assert err.value.max_steps == 10
        assert budget.exhausted

    def test_wall_clock_checked_periodically(self):
        clock = FakeClock()
        budget = Budget(wall_clock=1.0, clock=clock)
        clock.now = 2.0
        # the clock is consulted every 256 ticks, so a timeout surfaces
        # within one check interval
        with pytest.raises(SolveTimeoutError):
            for __ in range(300):
                budget.tick()

    def test_cancel_is_cooperative(self):
        budget = Budget(max_steps=1000)
        budget.tick(5)
        budget.cancel()
        with pytest.raises(OperationCancelledError):
            budget.tick()
        with pytest.raises(OperationCancelledError):
            budget.check()

    def test_unlimited_budget_never_raises(self):
        budget = Budget()
        budget.tick(10_000)
        budget.check()
        assert not budget.exhausted
        assert budget.remaining_steps is None

    def test_fresh_resets_counters(self):
        budget = Budget(max_steps=3)
        with pytest.raises(BudgetExceededError):
            budget.tick(5)
        renewed = budget.fresh()
        assert renewed.steps_used == 0
        renewed.tick(3)  # no raise

    def test_errors_are_resource_errors(self):
        assert issubclass(BudgetExceededError, ResourceError)
        assert issubclass(SolveTimeoutError, ResourceError)
        assert issubclass(OperationCancelledError, ResourceError)


class TestAmbientScope:
    def test_scope_sets_and_restores(self):
        assert current_budget() is None
        budget = Budget(max_steps=100)
        with budget_scope(budget):
            assert current_budget() is budget
        assert current_budget() is None

    def test_nested_scope_masks_outer(self):
        outer, inner = Budget(max_steps=1), Budget(max_steps=100)
        with budget_scope(outer):
            with budget_scope(inner):
                assert current_budget() is inner
            assert current_budget() is outer

    def test_none_scope_masks_outer(self):
        outer = Budget(max_steps=1)
        with budget_scope(outer):
            with budget_scope(None):
                assert current_budget() is None
                spend(50)  # unbounded inside the masked scope
        assert outer.steps_used == 0

    def test_spend_uses_ambient(self):
        budget = Budget(max_steps=3)
        with budget_scope(budget):
            spend(2)
            with pytest.raises(BudgetExceededError):
                spend(2)

    def test_spend_without_budget_is_noop(self):
        spend(1_000_000)  # no ambient, no explicit: nothing to exhaust
