"""CircuitBreaker state machine."""

from repro.runtime.breaker import CircuitBreaker


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make(threshold=3, recovery=30.0):
    clock = FakeClock()
    return CircuitBreaker(
        failure_threshold=threshold, recovery_time=recovery, clock=clock
    ), clock


def test_starts_closed_and_allows():
    breaker, __ = make()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_opens_after_threshold_consecutive_failures():
    breaker, __ = make(threshold=3)
    for __i in range(2):
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.times_opened == 1


def test_success_resets_failure_streak():
    breaker, __ = make(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED  # streak broken, never reached 2


def test_half_open_after_recovery_window():
    breaker, clock = make(threshold=1, recovery=30.0)
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    clock.now = 31.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()  # one probe allowed


def test_half_open_success_closes():
    breaker, clock = make(threshold=1, recovery=30.0)
    breaker.record_failure()
    clock.now = 31.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_half_open_failure_reopens():
    breaker, clock = make(threshold=1, recovery=30.0)
    breaker.record_failure()
    clock.now = 31.0
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.times_opened == 2


def test_reset_restores_closed():
    breaker, __ = make(threshold=1)
    breaker.record_failure()
    breaker.reset()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_telemetry_counters():
    breaker, __ = make(threshold=10)
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.total_successes == 1
    assert breaker.total_failures == 2
