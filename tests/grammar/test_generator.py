"""Unit tests for language enumeration."""

import pytest

from repro.grammar import generate_strings, generate_trees, parse_cfg

POLICY = parse_cfg(
    """
policy  -> "allow" subject action | "deny" subject action
subject -> "alice" | "bob"
action  -> "read" | "write"
"""
)


class TestFiniteLanguage:
    def test_full_enumeration(self):
        strings = set(generate_strings(POLICY))
        assert len(strings) == 8

    def test_strings_are_distinct(self):
        strings = list(generate_strings(POLICY))
        assert len(strings) == len(set(strings))

    def test_max_strings_cap(self):
        assert len(list(generate_strings(POLICY, max_strings=3))) == 3


class TestInfiniteLanguage:
    def test_length_bound_respected(self):
        grammar = parse_cfg('s -> "a" s | "a"')
        strings = list(generate_strings(grammar, max_length=4))
        assert all(len(s) <= 4 for s in strings)
        assert len(strings) == 4

    def test_shortest_first(self):
        grammar = parse_cfg('s -> "a" s | "a"')
        lengths = [len(s) for s in generate_strings(grammar, max_length=5)]
        assert lengths == sorted(lengths)

    def test_epsilon_string_generated(self):
        grammar = parse_cfg('s -> "a" s | eps')
        strings = list(generate_strings(grammar, max_length=2))
        assert () in strings

    def test_unreachable_length_yields_nothing(self):
        grammar = parse_cfg('s -> "a" "b" "c"')
        assert list(generate_strings(grammar, max_length=2)) == []


class TestTrees:
    def test_tree_yields_match_strings(self):
        for tree in generate_trees(POLICY, max_trees=8):
            assert len(tree.yield_string()) == 3

    def test_trees_carry_productions(self):
        tree = next(generate_trees(POLICY))
        assert tree.production is not None
        assert tree.production.lhs == "policy"

    def test_depth_and_size(self):
        tree = next(generate_trees(POLICY))
        assert tree.depth() == 3  # policy -> subject/action -> terminal
        assert tree.size() == 1 + 3 + 2  # root + 3 symbols + 2 leaves
