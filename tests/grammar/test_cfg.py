"""Unit tests for CFG construction and the grammar text format."""

import pytest

from repro.errors import GrammarError, GrammarSyntaxError
from repro.grammar import CFG, Production, parse_cfg

POLICY_GRAMMAR = """
policy  -> "allow" subject action | "deny" subject action
subject -> "alice" | "bob"
action  -> "read" | "write"
"""


class TestConstruction:
    def test_production_ids_sequential(self):
        grammar = parse_cfg(POLICY_GRAMMAR)
        assert [p.prod_id for p in grammar.productions] == list(range(6))

    def test_start_is_first_lhs(self):
        assert parse_cfg(POLICY_GRAMMAR).start == "policy"

    def test_terminals_and_nonterminals_disjoint(self):
        grammar = parse_cfg(POLICY_GRAMMAR)
        assert not (grammar.terminals & grammar.nonterminals)

    def test_productions_for(self):
        grammar = parse_cfg(POLICY_GRAMMAR)
        assert len(grammar.productions_for("subject")) == 2

    def test_unknown_symbol_rejected(self):
        with pytest.raises(GrammarError):
            CFG({"s"}, {"a"}, [Production("s", ["mystery"])], "s")

    def test_start_must_be_nonterminal(self):
        with pytest.raises(GrammarError):
            CFG({"s"}, {"a"}, [Production("s", ["a"])], "a")

    def test_nonterminal_without_production_rejected(self):
        with pytest.raises(GrammarError):
            CFG({"s", "t"}, {"a"}, [Production("s", ["a"])], "s")

    def test_overlapping_symbol_sets_rejected(self):
        with pytest.raises(GrammarError):
            CFG({"s"}, {"s"}, [Production("s", [])], "s")


class TestTextFormat:
    def test_undefined_nonterminal_message(self):
        with pytest.raises(GrammarSyntaxError):
            parse_cfg('s -> thing')

    def test_comments_stripped(self):
        grammar = parse_cfg('s -> "a"  # trailing comment\n# whole-line comment')
        assert len(grammar.productions) == 1

    def test_epsilon_production(self):
        grammar = parse_cfg('s -> "a" s | eps')
        assert any(not p.rhs for p in grammar.productions)

    def test_continuation_lines(self):
        grammar = parse_cfg('s -> "a"\n  | "b"')
        assert len(grammar.productions) == 2

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_cfg("   \n  # only comments\n")

    def test_missing_arrow_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_cfg('s "a"')


class TestHelpers:
    def test_nullable_set(self):
        grammar = parse_cfg('s -> a b\na -> "x" | eps\nb -> "y" | eps')
        assert grammar.nullable_set() == {"s", "a", "b"}

    def test_nullable_empty_when_no_epsilon(self):
        assert parse_cfg(POLICY_GRAMMAR).nullable_set() == set()

    def test_tokenize_valid(self):
        grammar = parse_cfg(POLICY_GRAMMAR)
        assert grammar.tokenize("allow alice read") == ("allow", "alice", "read")

    def test_tokenize_unknown_token_rejected(self):
        grammar = parse_cfg(POLICY_GRAMMAR)
        with pytest.raises(GrammarError):
            grammar.tokenize("allow eve read")
