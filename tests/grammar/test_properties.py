"""Property-based tests for the grammar substrate.

Invariants:

* every enumerated string is recognized by Earley, and has ≥1 parse tree;
* every extracted parse tree yields the input string and respects the
  production structure;
* random strings over the terminal alphabet agree between the Earley
  recognizer and the tree extractor (both accept or both reject).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.grammar import generate_strings, parse_cfg, parse_trees, recognize

GRAMMARS = [
    parse_cfg('s -> "a" s "b" | eps'),            # a^n b^n
    parse_cfg('s -> s s | "(" s ")" | eps'),      # balanced parens (ambiguous)
    parse_cfg('e -> e "+" t | t\nt -> "x" | "(" e ")"'),  # arithmetic
    parse_cfg(
        'policy -> "allow" who | "deny" who\nwho -> "alice" | "bob" | "carol"'
    ),
]


@st.composite
def grammar_and_string(draw):
    grammar = draw(st.sampled_from(GRAMMARS))
    alphabet = sorted(grammar.terminals)
    length = draw(st.integers(min_value=0, max_value=6))
    tokens = tuple(draw(st.sampled_from(alphabet)) for _ in range(length))
    return grammar, tokens


class TestRecognizerExtractorAgreement:
    @given(grammar_and_string())
    @settings(max_examples=200, deadline=None)
    def test_recognizer_matches_extractor(self, pair):
        grammar, tokens = pair
        recognized = recognize(grammar, tokens)
        trees = parse_trees(grammar, tokens, max_trees=64)
        assert recognized == bool(trees)

    @given(grammar_and_string())
    @settings(max_examples=200, deadline=None)
    def test_trees_yield_input(self, pair):
        grammar, tokens = pair
        for tree in parse_trees(grammar, tokens, max_trees=16):
            assert tree.yield_string() == tokens

    @given(grammar_and_string())
    @settings(max_examples=100, deadline=None)
    def test_tree_children_match_production(self, pair):
        grammar, tokens = pair
        for tree in parse_trees(grammar, tokens, max_trees=8):
            for node, __ in tree.interior_nodes():
                assert node.production is not None
                assert tuple(c.symbol for c in node.children) == node.production.rhs


class TestGenerationSoundness:
    @pytest.mark.parametrize("grammar", GRAMMARS)
    def test_generated_strings_recognized(self, grammar):
        for string in generate_strings(grammar, max_length=6, max_strings=40):
            assert recognize(grammar, string)

    @pytest.mark.parametrize("grammar", GRAMMARS)
    def test_generation_is_exhaustive_up_to_length(self, grammar):
        """Brute-force check: every string over the alphabet up to length 4
        accepted by Earley is also enumerated by the generator."""
        import itertools

        generated = set(generate_strings(grammar, max_length=4, max_strings=10_000))
        alphabet = sorted(grammar.terminals)
        for length in range(0, 5):
            for candidate in itertools.product(alphabet, repeat=length):
                if recognize(grammar, candidate):
                    assert candidate in generated
