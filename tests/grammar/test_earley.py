"""Unit tests for Earley recognition and parse-tree extraction."""

import pytest

from repro.errors import AmbiguityLimitError
from repro.grammar import parse_cfg, parse_trees, recognize

POLICY = parse_cfg(
    """
policy  -> "allow" subject action | "deny" subject action
subject -> "alice" | "bob"
action  -> "read" | "write"
"""
)

AMBIG = parse_cfg('e -> e "+" e | "x"')

NESTED = parse_cfg(
    """
s -> "(" s ")" | eps
"""
)


class TestRecognition:
    @pytest.mark.parametrize(
        "text", ["allow alice read", "deny bob write", "allow bob read"]
    )
    def test_valid_strings(self, text):
        assert recognize(POLICY, tuple(text.split()))

    @pytest.mark.parametrize(
        "text", ["allow alice", "alice read", "allow alice read write", ""]
    )
    def test_invalid_strings(self, text):
        assert not recognize(POLICY, tuple(text.split()))

    def test_unknown_token_rejected(self):
        assert not recognize(POLICY, ("allow", "eve", "read"))

    def test_epsilon_language(self):
        assert recognize(NESTED, ())
        assert recognize(NESTED, ("(", ")"))
        assert recognize(NESTED, ("(", "(", ")", ")"))
        assert not recognize(NESTED, ("(",))
        assert not recognize(NESTED, (")", "("))

    def test_left_recursion(self):
        grammar = parse_cfg('l -> l "a" | "a"')
        assert recognize(grammar, ("a",) * 5)
        assert not recognize(grammar, ())

    def test_right_recursion(self):
        grammar = parse_cfg('r -> "a" r | "a"')
        assert recognize(grammar, ("a",) * 5)


class TestTreeExtraction:
    def test_single_tree_for_unambiguous(self):
        trees = parse_trees(POLICY, ("allow", "alice", "read"))
        assert len(trees) == 1

    def test_tree_yield_matches_input(self):
        tokens = ("deny", "bob", "write")
        (tree,) = parse_trees(POLICY, tokens)
        assert tree.yield_string() == tokens

    def test_ambiguous_string_has_multiple_trees(self):
        trees = parse_trees(AMBIG, ("x", "+", "x", "+", "x"))
        assert len(trees) == 2

    def test_catalan_ambiguity_counts(self):
        # x+x+x+x has Catalan(3) = 5 binary association trees
        trees = parse_trees(AMBIG, ("x", "+") * 3 + ("x",))
        assert len(trees) == 5

    def test_no_trees_outside_language(self):
        assert parse_trees(POLICY, ("allow", "alice")) == []

    def test_strict_ambiguity_limit(self):
        tokens = ("x", "+") * 5 + ("x",)
        with pytest.raises(AmbiguityLimitError):
            parse_trees(AMBIG, tokens, max_trees=3, strict=True)

    def test_nonstrict_truncation(self):
        tokens = ("x", "+") * 5 + ("x",)
        trees = parse_trees(AMBIG, tokens, max_trees=3)
        assert len(trees) == 3

    def test_cyclic_grammar_terminates(self):
        grammar = parse_cfg('a -> a | "x"')
        trees = parse_trees(grammar, ("x",))
        assert trees  # at least the acyclic derivation

    def test_traces_are_one_indexed(self):
        (tree,) = parse_trees(POLICY, ("allow", "alice", "read"))
        traces = [trace for __, trace in tree.nodes_with_traces()]
        assert () in traces
        assert (1,) in traces and (2, 1) in traces
        assert (0,) not in traces


class TestAgreementWithEnumeration:
    def test_every_generated_string_is_recognized(self):
        from repro.grammar import generate_strings

        for grammar in (POLICY, NESTED):
            for string in generate_strings(grammar, max_length=6, max_strings=50):
                assert recognize(grammar, string)
                assert parse_trees(grammar, string)
