"""E3 — Figure 3a: correctly learned XACML policies.

Learns access-control rules from clean synthetic conformance logs and
reports, per log size: the learned rules, whether they exactly match
the ground truth, and the semantic (full-request-space) accuracy.

Expected shape (paper: "a sample of the policies that were learned
correctly"): with enough clean examples the learner recovers the
ground-truth policies exactly; semantic accuracy reaches 1.0.
"""

import pytest

from repro.apps.xacml_case_study import XacmlLearningPipeline, semantic_accuracy
from repro.datasets import default_ground_truth, sample_log

EXPECTED_RULES = [
    "decision(permit) :- role(dba), rtype(db).",
    "decision(permit) :- role(dev), action(read).",
]


@pytest.fixture(scope="module")
def ground_truth():
    return default_ground_truth()


def test_recovery_by_log_size(ground_truth, report, benchmark):
    rows = []
    for n in (10, 20, 40, 80):
        log = sample_log(ground_truth, n, seed=1)
        model = XacmlLearningPipeline().learn(log)
        exact = model.rule_texts() == EXPECTED_RULES
        accuracy = semantic_accuracy(model, ground_truth)
        rows.append((n, exact, accuracy))
    report(
        "E3 / Figure 3a — correct policy learning from clean logs",
        f"{'log size':>9} {'exact recovery':>15} {'semantic accuracy':>18}",
        *(
            f"{n:>9} {str(exact):>15} {accuracy:>18.3f}"
            for n, exact, accuracy in rows
        ),
    )
    # the paper's shape: enough examples -> exactly the original policies
    assert rows[-1][1] is True
    assert rows[-1][2] == 1.0
    # accuracy is monotone non-decreasing in this sweep
    accuracies = [accuracy for __, __e, accuracy in rows]
    assert all(a <= b + 1e-9 for a, b in zip(accuracies, accuracies[1:]))

    log = sample_log(ground_truth, 40, seed=1)
    benchmark.pedantic(
        lambda: XacmlLearningPipeline().learn(log), rounds=3, iterations=1
    )


def test_learned_rules_printed(ground_truth, report, benchmark):
    log = sample_log(ground_truth, 60, seed=1)
    model = benchmark.pedantic(
        lambda: XacmlLearningPipeline().learn(log), rounds=1, iterations=1
    )
    report(
        "E3 — the Figure 3a 'correctly learned policies' analogue:",
        *(f"    {text}" for text in model.rule_texts()),
    )
    assert model.rule_texts() == EXPECTED_RULES
