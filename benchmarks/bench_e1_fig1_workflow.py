"""E1 — Figure 1: the ASG learning workflow.

Regenerates the workflow's behaviour as an example-count sweep: learning
time and hypothesis quality as the example set grows, plus the
exact-vs-decomposable learner ablation called out in DESIGN.md.

Expected shape: learning succeeds at every size; time grows roughly
linearly with the example count (oracle calls dominate); the
decomposable fast path is substantially faster than the exact learner
at equal solution quality.
"""

import pytest

from repro.asg import parse_asg
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.core import Context, GenerativePolicyModel, LabeledExample, learn_gpm
from repro.learning import (
    ASGLearningTask,
    DecomposableLearner,
    ILASPLearner,
    constraint_space,
)

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
subject -> "carol" { is(carol). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
action  -> "delete" { is(delete). }
"""


def space():
    pool = [
        Literal(Atom("is", [Constant(n)], (2,)), True)
        for n in ("alice", "bob", "carol")
    ]
    pool += [
        Literal(Atom("is", [Constant(n)], (3,)), True)
        for n in ("read", "write", "delete")
    ]
    pool += [Literal(Atom("alert"), s) for s in (True, False)]
    return constraint_space(pool, prod_ids=(0,), max_body=3)


def truth(subject, action, alert):
    # ground truth: carol may not delete; nobody writes during an alert
    if subject == "carol" and action == "delete":
        return False
    if action == "write" and alert:
        return False
    return True


def make_examples(n, seed=0):
    import random

    rng = random.Random(seed)
    examples = []
    for __ in range(n):
        subject = rng.choice(("alice", "bob", "carol"))
        action = rng.choice(("read", "write", "delete"))
        alert = rng.random() < 0.5
        context = Context.from_attributes({"alert": alert})
        examples.append(
            LabeledExample(
                ("allow", subject, action), context, valid=truth(subject, action, alert)
            )
        )
    return examples


@pytest.fixture(scope="module")
def model():
    return GenerativePolicyModel(parse_asg(GRAMMAR))


def test_learning_sweep(model, report, benchmark):
    import time

    rows = []
    hypothesis_space = space()
    for n in (8, 16, 32, 64):
        examples = make_examples(n)
        start = time.monotonic()
        learned, result = learn_gpm(model, hypothesis_space, examples)
        elapsed = time.monotonic() - start
        rows.append((n, len(result.candidates), result.cost, result.checks, elapsed))
    report(
        "E1 / Figure 1 — learning workflow sweep",
        f"{'examples':>9} {'rules':>6} {'cost':>5} {'oracle calls':>13} {'seconds':>8}",
        *(
            f"{n:>9} {rules:>6} {cost:>5} {checks:>13} {secs:>8.2f}"
            for n, rules, cost, checks, secs in rows
        ),
    )
    assert all(rules >= 1 for __, rules, __c, __k, __s in rows[1:])
    benchmark.pedantic(
        lambda: learn_gpm(model, hypothesis_space, make_examples(16)),
        rounds=3,
        iterations=1,
    )


def test_ablation_decomposable_vs_exact(model, report, benchmark):
    import time

    hypothesis_space = space()
    examples = make_examples(24, seed=3)
    positive = [e.to_context_example() for e in examples if e.valid]
    negative = [e.to_context_example() for e in examples if not e.valid]

    def run_exact():
        task = ASGLearningTask(model.initial, hypothesis_space, positive, negative)
        return ILASPLearner(task).learn()

    def run_fast():
        task = ASGLearningTask(model.initial, hypothesis_space, positive, negative)
        return DecomposableLearner(task).learn()

    start = time.monotonic()
    exact = run_exact()
    exact_time = time.monotonic() - start
    start = time.monotonic()
    fast = run_fast()
    fast_time = time.monotonic() - start
    report(
        "E1 ablation — exact (ILASP-style) vs decomposable (set-cover) learner",
        f"    exact:        cost={exact.cost} rules={len(exact.candidates)} time={exact_time:.2f}s",
        f"    decomposable: cost={fast.cost} rules={len(fast.candidates)} time={fast_time:.2f}s",
        f"    speedup: {exact_time / max(fast_time, 1e-9):.1f}x",
    )
    assert fast.cost == exact.cost  # same optimum on this decomposable task
    benchmark.pedantic(run_fast, rounds=3, iterations=1)
