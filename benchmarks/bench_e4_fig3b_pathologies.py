"""E4 — Figure 3b: incorrect learning and the paper's mitigations.

Three pathology/mitigation pairs, each measured as semantic accuracy
against the relevant ground truth:

* **overfitting** (narrow logs) vs the statistics/background-knowledge
  mitigation (``prefer_general``);
* **unsafe generalization** (rare per-user grants) vs the target-based
  restriction (``require_target``), measured as grant *leakage* to
  ungrated users;
* **noisy datasets** (flips, NotApplicable responses) vs dataset
  filtering.

Expected shape: every pathology hurts; every mitigation recovers most
or all of the loss — the "if X were provided, the learner would be able
to generate Y" claims of the Figure 3b discussion.
"""

import pytest

from repro.apps.xacml_case_study import XacmlLearningPipeline, semantic_accuracy
from repro.datasets import (
    default_ground_truth,
    inject_flips,
    inject_not_applicable,
    per_user_ground_truth,
    sample_log,
)
from repro.policy import Decision, Request


def _transfer_requests():
    """Requests from users *not* in the narrow log but whose roles are
    observed (u2 is a dba like u1; u6 a guest like u5) — the population
    an overfitted, user-specific policy fails to transfer to."""
    from repro.datasets.xacml_conformance import ACTIONS, RESOURCE_TYPES, USER_ROLES

    out = []
    for user in ("u2", "u6"):
        for action in ACTIONS:
            for rtype in RESOURCE_TYPES:
                out.append(
                    Request(
                        {
                            "subject": {"id": user, "role": USER_ROLES[user]},
                            "action": {"id": action},
                            "resource": {"type": rtype},
                        }
                    )
                )
    return out


def test_overfitting_and_statistics_mitigation(report, benchmark):
    ground_truth = default_ground_truth()
    transfer = _transfer_requests()

    def run():
        rows = []
        for seed in (2, 12, 22):
            narrow = sample_log(ground_truth, 40, seed=seed, users=("u1", "u5"))
            # ILASP-style learners return *some* cost-minimal hypothesis;
            # prefer_specific selects the user-identity one among the
            # optima (the overfitted Figure 3b outcome), prefer_general
            # is the paper's statistics/background-knowledge mitigation.
            unlucky = XacmlLearningPipeline(prefer_specific=True).learn(narrow)
            mitigated = XacmlLearningPipeline(prefer_general=True).learn(narrow)
            rows.append(
                (
                    seed,
                    semantic_accuracy(unlucky, ground_truth, transfer),
                    semantic_accuracy(mitigated, ground_truth, transfer),
                    any("user(" in t for t in unlucky.rule_texts()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E4 / Fig 3b Policy 1 — overfitting: transfer accuracy to unseen",
        "users of observed roles (u2, u6), trained on u1/u5 only",
        f"{'seed':>5} {'overfit tie-break':>18} {'prefer-general':>15}",
        *(f"{seed:>5} {a:>18.3f} {b:>15.3f}" for seed, a, b, __ in rows),
    )
    # the overfitted optimum exists and does not transfer...
    assert any(user_specific for __, __a, __b, user_specific in rows)
    assert any(a < 1.0 for __, a, __b, __u in rows)
    # ...while the mitigation always recovers role-level generalization
    assert all(b == 1.0 for __, __a, b, __u in rows)
    assert all(b >= a for __, a, b, __u in rows)


def _leakage(model, granted=("u1",)):
    """Fraction of non-granted users who wrongly receive the write grant."""
    from repro.datasets.xacml_conformance import USER_ROLES, USERS

    others = [u for u in USERS if u not in granted and USER_ROLES[u] == "dba"]
    leaked = 0
    for user in others:
        request = Request(
            {
                "subject": {"id": user, "role": USER_ROLES[user]},
                "action": {"id": "write"},
                "resource": {"type": "db"},
            }
        )
        if model.decide(request) is Decision.PERMIT:
            leaked += 1
    return leaked / len(others) if others else 0.0


def test_unsafe_generalization_and_target_restriction(report, benchmark):
    grants = per_user_ground_truth(["u1"])

    def run():
        rows = []
        for seed in (3, 13, 23):
            # The paper's setup: "an organization has many users with the
            # DBA role while the example dataset shows that only few of
            # these users were granted" — the log shows u1 only, so the
            # other DBA (u2) provides no counter-evidence and a
            # role-level generalization is consistent with the log.
            log = sample_log(grants, 50, seed=seed, users=("u1",))
            unrestricted = XacmlLearningPipeline(max_body=3).learn(log)
            restricted = XacmlLearningPipeline(
                max_body=3, require_target=True
            ).learn(log)
            rows.append((seed, _leakage(unrestricted), _leakage(restricted)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E4 / Fig 3b Policy 2 — unsafe generalization of per-user grants",
        "(log shows only u1 of the dba role; leakage = grant reaching u2)",
        f"{'seed':>5} {'leakage (plain)':>16} {'leakage (restricted)':>21}",
        *(f"{seed:>5} {a:>16.3f} {b:>21.3f}" for seed, a, b in rows),
    )
    # without counter-evidence, an unrestricted learner *can* leak the
    # grant to the whole role on at least one run...
    assert any(a > 0.0 for __, a, __b in rows)
    # ...while the target-based restriction never does
    assert all(b == 0.0 for __, __a, b in rows)


def test_noise_and_filtering(report, benchmark):
    ground_truth = default_ground_truth()

    def run():
        rows = []
        for rate in (0.0, 0.1, 0.2):
            base = sample_log(ground_truth, 60, seed=4)
            noisy = (
                inject_flips(base, rate=rate, seed=4)
                + sample_log(ground_truth, 60, seed=5)
                + sample_log(ground_truth, 60, seed=6)
            )
            # strict = the paper's plain learner: inconsistent data means
            # no consistent hypothesis exists -> learning collapses
            strict = XacmlLearningPipeline(strict=True).learn(noisy)
            # tolerant = our noise-budget learner (no filtering)
            tolerant = XacmlLearningPipeline().learn(noisy)
            filtered = XacmlLearningPipeline(filter_noise=True).learn(noisy)
            rows.append(
                (
                    rate,
                    semantic_accuracy(strict, ground_truth),
                    semantic_accuracy(tolerant, ground_truth),
                    semantic_accuracy(filtered, ground_truth),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E4 / Fig 3b Policy 3a — decision flips: strict learner vs",
        "violation-tolerant learner vs majority filtering",
        f"{'flip rate':>10} {'strict':>7} {'tolerant':>9} {'filtered':>9}",
        *(
            f"{rate:>10.2f} {s:>7.3f} {t:>9.3f} {f:>9.3f}"
            for rate, s, t, f in rows
        ),
    )
    # clean data: everyone perfect
    assert rows[0][1] == rows[0][2] == rows[0][3] == 1.0
    # noisy data: the strict learner collapses ("patterns being missed"),
    # filtering (and the tolerant budget) restore accuracy
    assert all(s < 1.0 for __, s, __t, __f in rows[1:])
    assert all(f == 1.0 for __, __s, __t, f in rows)
    assert all(t >= s for __, s, t, __f in rows)


def test_not_applicable_and_filtering(report, benchmark):
    """Two halves of the Policy 3 story.

    *Failure mode*: a realistic PDP log where every gap request carries
    NotApplicable (systematic, via ``mark_gaps_not_applicable``); a
    learner allowed to treat it as a decision invents
    ``decision(not_applicable)`` rules.

    *Mitigation*: with sporadic NotApplicable noise, pruning irrelevant
    responses restores a proper permit/deny model.
    """
    from repro.datasets import mark_gaps_not_applicable

    ground_truth = default_ground_truth()
    realistic = mark_gaps_not_applicable(
        sample_log(ground_truth, 60, seed=7), ground_truth
    )
    sporadic = inject_not_applicable(
        sample_log(ground_truth, 60, seed=8), rate=0.3, seed=8
    )

    def run():
        failure = XacmlLearningPipeline(allow_irrelevant_head=True).learn(realistic)
        clean = XacmlLearningPipeline(filter_noise=True).learn(sporadic)
        return failure, clean

    failure_mode, filtered = benchmark.pedantic(run, rounds=1, iterations=1)
    learned_na = any("not_applicable" in t for t in failure_mode.rule_texts())
    filtered_accuracy = semantic_accuracy(filtered, ground_truth)
    report(
        "E4 / Fig 3b Policy 3b — irrelevant (NotApplicable) responses",
        f"    failure mode learned a not_applicable rule: {learned_na}",
        *(f"        {t}" for t in failure_mode.rule_texts()),
        f"    filtered semantic accuracy (sporadic noise): {filtered_accuracy:.3f}",
    )
    assert learned_na
    assert all("not_applicable" not in t for t in filtered.rule_texts())
    assert filtered_accuracy >= 0.9
