"""E10 — Section V.B: explainability and counterfactuals.

Measures the two explanation levels the paper requires:

* enforcement-time explanations (which rules applied, which attributes
  mattered) — always available and cheap;
* counterfactual explanations à la Wachter et al. (the paper's loan
  example) — minimal attribute flips that change the decision.

Expected shape: a counterfactual exists for every denied coherent
request in this domain; most are single-attribute flips; generation is
interactive-speed.
"""

import pytest

from repro.policy import (
    CategoricalDomain,
    Decision,
    DomainSchema,
    Effect,
    IntegerDomain,
    Match,
    Policy,
    Request,
    Target,
    XacmlRule,
    counterfactuals,
    evaluate_policy_set,
    explain_decision,
)


@pytest.fixture(scope="module")
def schema():
    return DomainSchema(
        {
            ("subject", "role"): CategoricalDomain(["dba", "dev", "guest"]),
            ("subject", "clearance"): IntegerDomain(0, 4),
            ("action", "id"): CategoricalDomain(["read", "write"]),
            ("resource", "type"): CategoricalDomain(["db", "file"]),
        }
    )


@pytest.fixture(scope="module")
def policies():
    return [
        Policy(
            "access",
            [
                XacmlRule(
                    "dba_db",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", "dba"),
                            Match("resource", "type", "eq", "db"),
                        ]
                    ),
                ),
                XacmlRule(
                    "cleared_read",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "clearance", "ge", 3),
                            Match("action", "id", "eq", "read"),
                        ]
                    ),
                ),
                XacmlRule("default", Effect.DENY),
            ],
            combining="first-applicable",
        )
    ]


def test_counterfactual_coverage(schema, policies, report, benchmark):
    denied = [
        request
        for request in schema.all_requests()
        if evaluate_policy_set(policies, request, "first-applicable") is Decision.DENY
    ]

    def run():
        sizes = []
        for request in denied:
            results = counterfactuals(
                policies, request, schema, combining="first-applicable", max_changes=2
            )
            assert results, f"no counterfactual for {request!r}"
            sizes.append(results[0].size)
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    single = sum(1 for s in sizes if s == 1)
    report(
        "E10 — counterfactual explanations over all denied requests",
        f"    denied requests: {len(denied)}",
        f"    with a counterfactual: {len(sizes)} (100%)",
        f"    single-attribute flips: {single} "
        f"({single / len(sizes):.0%})",
    )
    assert single / len(sizes) > 0.5


def test_paper_loan_style_explanation(schema, policies, report, benchmark):
    request = Request(
        {
            "subject": {"role": "dev", "clearance": 2},
            "action": {"id": "read"},
            "resource": {"type": "db"},
        }
    )
    explanation = explain_decision(policies, request, "first-applicable")
    results = benchmark(
        lambda: counterfactuals(policies, request, schema, combining="first-applicable")
    )
    report(
        "E10 — the paper's GDPR-style counterfactual, policy edition",
        f"    {explanation.text()}",
        *(f"    {c.text()}" for c in results[:3]),
    )
    assert explanation.decision is Decision.DENY
    assert any(
        ("subject", "clearance") in c.changes and c.new_decision is Decision.PERMIT
        for c in results
    )


def test_explanation_time(policies, benchmark):
    request = Request(
        {
            "subject": {"role": "guest", "clearance": 0},
            "action": {"id": "write"},
            "resource": {"type": "file"},
        }
    )
    benchmark(lambda: explain_decision(policies, request, "first-applicable"))


def test_counterfactual_time(schema, policies, benchmark):
    request = Request(
        {
            "subject": {"role": "guest", "clearance": 0},
            "action": {"id": "write"},
            "resource": {"type": "file"},
        }
    )
    benchmark(
        lambda: counterfactuals(
            policies, request, schema, combining="first-applicable", max_changes=2
        )
    )
