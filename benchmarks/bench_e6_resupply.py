"""E6 — Section IV.B: resupply learning from accumulated missions.

Expected shapes:

* accuracy grows (noise aside) with the number of completed missions —
  "the coalition is able to learn from previous experience";
* execution-phase training (real-time values) is at least as good as
  planning-phase training (speculative values) once drift is non-zero.
"""

import pytest

from repro.apps.resupply import ResupplyLearner, simulate_missions

MISSION_COUNTS = (3, 6, 12, 24)
DRIFT = 0.25


def _curves():
    test = simulate_missions(60, seed=4242, drift=DRIFT)
    table = {}
    for phase in ("execution", "planning"):
        series = []
        for n in MISSION_COUNTS:
            learner = ResupplyLearner(phase=phase)
            learner.observe(simulate_missions(n, seed=11, drift=DRIFT))
            learner.fit()
            series.append(learner.accuracy(test))
        table[phase] = series
    return table


def test_mission_accumulation(report, benchmark):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    report(
        "E6 — resupply route-viability accuracy vs missions flown",
        f"{'missions':>9} {'execution':>10} {'planning':>9}",
        *(
            f"{n:>9} {curves['execution'][i]:>10.3f} {curves['planning'][i]:>9.3f}"
            for i, n in enumerate(MISSION_COUNTS)
        ),
    )
    execution = curves["execution"]
    # shape 1: more missions never hurt much (monotone up to small noise)
    assert execution[-1] >= execution[0]
    assert execution[-1] >= 0.95
    # shape 2: execution-phase data at least matches speculative planning data
    assert execution[-1] >= curves["planning"][-1] - 1e-9


def test_phase_gap_grows_with_drift(report, benchmark):
    def run():
        rows = []
        for drift in (0.0, 0.2, 0.4):
            test = simulate_missions(40, seed=999, drift=drift)
            accs = {}
            for phase in ("execution", "planning"):
                learner = ResupplyLearner(phase=phase)
                learner.observe(simulate_missions(20, seed=13, drift=drift))
                learner.fit()
                accs[phase] = learner.accuracy(test)
            rows.append((drift, accs["execution"], accs["planning"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E6 — planning vs execution accuracy as condition drift grows",
        f"{'drift':>6} {'execution':>10} {'planning':>9}",
        *(f"{d:>6.1f} {e:>10.3f} {p:>9.3f}" for d, e, p in rows),
    )
    # at zero drift the phases see identical data
    assert abs(rows[0][1] - rows[0][2]) < 0.05
    # with drift, execution data is at least as informative
    assert rows[-1][1] >= rows[-1][2] - 0.05


def test_fit_time(benchmark):
    learner = ResupplyLearner(phase="execution")
    learner.observe(simulate_missions(12, seed=11, drift=DRIFT))
    benchmark.pedantic(learner.fit, rounds=3, iterations=1)
