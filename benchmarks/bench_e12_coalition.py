"""E12 — multi-party policy sharing over fragmented communications.

Extension experiment (paper Sections I and III.B): coalition
environments have unreliable links; this bench measures how policy
propagation and trust convergence degrade with message loss.

Expected shape: adoption falls monotonically (up to sampling noise) as
the loss rate rises; with a zero-loss fabric every valid shared policy
is adopted in one round.

The chaos sweep measures the reliable share protocol (seq/ack/
retransmit) against a fault-injecting fabric: with retries on, the
coalition converges (every party processes every announced policy) in a
bounded number of rounds even at heavy drop + duplication + reorder;
with retries off (fire-and-forget, the pre-reliability protocol), the
same fault plans leave policies permanently undelivered.
"""

import pytest

from repro.agenp import AutonomousManagedSystem, FieldInterpreter, PolicySpecification
from repro.agenp.coalition import Coalition, CoalitionNetwork, CoalitionParty, FaultPlan
from repro.agenp.monitoring import MonitoringLog
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.core import Context
from repro.learning import constraint_space
from repro.policy import CategoricalDomain, DomainSchema, Request

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def make_spec():
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    return PolicySpecification(
        GRAMMAR, hypothesis_space=constraint_space(pool, prod_ids=(0,), max_body=2)
    )


def make_party(name, network, reliable=True):
    ams = AutonomousManagedSystem(
        name,
        make_spec(),
        FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")}),
        DomainSchema(
            {
                ("subject", "id"): CategoricalDomain(["alice", "bob"]),
                ("action", "id"): CategoricalDomain(["read", "write"]),
            }
        ),
    )
    ams.bootstrap(Context.from_attributes({}, name="normal"))
    return CoalitionParty(ams, network, reliable=reliable)


def run_coalition(loss_rate, seed=0, parties=3):
    network = CoalitionNetwork(loss_rate=loss_rate, seed=seed)
    members = [make_party(f"ams{i}", network) for i in range(parties)]
    coalition = Coalition(members)
    results = coalition.round()
    adopted = sum(a for a, __ in results.values())
    return adopted, network


def test_propagation_vs_loss(report, benchmark):
    def run():
        rows = []
        for loss in (0.0, 0.3, 0.6, 0.9):
            adopted, network = run_coalition(loss, seed=5)
            rows.append((loss, adopted, network.sent, network.dropped))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E12 — policy adoption in one sharing round vs link loss (3 parties)",
        f"{'loss':>5} {'adopted':>8} {'sent':>5} {'dropped':>8}",
        *(f"{loss:>5.1f} {adopted:>8} {sent:>5} {dropped:>8}" for loss, adopted, sent, dropped in rows),
    )
    adopted = [a for __, a, __s, __d in rows]
    # zero loss: every party adopts every other party's 4 policies
    assert adopted[0] == 3 * 2 * 4
    # heavy loss adopts strictly less than lossless
    assert adopted[-1] < adopted[0]


def run_chaos(drop, seed, reliable, max_rounds=60, parties=3):
    """One chaos run: drop + duplication + reorder at the given intensity."""
    plan = FaultPlan(
        seed=seed,
        drop_rate=drop,
        duplicate_rate=drop / 2,
        reorder_rate=drop / 2,
    )
    network = CoalitionNetwork(fault_plan=plan)
    members = [
        make_party(f"ams{i}", network, reliable=reliable) for i in range(parties)
    ]
    coalition = Coalition(members)
    rounds = coalition.run_until_converged(max_rounds=max_rounds)
    delivery = network.delivered / network.sent if network.sent else 1.0
    resent = sum(m.retransmissions for m in members)
    # serve one decision per live party so the monitoring dimension of the
    # sweep is populated (decision mix, degraded/enforcement rates)
    request = Request({"subject": {"id": "alice"}, "action": {"id": "read"}})
    for member in members:
        if member.live:
            member.ams.decide(request)
    return rounds, delivery, resent, network, members


def sweep_log_stats(members):
    """Aggregate MonitoringLog stats across every party in a sweep."""
    merged = MonitoringLog()
    for member in members:
        for record in member.ams.log.records():
            merged.append(record)
    return merged.stats()


def test_chaos_convergence(report, benchmark):
    def run():
        rows = []
        stats_rows = []
        for drop in (0.0, 0.3, 0.6):
            for reliable in (True, False):
                rounds, delivery, resent, __, members = run_chaos(
                    drop, seed=7, reliable=reliable
                )
                rows.append(
                    (
                        drop,
                        "on" if reliable else "off",
                        rounds if rounds is not None else "never",
                        delivery,
                        resent,
                    )
                )
                stats_rows.append(
                    (drop, "on" if reliable else "off", sweep_log_stats(members))
                )
        return rows, stats_rows

    rows, stats_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E12 chaos — rounds to convergence vs fault intensity (drop + dup/2 + reorder/2)",
        f"{'drop':>5} {'retries':>8} {'rounds':>7} {'delivery':>9} {'resent':>7}",
        *(
            f"{drop:>5.1f} {retries:>8} {str(rounds):>7} {delivery:>9.2f} {resent:>7}"
            for drop, retries, rounds, delivery, resent in rows
        ),
        "  post-convergence decision sweep (MonitoringLog.stats per cell):",
        *(
            f"    drop={drop:.1f} retries={retries}: " + "; ".join(stats.lines())
            for drop, retries, stats in stats_rows
        ),
    )
    # every cell served one decision per live party, none degraded
    for __, __r, stats in stats_rows:
        assert stats.total >= 1
        assert stats.degraded == 0
    by_key = {(drop, retries): rounds for drop, retries, rounds, __, __r in rows}
    # fault-free: both modes converge immediately
    assert by_key[(0.0, "on")] == 1
    assert by_key[(0.0, "off")] == 1
    # 30% drop + duplication + reorder: retries converge, fire-and-forget fails
    assert isinstance(by_key[(0.3, "on")], int)
    assert by_key[(0.3, "off")] == "never"
    # even heavier faults: the reliable protocol still converges
    assert isinstance(by_key[(0.6, "on")], int)


def test_round_throughput(benchmark):
    network = CoalitionNetwork()
    members = [make_party(f"bench{i}", network) for i in range(3)]
    coalition = Coalition(members)
    benchmark.pedantic(coalition.round, rounds=3, iterations=1)
