"""E12 — multi-party policy sharing over fragmented communications.

Extension experiment (paper Sections I and III.B): coalition
environments have unreliable links; this bench measures how policy
propagation and trust convergence degrade with message loss.

Expected shape: adoption falls monotonically (up to sampling noise) as
the loss rate rises; with a zero-loss fabric every valid shared policy
is adopted in one round.
"""

import pytest

from repro.agenp import AutonomousManagedSystem, FieldInterpreter, PolicySpecification
from repro.agenp.coalition import Coalition, CoalitionNetwork, CoalitionParty
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.core import Context
from repro.learning import constraint_space
from repro.policy import CategoricalDomain, DomainSchema

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def make_spec():
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    return PolicySpecification(
        GRAMMAR, hypothesis_space=constraint_space(pool, prod_ids=(0,), max_body=2)
    )


def make_party(name, network):
    ams = AutonomousManagedSystem(
        name,
        make_spec(),
        FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")}),
        DomainSchema(
            {
                ("subject", "id"): CategoricalDomain(["alice", "bob"]),
                ("action", "id"): CategoricalDomain(["read", "write"]),
            }
        ),
    )
    ams.bootstrap(Context.from_attributes({}, name="normal"))
    return CoalitionParty(ams, network)


def run_coalition(loss_rate, seed=0, parties=3):
    network = CoalitionNetwork(loss_rate=loss_rate, seed=seed)
    members = [make_party(f"ams{i}", network) for i in range(parties)]
    coalition = Coalition(members)
    results = coalition.round()
    adopted = sum(a for a, __ in results.values())
    return adopted, network


def test_propagation_vs_loss(report, benchmark):
    def run():
        rows = []
        for loss in (0.0, 0.3, 0.6, 0.9):
            adopted, network = run_coalition(loss, seed=5)
            rows.append((loss, adopted, network.sent, network.dropped))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E12 — policy adoption in one sharing round vs link loss (3 parties)",
        f"{'loss':>5} {'adopted':>8} {'sent':>5} {'dropped':>8}",
        *(f"{loss:>5.1f} {adopted:>8} {sent:>5} {dropped:>8}" for loss, adopted, sent, dropped in rows),
    )
    adopted = [a for __, a, __s, __d in rows]
    # zero loss: every party adopts every other party's 4 policies
    assert adopted[0] == 3 * 2 * 4
    # heavy loss adopts strictly less than lossless
    assert adopted[-1] < adopted[0]


def test_round_throughput(benchmark):
    network = CoalitionNetwork()
    members = [make_party(f"bench{i}", network) for i in range(3)]
    coalition = Coalition(members)
    benchmark.pedantic(coalition.round, rounds=3, iterations=1)
