"""E2 — Figure 2: the AGENP closed loop.

Regenerates the architecture's lifecycle as measurable steps: bootstrap
(refine + generate), request decision throughput, and a full
monitor→feedback→adapt→regenerate cycle.

Expected shape: decisions are cheap (policy evaluation only); the
adaptation cycle is dominated by re-learning and stays interactive
(well under a second) at this policy-space size.
"""

import pytest

from repro.agenp import AutonomousManagedSystem, FieldInterpreter, PolicySpecification
from repro.asp.atoms import Atom, Literal
from repro.asp.terms import Constant
from repro.core import Context
from repro.learning import constraint_space
from repro.policy import CategoricalDomain, Decision, DomainSchema, Request

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def make_spec():
    pool = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    pool += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    return PolicySpecification(
        GRAMMAR, hypothesis_space=constraint_space(pool, prod_ids=(0,), max_body=2)
    )


def make_ams():
    ams = AutonomousManagedSystem(
        "bench",
        make_spec(),
        FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")}),
        DomainSchema(
            {
                ("subject", "id"): CategoricalDomain(["alice", "bob"]),
                ("action", "id"): CategoricalDomain(["read", "write"]),
            }
        ),
    )
    ams.bootstrap(Context.from_attributes({}, name="normal"))
    return ams


def test_bootstrap(report, benchmark):
    ams = benchmark(make_ams)
    report(
        "E2 / Figure 2 — bootstrap",
        f"    policies generated: {len(ams.policy_repository)}",
        f"    model version: {ams.model().version}",
    )
    assert len(ams.policy_repository) == 4


def test_decision_throughput(report, benchmark):
    ams = make_ams()
    request = Request({"subject": {"id": "alice"}, "action": {"id": "read"}})
    record = benchmark(lambda: ams.decide(request))
    assert record.decision is Decision.PERMIT
    report(
        "E2 — decision latency benchmarked above "
        "(one PDP evaluation over the active policy set)"
    )


def test_full_adaptation_cycle(report, benchmark):
    def cycle():
        ams = make_ams()
        bad = ams.decide(Request({"subject": {"id": "bob"}, "action": {"id": "write"}}))
        for subject, action in (("alice", "read"), ("alice", "write"), ("bob", "read")):
            good = ams.decide(
                Request({"subject": {"id": subject}, "action": {"id": action}})
            )
            ams.give_feedback(good, ok=True)
        ams.give_feedback(bad, ok=False)
        adapted = ams.adapt_if_needed()
        return ams, adapted

    ams, adapted = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert adapted
    after = ams.decide(Request({"subject": {"id": "bob"}, "action": {"id": "write"}}))
    assert after.decision is Decision.DENY
    stats = ams.log.stats()
    report(
        "E2 — full monitor->feedback->adapt->regenerate cycle",
        f"    model version after adaptation: {ams.model().version}",
        f"    active policies: {len(ams.policy_repository)}",
        f"    bob/write now: {after.decision.value}",
        "    monitoring log:",
        *(f"      {line}" for line in stats.lines()),
    )
    assert stats.total == len(ams.log)
    assert stats.degraded == 0  # ungoverned run: no fallback decisions
