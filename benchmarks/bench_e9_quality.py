"""E9 — Section V.A: policy quality assessment.

Injects known defects (conflicts, irrelevant policies, redundant rules,
coverage gaps) into synthetic policy sets and measures detector
precision/recall plus runtime as the policy set grows.

Expected shape: detectors find exactly the injected defects
(precision = recall = 1.0 on this constructed workload); runtime grows
with the square of the rule count for the pairwise conflict check.
"""

import random

import pytest

from repro.policy import (
    CategoricalDomain,
    DomainSchema,
    Effect,
    Match,
    Policy,
    Target,
    XacmlRule,
    find_conflicts,
    find_coverage_gaps,
    find_irrelevant,
    find_redundant,
)

ROLES = [f"role{i}" for i in range(8)]
ACTIONS = ["read", "write", "exec"]


@pytest.fixture(scope="module")
def schema():
    return DomainSchema(
        {
            ("subject", "role"): CategoricalDomain(ROLES),
            ("action", "id"): CategoricalDomain(ACTIONS),
        }
    )


def clean_policy_set(n):
    """n pairwise-disjoint permit policies (one role each), plus a
    default deny for the remaining space — conflict-free by design."""
    policies = []
    for i in range(n):
        role = ROLES[i % len(ROLES)]
        action = ACTIONS[i % len(ACTIONS)]
        policies.append(
            Policy(
                f"permit_{i}",
                [
                    XacmlRule(
                        "r",
                        Effect.PERMIT,
                        Target(
                            [
                                Match("subject", "role", "eq", role),
                                Match("action", "id", "eq", action),
                            ]
                        ),
                    )
                ],
            )
        )
    return policies


def inject_defects(policies, seed=0):
    """Add one of each defect class; return (policies, expected)."""
    rng = random.Random(seed)
    result = list(policies)
    # conflict: deny overlapping the first permit
    first = result[0].rules[0]
    result.append(
        Policy("injected_conflict", [XacmlRule("r", Effect.DENY, first.target)])
    )
    # irrelevant: unsatisfiable target
    result.append(
        Policy(
            "injected_irrelevant",
            [
                XacmlRule(
                    "r",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", ROLES[0]),
                            Match("subject", "role", "eq", ROLES[1]),
                        ]
                    ),
                )
            ],
        )
    )
    # redundancy: a policy whose second rule is subsumed by its first
    result.append(
        Policy(
            "injected_redundant",
            [
                XacmlRule(
                    "broad",
                    Effect.PERMIT,
                    Target([Match("subject", "role", "eq", ROLES[2])]),
                ),
                XacmlRule(
                    "narrow",
                    Effect.PERMIT,
                    Target(
                        [
                            Match("subject", "role", "eq", ROLES[2]),
                            Match("action", "id", "eq", "read"),
                        ]
                    ),
                ),
            ],
        )
    )
    expected = {
        "conflict_pairs": {("permit_0", "injected_conflict")},
        "irrelevant": {"injected_irrelevant"},
        "redundant": {("injected_redundant", "narrow")},
    }
    return result, expected


def test_defect_detection_exactness(schema, report, benchmark):
    policies, expected = inject_defects(clean_policy_set(10))
    conflicts = benchmark(lambda: find_conflicts(policies, schema))
    found_pairs = {
        tuple(sorted((c.policy_a, c.policy_b))) for c in conflicts
    }
    expected_pairs = {
        tuple(sorted(pair)) for pair in expected["conflict_pairs"]
    }
    irrelevant = set(find_irrelevant(policies, schema))
    redundant = set(find_redundant(policies, schema))
    report(
        "E9 — quality-defect detection on an injected-defect policy set",
        f"    conflicts:  found {sorted(found_pairs)}",
        f"    irrelevant: found {sorted(irrelevant)}",
        f"    redundant:  found {sorted(redundant)}",
    )
    assert found_pairs == expected_pairs
    assert irrelevant == expected["irrelevant"]
    # the irrelevant policy's rule region is empty, so it is also flagged
    # redundant; the injected redundancy must be found exactly
    assert expected["redundant"] <= redundant
    assert all(pid in ("injected_redundant", "injected_irrelevant") for pid, __ in redundant)


def test_completeness_gap_detection(schema, report, benchmark):
    # permit one role only: every other role is a coverage gap
    policies = clean_policy_set(1)
    gaps = benchmark(lambda: find_coverage_gaps(policies, schema, max_gaps=1000))
    total = len(ROLES) * len(ACTIONS)
    report(
        "E9 — completeness: coverage gaps with a single permit policy",
        f"    request space: {total}, gaps found: {len(gaps)}",
    )
    assert len(gaps) == total - 1


def test_runtime_scaling(schema, report, benchmark):
    import time

    rows = []
    for n in (8, 16, 32, 64):
        policies, __ = inject_defects(clean_policy_set(n))
        start = time.monotonic()
        find_conflicts(policies, schema)
        rows.append((n, time.monotonic() - start))
    report(
        "E9 — conflict-analysis runtime vs policy count",
        f"{'policies':>9} {'seconds':>8}",
        *(f"{n:>9} {secs:>8.4f}" for n, secs in rows),
    )
    policies, __ = inject_defects(clean_policy_set(16))
    benchmark(lambda: find_conflicts(policies, schema))
