"""E11 — substrate scalability (Section III.B's "Performance Optimization").

The paper flags real-time policy generation/learning as an open
challenge; this bench characterizes our substrate so the other
experiments' costs are interpretable:

* ASP solving time vs ground-program size (transitive closure family);
* ASP enumeration vs answer-set count (choice-rule family);
* ASG membership vs policy-string length;
* policy generation (L(G(C)) enumeration) vs language size.
"""

import pytest

from repro.asp import parse_program, solve
from repro.asg import accepts, generate_policies, parse_asg


def chain_program(n):
    """Transitive closure over an n-node path graph."""
    lines = [f"edge({i}, {i + 1})." for i in range(n)]
    lines.append("path(X, Y) :- edge(X, Y).")
    lines.append("path(X, Z) :- path(X, Y), edge(Y, Z).")
    return parse_program("\n".join(lines))


def choice_program(k):
    atoms = "; ".join(f"a{i}" for i in range(k))
    return parse_program(f"{{ {atoms} }}.")


def list_asg(depth_tokens):
    """Unbounded repetition grammar with a per-item attribute."""
    return parse_asg(
        """
items -> item items
items -> item
item -> "go"   { ok. }
item -> "stop" { ok. }
"""
    )


class TestSolverScaling:
    @pytest.mark.parametrize("n", [10, 20, 40])
    def test_transitive_closure(self, n, benchmark):
        program = chain_program(n)
        models = benchmark.pedantic(
            lambda: solve(program), rounds=3, iterations=1
        )
        assert len(models) == 1
        assert len([a for a in models[0] if a.predicate == "path"]) == n * (n + 1) // 2

    @pytest.mark.parametrize("k", [4, 8, 12])
    def test_answer_set_enumeration(self, k, benchmark):
        program = choice_program(k)
        models = benchmark.pedantic(
            lambda: solve(program), rounds=3, iterations=1
        )
        assert len(models) == 2**k


class TestASGScaling:
    @pytest.mark.parametrize("length", [2, 6, 12])
    def test_membership_by_string_length(self, length, benchmark):
        asg = list_asg(length)
        tokens = ("go",) * length
        result = benchmark(lambda: accepts(asg, tokens))
        assert result

    def test_generation_by_language_size(self, report, benchmark):
        import time

        asg = list_asg(0)
        rows = []
        for max_length in (4, 6, 8):
            start = time.monotonic()
            policies = generate_policies(asg, max_length=max_length)
            rows.append((max_length, len(policies), time.monotonic() - start))
        report(
            "E11 — L(G) enumeration cost",
            f"{'max len':>8} {'policies':>9} {'seconds':>8}",
            *(f"{n:>8} {count:>9} {secs:>8.3f}" for n, count, secs in rows),
        )
        assert rows[-1][1] == 2**9 - 2  # binary strings of length 1..8
        benchmark.pedantic(
            lambda: generate_policies(asg, max_length=5), rounds=3, iterations=1
        )
